"""Labelled undirected graph model used throughout the GC reproduction.

The paper targets *non-induced subgraph isomorphism for undirected labelled
graphs where only vertices have labels*; edge labels are nevertheless
supported (they "straightforwardly generalize" per the paper) and are taken
into account by the matchers when present.

:class:`Graph` is a small, dependency-free adjacency-set structure with the
operations the rest of the system needs: mutation, queries, subgraph
extraction, Weisfeiler-Lehman hashing for cheap equality screening, and
conversion to/from :mod:`networkx` for cross-validation.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import Counter, deque
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

from repro.errors import (
    DuplicateVertexError,
    EdgeNotFoundError,
    GraphError,
    VertexNotFoundError,
)

VertexId = Hashable
Label = str


def _edge_key(u: VertexId, v: VertexId) -> tuple[VertexId, VertexId]:
    """Return a canonical (sorted) key for an undirected edge."""
    a, b = (u, v) if repr(u) <= repr(v) else (v, u)
    return (a, b)


class Graph:
    """An undirected graph with labelled vertices and optional edge labels.

    Parameters
    ----------
    graph_id:
        Optional identifier (dataset graphs are typically numbered).
    name:
        Optional human readable name (e.g. a molecule name).

    Examples
    --------
    >>> g = Graph(graph_id=1)
    >>> g.add_vertex(0, "C")
    >>> g.add_vertex(1, "O")
    >>> g.add_edge(0, 1)
    >>> g.num_vertices, g.num_edges
    (2, 1)
    """

    __slots__ = ("graph_id", "name", "_labels", "_adj", "_edge_labels", "_num_edges")

    def __init__(self, graph_id: int | str | None = None, name: str | None = None) -> None:
        self.graph_id = graph_id
        self.name = name
        self._labels: dict[VertexId, Label] = {}
        self._adj: dict[VertexId, set[VertexId]] = {}
        self._edge_labels: dict[tuple[VertexId, VertexId], Label] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # basic mutation
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: VertexId, label: Label = "") -> None:
        """Add a vertex with a label; raise if the vertex already exists."""
        if vertex in self._labels:
            raise DuplicateVertexError(vertex)
        self._labels[vertex] = label
        self._adj[vertex] = set()

    def add_vertices(self, items: Iterable[tuple[VertexId, Label]]) -> None:
        """Add many ``(vertex, label)`` pairs at once."""
        for vertex, label in items:
            self.add_vertex(vertex, label)

    def set_label(self, vertex: VertexId, label: Label) -> None:
        """Change the label of an existing vertex."""
        if vertex not in self._labels:
            raise VertexNotFoundError(vertex)
        self._labels[vertex] = label

    def add_edge(self, u: VertexId, v: VertexId, label: Label | None = None) -> None:
        """Add an undirected edge between two existing vertices.

        Self loops are rejected (they never occur in the molecule-style data
        the paper targets and most sub-iso engines disallow them).  Adding an
        existing edge is a no-op apart from updating its label.
        """
        if u not in self._labels:
            raise VertexNotFoundError(u)
        if v not in self._labels:
            raise VertexNotFoundError(v)
        if u == v:
            raise GraphError(f"self loops are not supported (vertex {u!r})")
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1
        if label is not None:
            self._edge_labels[_edge_key(u, v)] = label

    def add_edges(self, edges: Iterable[tuple[VertexId, VertexId]]) -> None:
        """Add many unlabelled edges at once."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Remove the edge between ``u`` and ``v``; raise if absent."""
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_labels.pop(_edge_key(u, v), None)
        self._num_edges -= 1

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove a vertex and all its incident edges."""
        if vertex not in self._labels:
            raise VertexNotFoundError(vertex)
        for neighbor in list(self._adj[vertex]):
            self.remove_edge(vertex, neighbor)
        del self._adj[vertex]
        del self._labels[vertex]

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._labels

    def vertices(self) -> list[VertexId]:
        """Return the vertex ids (insertion order)."""
        return list(self._labels)

    def edges(self) -> list[tuple[VertexId, VertexId]]:
        """Return every edge exactly once as a canonical ``(u, v)`` pair."""
        seen: set[tuple[VertexId, VertexId]] = set()
        out: list[tuple[VertexId, VertexId]] = []
        for u, neighbors in self._adj.items():
            for v in neighbors:
                key = _edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out

    def has_vertex(self, vertex: VertexId) -> bool:
        """Return True if the vertex exists."""
        return vertex in self._labels

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """Return True if the undirected edge exists."""
        return u in self._adj and v in self._adj[u]

    def label(self, vertex: VertexId) -> Label:
        """Return the label of a vertex."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def edge_label(self, u: VertexId, v: VertexId) -> Label | None:
        """Return the label of an edge, or None if it is unlabelled."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        return self._edge_labels.get(_edge_key(u, v))

    def neighbors(self, vertex: VertexId) -> set[VertexId]:
        """Return the neighbour set of a vertex (a copy is not made)."""
        try:
            return self._adj[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: VertexId) -> int:
        """Return the degree of a vertex."""
        return len(self.neighbors(vertex))

    def degree_sequence(self) -> list[int]:
        """Return the sorted (descending) degree sequence."""
        return sorted((len(adj) for adj in self._adj.values()), reverse=True)

    def labels(self) -> dict[VertexId, Label]:
        """Return a copy of the vertex → label mapping."""
        return dict(self._labels)

    def label_counts(self) -> Counter[Label]:
        """Return a Counter of vertex labels (used for cheap filtering)."""
        return Counter(self._labels.values())

    def label_set(self) -> set[Label]:
        """Return the set of distinct vertex labels."""
        return set(self._labels.values())

    def edge_label_counts(self) -> Counter[tuple[Label, Label]]:
        """Count edges by the (sorted) pair of endpoint labels."""
        counts: Counter[tuple[Label, Label]] = Counter()
        for u, v in self.edges():
            a, b = sorted((self._labels[u], self._labels[v]))
            counts[(a, b)] += 1
        return counts

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """Return True for the empty graph or a single connected component."""
        if not self._labels:
            return True
        return len(self._bfs_component(next(iter(self._labels)))) == self.num_vertices

    def connected_components(self) -> list[set[VertexId]]:
        """Return the vertex sets of the connected components."""
        remaining = set(self._labels)
        components: list[set[VertexId]] = []
        while remaining:
            start = next(iter(remaining))
            component = self._bfs_component(start)
            components.append(component)
            remaining -= component
        return components

    def _bfs_component(self, start: VertexId) -> set[VertexId]:
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in self._adj[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen

    def bfs_order(self, start: VertexId) -> list[VertexId]:
        """Return vertices reachable from ``start`` in BFS order."""
        if start not in self._labels:
            raise VertexNotFoundError(start)
        seen = {start}
        order = [start]
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in sorted(self._adj[current], key=repr):
                if neighbor not in seen:
                    seen.add(neighbor)
                    order.append(neighbor)
                    queue.append(neighbor)
        return order

    def subgraph(self, vertices: Iterable[VertexId]) -> "Graph":
        """Return the induced subgraph on ``vertices`` (labels preserved)."""
        wanted = set(vertices)
        missing = wanted - set(self._labels)
        if missing:
            raise VertexNotFoundError(next(iter(missing)))
        sub = Graph(graph_id=self.graph_id, name=self.name)
        for vertex in self._labels:
            if vertex in wanted:
                sub.add_vertex(vertex, self._labels[vertex])
        for u, v in self.edges():
            if u in wanted and v in wanted:
                sub.add_edge(u, v, self._edge_labels.get(_edge_key(u, v)))
        return sub

    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph(graph_id=self.graph_id, name=self.name)
        clone._labels = dict(self._labels)
        clone._adj = {vertex: set(neighbors) for vertex, neighbors in self._adj.items()}
        clone._edge_labels = dict(self._edge_labels)
        clone._num_edges = self._num_edges
        return clone

    def relabel_vertices(self, mapping: Mapping[VertexId, VertexId] | None = None) -> "Graph":
        """Return a copy with vertex ids renamed.

        Without a mapping the vertices are renamed ``0..n-1`` in insertion
        order — handy for normalising query graphs extracted from dataset
        graphs.
        """
        if mapping is None:
            mapping = {vertex: index for index, vertex in enumerate(self._labels)}
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabelling mapping is not injective")
        out = Graph(graph_id=self.graph_id, name=self.name)
        for vertex, label in self._labels.items():
            out.add_vertex(mapping[vertex], label)
        for u, v in self.edges():
            out.add_edge(mapping[u], mapping[v], self._edge_labels.get(_edge_key(u, v)))
        return out

    # ------------------------------------------------------------------ #
    # hashing / equality screening
    # ------------------------------------------------------------------ #
    def size_signature(self) -> tuple[int, int]:
        """Return ``(num_vertices, num_edges)``."""
        return (self.num_vertices, self.num_edges)

    def wl_hash(self, iterations: int = 3) -> str:
        """Weisfeiler-Lehman style hash of the graph.

        Two isomorphic graphs always produce the same hash; different hashes
        therefore prove non-isomorphism, which the cache uses to screen
        exact-match candidates before running a full isomorphism check.
        """
        colors: dict[VertexId, str] = {
            vertex: _short_hash(label) for vertex, label in self._labels.items()
        }
        for _ in range(max(0, iterations)):
            new_colors: dict[VertexId, str] = {}
            for vertex in self._labels:
                neighbor_colors = sorted(colors[n] for n in self._adj[vertex])
                new_colors[vertex] = _short_hash(colors[vertex] + "|" + ",".join(neighbor_colors))
            colors = new_colors
        histogram = ",".join(sorted(colors.values()))
        return _short_hash(f"{self.num_vertices}:{self.num_edges}:{histogram}")

    def fingerprint(self) -> tuple[int, int, tuple[tuple[Label, int], ...]]:
        """A cheap invariant: sizes plus the sorted label histogram."""
        histogram = tuple(sorted(self.label_counts().items()))
        return (self.num_vertices, self.num_edges, histogram)

    # ------------------------------------------------------------------ #
    # conversion
    # ------------------------------------------------------------------ #
    def to_networkx(self):  # pragma: no cover - thin wrapper, exercised in tests
        """Convert to a :class:`networkx.Graph` with ``label`` attributes."""
        import networkx as nx

        nx_graph = nx.Graph()
        for vertex, label in self._labels.items():
            nx_graph.add_node(vertex, label=label)
        for u, v in self.edges():
            attrs: dict[str, Any] = {}
            edge_label = self._edge_labels.get(_edge_key(u, v))
            if edge_label is not None:
                attrs["label"] = edge_label
            nx_graph.add_edge(u, v, **attrs)
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph, graph_id: int | str | None = None) -> "Graph":
        """Build a :class:`Graph` from a networkx graph (``label`` attribute)."""
        graph = cls(graph_id=graph_id)
        for node, data in nx_graph.nodes(data=True):
            graph.add_vertex(node, str(data.get("label", "")))
        for u, v, data in nx_graph.edges(data=True):
            label = data.get("label")
            graph.add_edge(u, v, None if label is None else str(label))
        return graph

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON friendly dictionary."""
        return {
            "graph_id": self.graph_id,
            "name": self.name,
            "vertices": [[vertex, label] for vertex, label in self._labels.items()],
            "edges": [
                [u, v, self._edge_labels.get(_edge_key(u, v))] for u, v in self.edges()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Graph":
        """Reconstruct a graph serialised by :meth:`to_dict`."""
        graph = cls(graph_id=payload.get("graph_id"), name=payload.get("name"))
        for vertex, label in payload.get("vertices", []):
            graph.add_vertex(vertex, label)
        for entry in payload.get("edges", []):
            u, v = entry[0], entry[1]
            label = entry[2] if len(entry) > 2 else None
            graph.add_edge(u, v, label)
        return graph

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._labels)

    def __repr__(self) -> str:
        ident = f" id={self.graph_id!r}" if self.graph_id is not None else ""
        return f"<Graph{ident} |V|={self.num_vertices} |E|={self.num_edges}>"

    def structural_equal(self, other: "Graph") -> bool:
        """Exact equality of vertex ids, labels and edges (not isomorphism)."""
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._labels == other._labels
            and {vertex: frozenset(adj) for vertex, adj in self._adj.items()}
            == {vertex: frozenset(adj) for vertex, adj in other._adj.items()}
            and self._edge_labels == other._edge_labels
        )


def _short_hash(text: str) -> str:
    """Short stable hash used by the WL colouring."""
    return hashlib.blake2b(text.encode("utf-8"), digest_size=8).hexdigest()


def graph_from_edges(
    edges: Iterable[tuple[VertexId, VertexId]],
    labels: Mapping[VertexId, Label] | None = None,
    graph_id: int | str | None = None,
) -> Graph:
    """Convenience constructor from an edge list plus optional labels.

    Vertices mentioned only in ``labels`` (isolated vertices) are added too.
    Unlabelled vertices get the empty label.
    """
    labels = dict(labels or {})
    graph = Graph(graph_id=graph_id)
    edge_list = list(edges)
    seen: list[VertexId] = []
    for u, v in edge_list:
        for vertex in (u, v):
            if vertex not in graph:
                graph.add_vertex(vertex, labels.get(vertex, ""))
                seen.append(vertex)
    for vertex, label in labels.items():
        if vertex not in graph:
            graph.add_vertex(vertex, label)
    for u, v in edge_list:
        graph.add_edge(u, v)
    return graph


def complete_graph(labels: Iterable[Label], graph_id: int | str | None = None) -> Graph:
    """Build a complete graph whose vertices carry the given labels."""
    graph = Graph(graph_id=graph_id)
    label_list = list(labels)
    for index, label in enumerate(label_list):
        graph.add_vertex(index, label)
    for a, b in itertools.combinations(range(len(label_list)), 2):
        graph.add_edge(a, b)
    return graph


def path_graph(labels: Iterable[Label], graph_id: int | str | None = None) -> Graph:
    """Build a simple path whose vertices carry the given labels in order."""
    graph = Graph(graph_id=graph_id)
    label_list = list(labels)
    for index, label in enumerate(label_list):
        graph.add_vertex(index, label)
    for index in range(len(label_list) - 1):
        graph.add_edge(index, index + 1)
    return graph


def cycle_graph(labels: Iterable[Label], graph_id: int | str | None = None) -> Graph:
    """Build a simple cycle whose vertices carry the given labels in order."""
    label_list = list(labels)
    if len(label_list) < 3:
        raise GraphError("a cycle needs at least three vertices")
    graph = path_graph(label_list, graph_id=graph_id)
    graph.add_edge(len(label_list) - 1, 0)
    return graph


def star_graph(center_label: Label, leaf_labels: Iterable[Label], graph_id: int | str | None = None) -> Graph:
    """Build a star: one centre vertex connected to each leaf."""
    graph = Graph(graph_id=graph_id)
    graph.add_vertex(0, center_label)
    for index, label in enumerate(leaf_labels, start=1):
        graph.add_vertex(index, label)
        graph.add_edge(0, index)
    return graph
