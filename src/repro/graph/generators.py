"""Synthetic dataset generators.

The paper evaluates GC on the AIDS Antiviral Screen dataset (real molecular
graphs) plus synthetic datasets "with various characteristics".  Neither is
shipped here (no network access), so this module provides generators that
reproduce the *statistical shape* the cache cares about:

* :func:`molecule_graph` / :func:`molecule_dataset` — sparse, small graphs
  (10–60 vertices), a small skewed label alphabet (atom symbols), tree-like
  skeletons with a few rings: an AIDS-style stand-in.
* :func:`random_labelled_graph` — Erdős–Rényi style labelled graphs for
  synthetic datasets with controllable density.
* :func:`power_law_graph` — preferential-attachment graphs for social-network
  style datasets.
* :func:`protein_like_graph` — denser, larger-label-alphabet graphs, a stand-in
  for PDBS/PCM style protein data used by the underlying GraphCache paper.

All generators accept a :class:`random.Random` instance (or a seed) so every
experiment in the repository is reproducible.
"""

from __future__ import annotations

import random as _random
from collections.abc import Sequence

from repro.errors import GraphError
from repro.graph.graph import Graph

#: Atom symbols with rough relative abundances mirroring organic molecules
#: (the AIDS antiviral screen compounds are dominated by C/N/O with a tail of
#: heteroatoms).
ATOM_ALPHABET: tuple[tuple[str, float], ...] = (
    ("C", 0.60),
    ("N", 0.12),
    ("O", 0.12),
    ("S", 0.05),
    ("P", 0.03),
    ("Cl", 0.03),
    ("F", 0.02),
    ("Br", 0.015),
    ("I", 0.005),
    ("H", 0.01),
)

#: Amino-acid style alphabet for protein-like graphs.
PROTEIN_ALPHABET: tuple[str, ...] = tuple(
    "ALA ARG ASN ASP CYS GLN GLU GLY HIS ILE LEU LYS MET PHE PRO SER THR TRP TYR VAL".split()
)


def _resolve_rng(rng: _random.Random | int | None) -> _random.Random:
    """Accept a Random, a seed, or None and return a Random instance."""
    if isinstance(rng, _random.Random):
        return rng
    return _random.Random(rng)


def _weighted_choice(rng: _random.Random, alphabet: Sequence[tuple[str, float]]) -> str:
    """Pick a label according to the weights of the alphabet."""
    total = sum(weight for _, weight in alphabet)
    roll = rng.random() * total
    cumulative = 0.0
    for label, weight in alphabet:
        cumulative += weight
        if roll <= cumulative:
            return label
    return alphabet[-1][0]


def molecule_graph(
    num_vertices: int,
    rng: _random.Random | int | None = None,
    ring_probability: float = 0.35,
    graph_id: int | str | None = None,
    alphabet: Sequence[tuple[str, float]] = ATOM_ALPHABET,
) -> Graph:
    """Generate a connected molecule-like labelled graph.

    The construction grows a random tree (every new atom bonds to an existing
    atom, preferring low-degree atoms as real molecules do), then closes a few
    rings by adding extra bonds between nearby atoms.  The result is sparse
    (average degree a little above 2), connected and label-skewed — the regime
    where FTV indexes and the GC cache operate in the paper.
    """
    if num_vertices < 1:
        raise GraphError("a molecule needs at least one atom")
    rng = _resolve_rng(rng)
    graph = Graph(graph_id=graph_id)
    graph.add_vertex(0, _weighted_choice(rng, alphabet))
    for vertex in range(1, num_vertices):
        graph.add_vertex(vertex, _weighted_choice(rng, alphabet))
        # attach to an existing atom, biased towards atoms with few bonds
        candidates = list(range(vertex))
        weights = [1.0 / (1 + graph.degree(existing)) ** 2 for existing in candidates]
        anchor = rng.choices(candidates, weights=weights, k=1)[0]
        graph.add_edge(vertex, anchor)
    # close rings: add a few chords between vertices at distance >= 2
    num_rings = 0
    max_rings = max(0, int(round(ring_probability * num_vertices / 6.0)))
    attempts = 0
    while num_rings < max_rings and attempts < 10 * max(1, max_rings):
        attempts += 1
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v or graph.has_edge(u, v):
            continue
        if graph.degree(u) >= 4 or graph.degree(v) >= 4:
            continue
        graph.add_edge(u, v)
        num_rings += 1
    return graph


def molecule_dataset(
    num_graphs: int,
    min_vertices: int = 10,
    max_vertices: int = 60,
    rng: _random.Random | int | None = None,
    ring_probability: float = 0.35,
) -> list[Graph]:
    """Generate an AIDS-like dataset of molecule graphs with ids ``0..n-1``."""
    if num_graphs < 0:
        raise GraphError("num_graphs must be non-negative")
    if min_vertices > max_vertices:
        raise GraphError("min_vertices must not exceed max_vertices")
    rng = _resolve_rng(rng)
    dataset: list[Graph] = []
    for graph_id in range(num_graphs):
        size = rng.randint(min_vertices, max_vertices)
        dataset.append(
            molecule_graph(
                size,
                rng=rng,
                ring_probability=ring_probability,
                graph_id=graph_id,
            )
        )
    return dataset


def random_labelled_graph(
    num_vertices: int,
    edge_probability: float,
    num_labels: int = 5,
    rng: _random.Random | int | None = None,
    graph_id: int | str | None = None,
    ensure_connected: bool = True,
) -> Graph:
    """Erdős–Rényi style labelled graph (labels ``L0..L{num_labels-1}``).

    With ``ensure_connected`` a random spanning tree is laid down first so the
    result is always connected, matching the datasets used by GraphCache.
    """
    if num_vertices < 0:
        raise GraphError("num_vertices must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError("edge_probability must be within [0, 1]")
    if num_labels < 1:
        raise GraphError("num_labels must be positive")
    rng = _resolve_rng(rng)
    graph = Graph(graph_id=graph_id)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, f"L{rng.randrange(num_labels)}")
    if ensure_connected and num_vertices > 1:
        order = list(range(num_vertices))
        rng.shuffle(order)
        for index in range(1, num_vertices):
            anchor = order[rng.randrange(index)]
            graph.add_edge(order[index], anchor)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if not graph.has_edge(u, v) and rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def power_law_graph(
    num_vertices: int,
    edges_per_vertex: int = 2,
    num_labels: int = 8,
    rng: _random.Random | int | None = None,
    graph_id: int | str | None = None,
) -> Graph:
    """Preferential-attachment ("social network" style) labelled graph."""
    if num_vertices < 1:
        raise GraphError("num_vertices must be positive")
    if edges_per_vertex < 1:
        raise GraphError("edges_per_vertex must be positive")
    rng = _resolve_rng(rng)
    graph = Graph(graph_id=graph_id)
    graph.add_vertex(0, f"L{rng.randrange(num_labels)}")
    degree_pool: list[int] = [0]
    for vertex in range(1, num_vertices):
        graph.add_vertex(vertex, f"L{rng.randrange(num_labels)}")
        targets: set[int] = set()
        attach = min(edges_per_vertex, vertex)
        while len(targets) < attach:
            targets.add(rng.choice(degree_pool))
        for target in targets:
            graph.add_edge(vertex, target)
            degree_pool.append(target)
            degree_pool.append(vertex)
    return graph


def protein_like_graph(
    num_vertices: int,
    rng: _random.Random | int | None = None,
    graph_id: int | str | None = None,
    contact_probability: float = 0.08,
) -> Graph:
    """Protein-contact-map style graph: a backbone chain plus contact edges."""
    if num_vertices < 2:
        raise GraphError("a protein-like graph needs at least two residues")
    rng = _resolve_rng(rng)
    graph = Graph(graph_id=graph_id)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, rng.choice(PROTEIN_ALPHABET))
    for vertex in range(num_vertices - 1):
        graph.add_edge(vertex, vertex + 1)
    for u in range(num_vertices):
        for v in range(u + 2, min(num_vertices, u + 12)):
            if rng.random() < contact_probability:
                graph.add_edge(u, v)
    return graph


def label_clustered_dataset(
    num_clusters: int,
    graphs_per_cluster: int,
    num_vertices: tuple[int, int] = (8, 14),
    labels_per_cluster: int = 4,
    edge_probability: float = 0.15,
    rng: _random.Random | int | None = None,
) -> list[Graph]:
    """A dataset of label-disjoint clusters, shard-aligned under ``hash``.

    Cluster ``c`` draws its vertex labels from a private alphabet
    ``C<c>L0..``, modelling per-source ingest locality (each data source
    contributes structurally distinct graphs).  Graph ids are chosen so that
    the stable crc32 id hash routes cluster ``c`` onto shard ``c`` when
    ``num_shards == num_clusters`` under the ``hash`` policy — the
    NeedleTail-style locality regime where per-shard feature summaries make
    short-circuit scatter effective (a query touching one cluster's labels
    is provably unanswerable everywhere else).
    """
    # deferred import: the router depends on the graph model, not vice versa
    from repro.sharding.router import stable_graph_id_hash

    if num_clusters < 1 or graphs_per_cluster < 1:
        raise GraphError("num_clusters and graphs_per_cluster must be positive")
    rng = _resolve_rng(rng)
    lo, hi = num_vertices
    dataset: list[Graph] = []
    for cluster in range(num_clusters):
        produced = 0
        candidate = 0
        while produced < graphs_per_cluster:
            graph_id = f"c{cluster}-{candidate}"
            candidate += 1
            if stable_graph_id_hash(graph_id) % num_clusters != cluster:
                continue  # keep ids whose hash lands the graph on shard `cluster`
            graph = random_labelled_graph(
                rng.randint(lo, hi), edge_probability,
                num_labels=labels_per_cluster, rng=rng, graph_id=graph_id,
            )
            for vertex in graph.vertices():
                graph.set_label(vertex, f"C{cluster}{graph.label(vertex)}")
            dataset.append(graph)
            produced += 1
    return dataset


def synthetic_dataset(
    num_graphs: int,
    kind: str = "molecule",
    rng: _random.Random | int | None = None,
    **kwargs,
) -> list[Graph]:
    """Generate a dataset of a named kind.

    ``kind`` is one of ``molecule``, ``random``, ``powerlaw`` or ``protein``;
    extra keyword arguments are forwarded to the per-graph generator.
    """
    rng = _resolve_rng(rng)
    dataset: list[Graph] = []
    for graph_id in range(num_graphs):
        if kind == "molecule":
            size = rng.randint(kwargs.get("min_vertices", 10), kwargs.get("max_vertices", 60))
            graph = molecule_graph(size, rng=rng, graph_id=graph_id)
        elif kind == "random":
            graph = random_labelled_graph(
                kwargs.get("num_vertices", 30),
                kwargs.get("edge_probability", 0.08),
                num_labels=kwargs.get("num_labels", 5),
                rng=rng,
                graph_id=graph_id,
            )
        elif kind == "powerlaw":
            graph = power_law_graph(
                kwargs.get("num_vertices", 40),
                edges_per_vertex=kwargs.get("edges_per_vertex", 2),
                num_labels=kwargs.get("num_labels", 8),
                rng=rng,
                graph_id=graph_id,
            )
        elif kind == "protein":
            graph = protein_like_graph(
                kwargs.get("num_vertices", 50),
                rng=rng,
                graph_id=graph_id,
            )
        else:
            raise GraphError(f"unknown dataset kind {kind!r}")
        dataset.append(graph)
    return dataset
