"""Canonical forms and isomorphism-invariant codes for small graphs.

The cache needs a fast way to decide whether two query graphs *might* be
isomorphic (exact-match detection).  Three tools are provided, in increasing
cost and precision:

* :func:`invariant_code` — a cheap invariant (sizes, label histogram, degree
  sequence, sorted edge-label-pair histogram).  Different codes ⇒ definitely
  not isomorphic.
* :func:`wl_code` — the Weisfeiler-Lehman hash from :meth:`Graph.wl_hash`;
  stronger, still not exact.
* :func:`canonical_code` — an exact canonical form computed by trying all
  automorphism-compatible orderings with heavy pruning.  Exponential in the
  worst case, intended for the small query graphs (≤ ~30 vertices) the paper
  uses; guarded by a configurable size threshold in the cache, which falls
  back to a full isomorphism test beyond it.
"""

from __future__ import annotations

import itertools
from collections import Counter

from repro.graph.graph import Graph, VertexId


def invariant_code(graph: Graph) -> tuple:
    """A cheap isomorphism-invariant code (necessary, not sufficient)."""
    label_histogram = tuple(sorted(graph.label_counts().items()))
    edge_histogram = tuple(sorted(graph.edge_label_counts().items()))
    degree_sequence = tuple(graph.degree_sequence())
    return (
        graph.num_vertices,
        graph.num_edges,
        label_histogram,
        edge_histogram,
        degree_sequence,
    )


def wl_code(graph: Graph, iterations: int = 3) -> str:
    """Weisfeiler-Lehman hash (delegates to :meth:`Graph.wl_hash`)."""
    return graph.wl_hash(iterations=iterations)


def _refine_partition(graph: Graph) -> dict[VertexId, int]:
    """Colour-refinement: return a stable colour class per vertex."""
    colors: dict[VertexId, tuple] = {
        vertex: (graph.label(vertex), graph.degree(vertex)) for vertex in graph.vertices()
    }
    while True:
        new_colors: dict[VertexId, tuple] = {}
        for vertex in graph.vertices():
            neighbor_colors = tuple(sorted(colors[n] for n in graph.neighbors(vertex)))
            new_colors[vertex] = (colors[vertex], neighbor_colors)
        if len(set(new_colors.values())) == len(set(colors.values())):
            colors = new_colors
            break
        colors = new_colors
    # map the (arbitrary, hashable) colours to dense integers deterministically
    ordered = {color: index for index, color in enumerate(sorted(set(colors.values()), key=repr))}
    return {vertex: ordered[colors[vertex]] for vertex in graph.vertices()}


def canonical_code(graph: Graph, max_vertices: int = 24) -> str | None:
    """Exact canonical string, or ``None`` if the graph is too large.

    The code is the lexicographically smallest serialisation over all vertex
    orderings compatible with the colour-refinement classes.  Two graphs are
    isomorphic iff their canonical codes are equal (when both are computed).
    """
    n = graph.num_vertices
    if n == 0:
        return "empty"
    if n > max_vertices:
        return None
    colors = _refine_partition(graph)
    # group vertices by colour class; permute only within classes
    classes: dict[int, list[VertexId]] = {}
    for vertex, color in colors.items():
        classes.setdefault(color, []).append(vertex)
    class_order = sorted(classes)
    # guard against factorial blow-up inside a colour class
    budget = 1
    for color in class_order:
        budget *= _factorial_capped(len(classes[color]), cap=50000)
        if budget > 50000:
            return None
    best: str | None = None
    for ordering in _orderings(classes, class_order):
        code = _serialise(graph, ordering)
        if best is None or code < best:
            best = code
    return best


def _factorial_capped(k: int, cap: int) -> int:
    result = 1
    for i in range(2, k + 1):
        result *= i
        if result > cap:
            return result
    return result


def _orderings(classes: dict[int, list[VertexId]], class_order: list[int]):
    """Yield full vertex orderings as products of per-class permutations."""
    per_class = [list(itertools.permutations(classes[color])) for color in class_order]
    for combo in itertools.product(*per_class):
        ordering: list[VertexId] = []
        for group in combo:
            ordering.extend(group)
        yield ordering


def _serialise(graph: Graph, ordering: list[VertexId]) -> str:
    position = {vertex: index for index, vertex in enumerate(ordering)}
    labels = ",".join(graph.label(vertex) for vertex in ordering)
    edges = []
    for u, v in graph.edges():
        a, b = sorted((position[u], position[v]))
        edge_label = graph.edge_label(u, v) or ""
        edges.append(f"{a}-{b}:{edge_label}")
    return labels + "|" + ";".join(sorted(edges))


def maybe_isomorphic(first: Graph, second: Graph) -> bool:
    """Cheap necessary check: can the two graphs possibly be isomorphic?"""
    return invariant_code(first) == invariant_code(second)


def definitely_isomorphic(first: Graph, second: Graph, max_vertices: int = 24) -> bool | None:
    """Exact isomorphism via canonical codes; ``None`` when undecided.

    ``None`` means at least one canonical code could not be computed within
    the size limit — the caller should fall back to a full matcher.
    """
    if not maybe_isomorphic(first, second):
        return False
    code_first = canonical_code(first, max_vertices=max_vertices)
    code_second = canonical_code(second, max_vertices=max_vertices)
    if code_first is None or code_second is None:
        return None
    return code_first == code_second


def label_multiset_contained(query: Graph, target: Graph) -> bool:
    """Necessary condition for ``query ⊆ target``: label multiset containment."""
    query_counts = query.label_counts()
    target_counts = target.label_counts()
    return all(target_counts.get(label, 0) >= count for label, count in query_counts.items())


def degree_profile_contained(query: Graph, target: Graph) -> bool:
    """Necessary condition for ``query ⊆ target`` based on per-label degrees.

    For every query vertex there must exist a distinct target vertex with the
    same label and at least the same degree.  (Checked greedily per label,
    which is exact because degrees within one label class are a total order.)
    """
    by_label_query: dict[str, list[int]] = {}
    for vertex in query.vertices():
        by_label_query.setdefault(query.label(vertex), []).append(query.degree(vertex))
    by_label_target: dict[str, list[int]] = {}
    for vertex in target.vertices():
        by_label_target.setdefault(target.label(vertex), []).append(target.degree(vertex))
    for label, query_degrees in by_label_query.items():
        target_degrees = sorted(by_label_target.get(label, []), reverse=True)
        if len(target_degrees) < len(query_degrees):
            return False
        for position, degree in enumerate(sorted(query_degrees, reverse=True)):
            if target_degrees[position] < degree:
                return False
    return True


def size_contained(query: Graph, target: Graph) -> bool:
    """Necessary condition for ``query ⊆ target``: vertex and edge counts."""
    return query.num_vertices <= target.num_vertices and query.num_edges <= target.num_edges


def quick_containment_screen(query: Graph, target: Graph) -> bool:
    """All cheap necessary conditions for ``query ⊆ target`` combined."""
    return (
        size_contained(query, target)
        and label_multiset_contained(query, target)
        and degree_profile_contained(query, target)
    )


def label_vector(graph: Graph, alphabet: list[str]) -> tuple[int, ...]:
    """Histogram of labels over a fixed alphabet (for vectorised screens)."""
    counts: Counter[str] = graph.label_counts()
    return tuple(counts.get(label, 0) for label in alphabet)
