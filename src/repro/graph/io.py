"""Reading and writing graph transaction files.

Two text formats are supported:

* the classic *graph transaction* format used by the AIDS / GraphGrep family
  of tools (``t # <id>`` / ``v <id> <label>`` / ``e <u> <v> [label]`` lines);
* a JSON format (one dataset = a list of :meth:`Graph.to_dict` payloads).

Both round-trip losslessly through :class:`repro.graph.Graph`.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import GraphFormatError
from repro.graph.graph import Graph


def parse_transaction_text(text: str) -> list[Graph]:
    """Parse the ``t # id / v / e`` transaction format from a string."""
    graphs: list[Graph] = []
    current: Graph | None = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "t":
            # "t # 3" or "t 3"
            payload = [p for p in parts[1:] if p != "#"]
            graph_id: int | str | None = None
            if payload:
                graph_id = _parse_scalar(payload[0])
            current = Graph(graph_id=graph_id)
            graphs.append(current)
        elif kind == "v":
            if current is None:
                raise GraphFormatError(f"line {line_number}: vertex before any 't' line")
            if len(parts) < 3:
                raise GraphFormatError(f"line {line_number}: vertex line needs an id and a label")
            current.add_vertex(_parse_scalar(parts[1]), parts[2])
        elif kind == "e":
            if current is None:
                raise GraphFormatError(f"line {line_number}: edge before any 't' line")
            if len(parts) < 3:
                raise GraphFormatError(f"line {line_number}: edge line needs two endpoints")
            label = parts[3] if len(parts) > 3 else None
            current.add_edge(_parse_scalar(parts[1]), _parse_scalar(parts[2]), label)
        else:
            raise GraphFormatError(f"line {line_number}: unknown record type {kind!r}")
    return graphs


def _parse_scalar(token: str) -> int | str:
    """Parse ints where possible so vertex/graph ids behave naturally."""
    try:
        return int(token)
    except ValueError:
        return token


def format_transaction_text(graphs: Iterable[Graph]) -> str:
    """Serialise graphs to the transaction text format."""
    lines: list[str] = []
    for index, graph in enumerate(graphs):
        graph_id = graph.graph_id if graph.graph_id is not None else index
        lines.append(f"t # {graph_id}")
        vertex_order = {vertex: position for position, vertex in enumerate(graph.vertices())}
        for vertex in graph.vertices():
            lines.append(f"v {vertex_order[vertex]} {graph.label(vertex) or '_'}")
        for u, v in graph.edges():
            label = graph.edge_label(u, v)
            suffix = f" {label}" if label is not None else ""
            lines.append(f"e {vertex_order[u]} {vertex_order[v]}{suffix}")
    return "\n".join(lines) + ("\n" if lines else "")


def load_transaction_file(path: str | Path) -> list[Graph]:
    """Load a dataset from a transaction-format text file."""
    content = Path(path).read_text(encoding="utf-8")
    return parse_transaction_text(content)


def save_transaction_file(graphs: Iterable[Graph], path: str | Path) -> None:
    """Write a dataset to a transaction-format text file."""
    Path(path).write_text(format_transaction_text(graphs), encoding="utf-8")


def load_json_file(path: str | Path) -> list[Graph]:
    """Load a dataset from a JSON file produced by :func:`save_json_file`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise GraphFormatError("JSON dataset must be a list of graph objects")
    return [Graph.from_dict(entry) for entry in payload]


def save_json_file(graphs: Iterable[Graph], path: str | Path) -> None:
    """Write a dataset to JSON (a list of :meth:`Graph.to_dict` payloads)."""
    payload = [graph.to_dict() for graph in graphs]
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_dataset(path: str | Path) -> list[Graph]:
    """Load a dataset, dispatching on the file extension (.json or text)."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        return load_json_file(path)
    return load_transaction_file(path)


def iter_transaction_blocks(text: str) -> Iterator[str]:
    """Yield the raw text block of each graph in a transaction file.

    Useful for streaming very large files without materialising every graph.
    """
    block: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if line.startswith("t"):
            if block:
                yield "\n".join(block)
            block = [line]
        elif line:
            block.append(line)
    if block:
        yield "\n".join(block)
