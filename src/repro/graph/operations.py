"""Graph operations used by the workload generators and the cache.

The central operation is :func:`random_connected_subgraph`: the paper states
that workload queries are "generated from graphs in dataset following
established principles", i.e. by extracting connected subgraphs from dataset
graphs (the standard methodology of the FTV literature).  Query graphs that
are subgraphs/supergraphs of each other — the situation GC exploits — are
produced by :func:`shrink_graph` and :func:`extend_graph`.
"""

from __future__ import annotations

import random as _random
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graph.graph import Graph, VertexId


def _resolve_rng(rng: _random.Random | int | None) -> _random.Random:
    if isinstance(rng, _random.Random):
        return rng
    return _random.Random(rng)


def random_connected_subgraph(
    graph: Graph,
    num_vertices: int,
    rng: _random.Random | int | None = None,
    relabel: bool = True,
) -> Graph:
    """Extract a connected subgraph with ``num_vertices`` vertices.

    A random-walk/BFS frontier expansion is used: start from a random vertex
    and repeatedly absorb a random frontier neighbour.  The induced subgraph
    on the selected vertices is returned (standard query-generation procedure
    of the sub-iso indexing literature).

    With ``relabel`` the result's vertices are renamed ``0..k-1`` so the query
    does not leak dataset vertex identities.
    """
    if num_vertices < 1:
        raise GraphError("num_vertices must be positive")
    if num_vertices > graph.num_vertices:
        raise GraphError(
            f"cannot extract {num_vertices} vertices from a graph with {graph.num_vertices}"
        )
    rng = _resolve_rng(rng)
    vertices = graph.vertices()
    start = vertices[rng.randrange(len(vertices))]
    selected: set[VertexId] = {start}
    frontier: list[VertexId] = [v for v in graph.neighbors(start)]
    while len(selected) < num_vertices:
        if not frontier:
            # The component of `start` is exhausted; jump to a fresh vertex in
            # another component so we can still honour the size request.
            remaining = [v for v in vertices if v not in selected]
            if not remaining:
                break
            jump = remaining[rng.randrange(len(remaining))]
            selected.add(jump)
            frontier.extend(v for v in graph.neighbors(jump) if v not in selected)
            continue
        index = rng.randrange(len(frontier))
        frontier[index], frontier[-1] = frontier[-1], frontier[index]
        candidate = frontier.pop()
        if candidate in selected:
            continue
        selected.add(candidate)
        frontier.extend(v for v in graph.neighbors(candidate) if v not in selected)
    sub = graph.subgraph(selected)
    sub.graph_id = None
    sub.name = None
    return sub.relabel_vertices() if relabel else sub


def shrink_graph(
    graph: Graph,
    num_vertices: int,
    rng: _random.Random | int | None = None,
) -> Graph:
    """Return a connected subgraph of ``graph`` with ``num_vertices`` vertices.

    Used by the workload generator to create *sub-case* queries: the result is
    guaranteed (by construction) to be subgraph-isomorphic to ``graph``.
    """
    return random_connected_subgraph(graph, num_vertices, rng=rng, relabel=True)


def extend_graph(
    graph: Graph,
    extra_vertices: int,
    labels: Iterable[str],
    rng: _random.Random | int | None = None,
    extra_edge_probability: float = 0.2,
) -> Graph:
    """Return a supergraph of ``graph`` with ``extra_vertices`` more vertices.

    New vertices are attached to random existing vertices (keeping the graph
    connected); a few extra edges between new vertices may be added.  Used by
    the workload generator to create *super-case* queries: ``graph`` is
    subgraph-isomorphic to the result by construction.
    """
    if extra_vertices < 0:
        raise GraphError("extra_vertices must be non-negative")
    rng = _resolve_rng(rng)
    label_pool = list(labels)
    if extra_vertices > 0 and not label_pool:
        raise GraphError("a non-empty label pool is required to extend a graph")
    out = graph.relabel_vertices()
    next_id = out.num_vertices
    new_ids: list[int] = []
    for _ in range(extra_vertices):
        label = label_pool[rng.randrange(len(label_pool))]
        out.add_vertex(next_id, label)
        anchors = out.vertices()[:-1]
        if anchors:
            anchor = anchors[rng.randrange(len(anchors))]
            out.add_edge(next_id, anchor)
        new_ids.append(next_id)
        next_id += 1
    for i, u in enumerate(new_ids):
        for v in new_ids[i + 1:]:
            if rng.random() < extra_edge_probability and not out.has_edge(u, v):
                out.add_edge(u, v)
    return out


def disjoint_union(first: Graph, second: Graph) -> Graph:
    """Return the disjoint union of two graphs with vertices renumbered."""
    out = Graph()
    mapping_first = {vertex: index for index, vertex in enumerate(first.vertices())}
    offset = len(mapping_first)
    mapping_second = {vertex: offset + index for index, vertex in enumerate(second.vertices())}
    for vertex, new_id in mapping_first.items():
        out.add_vertex(new_id, first.label(vertex))
    for vertex, new_id in mapping_second.items():
        out.add_vertex(new_id, second.label(vertex))
    for u, v in first.edges():
        out.add_edge(mapping_first[u], mapping_first[v], first.edge_label(u, v))
    for u, v in second.edges():
        out.add_edge(mapping_second[u], mapping_second[v], second.edge_label(u, v))
    return out


def edge_induced_subgraph(graph: Graph, edges: Iterable[tuple[VertexId, VertexId]]) -> Graph:
    """Return the subgraph made of exactly the given edges (plus endpoints)."""
    out = Graph(graph_id=graph.graph_id)
    for u, v in edges:
        if not graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is not present in the source graph")
        for vertex in (u, v):
            if vertex not in out:
                out.add_vertex(vertex, graph.label(vertex))
        out.add_edge(u, v, graph.edge_label(u, v))
    return out


def graph_density(graph: Graph) -> float:
    """Return ``2|E| / (|V| (|V|-1))`` (0.0 for graphs with < 2 vertices)."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def average_degree(graph: Graph) -> float:
    """Return the average vertex degree (0.0 for the empty graph)."""
    if graph.num_vertices == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_vertices


def dataset_statistics(dataset: Iterable[Graph]) -> dict[str, float]:
    """Summary statistics of a dataset (used by dashboards and reports)."""
    graphs = list(dataset)
    if not graphs:
        return {
            "num_graphs": 0,
            "avg_vertices": 0.0,
            "avg_edges": 0.0,
            "avg_density": 0.0,
            "num_labels": 0,
        }
    labels: set[str] = set()
    for graph in graphs:
        labels |= graph.label_set()
    return {
        "num_graphs": len(graphs),
        "avg_vertices": sum(g.num_vertices for g in graphs) / len(graphs),
        "avg_edges": sum(g.num_edges for g in graphs) / len(graphs),
        "avg_density": sum(graph_density(g) for g in graphs) / len(graphs),
        "num_labels": len(labels),
    }
