"""Minimal SDF / MDL molfile (V2000) reader and writer.

The paper's dataset is the NCI AIDS Antiviral Screen, which is distributed as
SDF.  This module lets the library ingest real molecule files when they are
available (and write its synthetic molecules back out in the same format), so
the synthetic-data substitution documented in DESIGN.md can be swapped for
the real thing without touching any other code.

Only the fields GC cares about are interpreted: atom symbols become vertex
labels and bonds become edges (the bond order becomes the edge label).
Coordinates, charges and property blocks are ignored on read and zeroed on
write.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from repro.errors import GraphFormatError
from repro.graph.graph import Graph


def parse_molfile(text: str, graph_id: int | str | None = None) -> Graph:
    """Parse one V2000 molfile block into a :class:`Graph`."""
    lines = text.splitlines()
    if len(lines) < 4:
        raise GraphFormatError("molfile block is too short")
    name = lines[0].strip() or None
    counts = lines[3]
    try:
        num_atoms = int(counts[0:3])
        num_bonds = int(counts[3:6])
    except (ValueError, IndexError):
        raise GraphFormatError(f"malformed counts line: {counts!r}") from None
    atom_lines = lines[4: 4 + num_atoms]
    bond_lines = lines[4 + num_atoms: 4 + num_atoms + num_bonds]
    if len(atom_lines) < num_atoms or len(bond_lines) < num_bonds:
        raise GraphFormatError("molfile block truncated (missing atom/bond lines)")

    graph = Graph(graph_id=graph_id, name=name)
    for index, line in enumerate(atom_lines):
        parts = line.split()
        if len(parts) < 4:
            raise GraphFormatError(f"malformed atom line: {line!r}")
        graph.add_vertex(index, parts[3])
    for line in bond_lines:
        try:
            first = int(line[0:3]) - 1
            second = int(line[3:6]) - 1
            order = line[6:9].strip() or "1"
        except (ValueError, IndexError):
            raise GraphFormatError(f"malformed bond line: {line!r}") from None
        if not (0 <= first < num_atoms and 0 <= second < num_atoms):
            raise GraphFormatError(f"bond references missing atom: {line!r}")
        if first != second and not graph.has_edge(first, second):
            graph.add_edge(first, second, order)
    return graph


def parse_sdf_text(text: str) -> list[Graph]:
    """Parse a (possibly multi-molecule) SDF string."""
    graphs: list[Graph] = []
    for index, block in enumerate(_split_sdf_blocks(text)):
        graphs.append(parse_molfile(block, graph_id=index))
    return graphs


def _split_sdf_blocks(text: str) -> Iterable[str]:
    block: list[str] = []
    for line in text.splitlines():
        if line.strip() == "$$$$":
            if any(entry.strip() for entry in block):
                yield "\n".join(_strip_property_block(block))
            block = []
        else:
            block.append(line)
    if any(entry.strip() for entry in block):
        yield "\n".join(_strip_property_block(block))


def _strip_property_block(lines: list[str]) -> list[str]:
    """Drop everything from 'M  END' onwards (data fields are not needed)."""
    for position, line in enumerate(lines):
        if line.startswith("M  END"):
            return lines[:position]
    return lines


def format_molfile(graph: Graph) -> str:
    """Serialise one graph as a V2000 molfile block."""
    vertex_order = {vertex: position for position, vertex in enumerate(graph.vertices())}
    lines = [
        str(graph.name or graph.graph_id or ""),
        "  repro-gc",
        "",
        f"{graph.num_vertices:>3}{graph.num_edges:>3}  0  0  0  0  0  0  0  0999 V2000",
    ]
    for vertex in graph.vertices():
        label = graph.label(vertex) or "C"
        lines.append(f"{0.0:>10.4f}{0.0:>10.4f}{0.0:>10.4f} {label:<3} 0  0  0  0  0  0  0  0  0  0  0  0")
    for u, v in graph.edges():
        order = graph.edge_label(u, v) or "1"
        try:
            order_number = int(order)
        except ValueError:
            order_number = 1
        lines.append(f"{vertex_order[u] + 1:>3}{vertex_order[v] + 1:>3}{order_number:>3}  0  0  0  0")
    lines.append("M  END")
    return "\n".join(lines)


def format_sdf_text(graphs: Iterable[Graph]) -> str:
    """Serialise many graphs as a multi-molecule SDF string."""
    blocks = [format_molfile(graph) for graph in graphs]
    return "\n$$$$\n".join(blocks) + ("\n$$$$\n" if blocks else "")


def load_sdf_file(path: str | Path) -> list[Graph]:
    """Load a dataset from an SDF file."""
    return parse_sdf_text(Path(path).read_text(encoding="utf-8"))


def save_sdf_file(graphs: Iterable[Graph], path: str | Path) -> None:
    """Write a dataset to an SDF file."""
    Path(path).write_text(format_sdf_text(graphs), encoding="utf-8")
