"""GraphCacheSystem: the public facade of the GC reproduction.

This is the class a downstream application embeds ("GC per se could be
plugged into general graph systems as a library").  It wires up Method M, the
graph cache and the query executor from a :class:`GCConfig` and exposes a
small API: run queries, inspect statistics, measure memory overheads.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.cache.graph_cache import GraphCache
from repro.cache.statistics import AggregateStatistics, QueryRecord, StatisticsManager
from repro.errors import ConfigurationError
from repro.features.paths import PathFeatureExtractor
from repro.graph.graph import Graph
from repro.isomorphism import make_matcher
from repro.methods.base import MethodM
from repro.methods.registry import make_method
from repro.query_model import Query, QueryType
from repro.runtime.config import GCConfig
from repro.runtime.executor import QueryExecutor
from repro.runtime.report import QueryReport


class GraphCacheSystem:
    """GC deployed over a Method M for a fixed dataset."""

    def __init__(
        self,
        dataset: Sequence[Graph],
        config: GCConfig | None = None,
        method: MethodM | None = None,
    ) -> None:
        self.config = config or GCConfig()
        self.config.validate()
        self.dataset = list(dataset)
        if not self.dataset:
            raise ConfigurationError("the dataset must contain at least one graph")

        if method is None:
            verifier = make_matcher(self.config.verifier)
            method = make_method(self.config.method, verifier=verifier, **self.config.method_options)
        self.method = method
        self.method.verify_threads = self.config.verify_threads
        self.method.build(self.dataset)

        self.cache: GraphCache | None = None
        if self.config.cache_enabled:
            self.cache = GraphCache(
                capacity=self.config.cache_capacity,
                policy=self.config.replacement_policy,
                window_size=self.config.window_size,
                min_tests_to_admit=self.config.min_tests_to_admit,
                probe_matcher=make_matcher(self.config.verifier),
                feature_extractor=PathFeatureExtractor(
                    max_length=self.config.cache_feature_length
                ),
                max_sub_hits=self.config.max_sub_hits,
                max_super_hits=self.config.max_super_hits,
                enable_sub_case=self.config.enable_sub_case,
                enable_super_case=self.config.enable_super_case,
                memory_budget_bytes=self.config.cache_memory_budget_bytes,
                async_maintenance=self.config.async_maintenance,
            )

        self.statistics = StatisticsManager()
        self.executor = QueryExecutor(
            method=self.method,
            cache=self.cache,
            statistics=self.statistics,
            measure_baseline=self.config.measure_baseline,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def all_caches(self) -> list[GraphCache]:
        """Every cache this system owns (0 or 1 here; N for sharded systems).

        The shared accessor the server and the workload runner use so they
        need not care whether they hold a single system or a
        :class:`~repro.sharding.system.ShardedGraphCacheSystem`.
        """
        return [self.cache] if self.cache is not None else []

    def close(self) -> None:
        """Release background resources (maintenance worker, verify pool)."""
        if self.cache is not None:
            self.cache.close()
        self.method.parallel_verifier.close()

    def __enter__(self) -> "GraphCacheSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # query execution
    # ------------------------------------------------------------------ #
    def run_query(
        self, query: Query | Graph, query_type: QueryType | str = QueryType.SUBGRAPH
    ) -> QueryReport:
        """Process one query (a :class:`Query` or a bare pattern graph)."""
        return self.executor.execute(query, query_type)

    def run_queries(
        self,
        queries: Iterable[Query | Graph],
        query_type: QueryType | str = QueryType.SUBGRAPH,
    ) -> list[QueryReport]:
        """Process many queries in order and return their reports."""
        return [self.run_query(query, query_type) for query in queries]

    def run_queries_concurrent(
        self,
        queries: Iterable[Query | Graph],
        query_type: QueryType | str = QueryType.SUBGRAPH,
        max_workers: int | None = None,
    ) -> list[QueryReport]:
        """Process queries on a thread pool of concurrent query streams.

        Reports are returned in *submission order* regardless of completion
        order, so downstream comparisons are deterministic.  Answer sets are
        identical to sequential execution: the cache only ever prunes
        candidates it can guarantee, whatever interleaving occurs.  With
        async maintenance enabled, pending admissions are drained before
        returning so the cache state is settled.

        ``max_workers`` defaults to ``config.max_workers``; a value of 1
        falls back to plain sequential :meth:`run_queries`.
        """
        workers = self.config.max_workers if max_workers is None else max_workers
        if workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        query_list = list(queries)
        if workers == 1 or len(query_list) <= 1:
            reports = self.run_queries(query_list, query_type)
        else:
            reports = [None] * len(query_list)  # type: ignore[list-item]
            with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="gc-query") as pool:
                futures = {
                    pool.submit(self.run_query, query, query_type): position
                    for position, query in enumerate(query_list)
                }
                for future, position in futures.items():
                    reports[position] = future.result()
            # statistics records appended in completion order — restore
            # submission order so per-position views line up with `reports`
            self.statistics.reorder([report.query.query_id for report in reports])
        if self.cache is not None:
            self.cache.drain_maintenance()
        return reports

    def warm_cache(
        self,
        queries: Iterable[Query | Graph],
        query_type: QueryType | str = QueryType.SUBGRAPH,
        reset_statistics: bool = True,
    ) -> None:
        """Execute queries purely to populate the cache, then flush the window.

        The demo's scenarios start from "a graph cache with 50 executed
        queries"; this reproduces that warm state.  Statistics collected
        during warm-up are discarded by default.
        """
        for query in queries:
            self.run_query(query, query_type)
        if self.cache is not None:
            self.cache.flush_window()
        if reset_statistics:
            self.statistics.reset()

    def flush_window(self) -> None:
        """Promote the admission window into the cache proper.

        No-op when caching is disabled.  This is the shard-level hook the
        sharded warm-up path calls uniformly across execution backends (a
        process shard proxy forwards it to its worker).
        """
        if self.cache is not None:
            self.cache.flush_window()

    def estimate_shard_costs(self, query, query_type: QueryType | str = QueryType.SUBGRAPH) -> dict[int, float]:
        """Estimated verification seconds for one query, as pseudo-shard 0.

        The unsharded half of the cost-based admission contract: planned
        candidate count (observed mean dataset tests per query, or the
        dataset size before any observation) times the observed per-test
        cost.  A sharded system returns one entry per *targeted* shard
        instead, so the request batcher can backpressure per shard.
        """
        from repro.runtime.config import DEFAULT_TEST_COST_SECONDS

        per_test = self.statistics.observed_test_cost(default=DEFAULT_TEST_COST_SECONDS)
        candidates = self.statistics.mean_dataset_tests(default=len(self.dataset))
        return {0: candidates * per_test}

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def save_snapshot(self, path) -> int:
        """Persist the cache to ``path``; returns entries written (0 = no cache)."""
        from repro.cache.persistence import save_cache

        if self.cache is None:
            return 0
        self.cache.drain_maintenance()
        return save_cache(self.cache, path)

    def restore_snapshot(self, path) -> int:
        """Warm the cache from ``path``; returns entries restored.

        Returns 0 (cold start) when the cache is disabled, the file is
        missing, or the file is a *sharded* snapshot manifest — those only
        make sense for the shard layout they were written under.  A corrupt
        or malformed snapshot raises (so a warm-cache file is never silently
        discarded and overwritten at the next shutdown).
        """
        import json
        from pathlib import Path

        from repro.cache.persistence import entries_from_payload

        snapshot = Path(path)
        if self.cache is None or not snapshot.exists():
            return 0
        payload = json.loads(snapshot.read_text(encoding="utf-8"))
        if isinstance(payload, dict) and payload.get("sharded"):
            return 0
        entries = entries_from_payload(payload)
        self.cache.warm(entries)
        return min(len(entries), len(self.cache))

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def aggregate(self) -> AggregateStatistics:
        """Aggregate statistics over every query processed so far."""
        return self.statistics.aggregate()

    def records(self) -> list[QueryRecord]:
        """Per-query statistic records."""
        return self.statistics.records()

    def stage_breakdown(self) -> list[dict[str, float]]:
        """Per-pipeline-stage latency summary over every query so far."""
        return self.statistics.stage_breakdown()

    def hit_percentages(self) -> list[float]:
        """Per-query hit percentage (hits / cached graphs), as in Fig. 2(b).

        The cache population each query saw is carried on its own record, so
        the denominators stay aligned even when queries complete out of
        submission order under concurrent execution.
        """
        return self.statistics.per_record_hit_percentages()

    def cache_memory_bytes(self) -> int:
        """Approximate memory used by the cache (0 when disabled)."""
        return self.cache.memory_bytes() if self.cache is not None else 0

    def index_memory_bytes(self) -> int:
        """Approximate memory used by Method M's filter index."""
        return self.method.index_memory_bytes()

    def memory_overhead_ratio(self) -> float:
        """Cache memory as a fraction of Method M's index memory."""
        index_bytes = self.index_memory_bytes()
        if index_bytes <= 0:
            return float("inf") if self.cache_memory_bytes() > 0 else 0.0
        return self.cache_memory_bytes() / index_bytes

    def describe(self) -> dict[str, object]:
        """Full description of the deployed system (for reports)."""
        description: dict[str, object] = {
            "config": self.config.to_dict(),
            "method": self.method.describe(),
            "dataset_size": len(self.dataset),
        }
        if self.cache is not None:
            description["cache"] = self.cache.describe()
        return description
