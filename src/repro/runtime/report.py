"""Per-query report: the full "Query Journey" data for one processed query.

The :class:`QueryReport` carries the actual sets (not just their sizes) of
every quantity Fig. 3 of the paper visualises, so the dashboard scenarios and
the benchmarks can reproduce the journey exactly:

* ``H`` / ``H'`` — confirmed sub-case / super-case hits,
* ``C_M``        — Method M's candidate set,
* ``S`` / ``S'`` — guaranteed answers / guaranteed non-answers,
* ``C``          — candidates GC actually verified,
* ``R``          — candidates that survived verification,
* ``A``          — the final answer set (``R ∪ S``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.base import GraphId
from repro.query_model import Query


@dataclass
class QueryReport:
    """Everything GC did for one query."""

    query: Query
    # hits
    exact_hit_entry: int | None = None
    sub_hit_entries: list[int] = field(default_factory=list)
    super_hit_entries: list[int] = field(default_factory=list)
    # the journey sets
    method_candidates: set[GraphId] = field(default_factory=set)      # C_M
    guaranteed_answers: set[GraphId] = field(default_factory=set)     # S
    guaranteed_non_answers: set[GraphId] = field(default_factory=set)  # S'
    verified_candidates: set[GraphId] = field(default_factory=set)    # C
    verified_answers: set[GraphId] = field(default_factory=set)       # R
    answer: set[GraphId] = field(default_factory=set)                 # A
    #: Cache population observed just before this query (hit-% denominator).
    cache_population: int = 0
    # costs
    dataset_tests: int = 0
    probe_tests: int = 0
    filter_seconds: float = 0.0
    probe_seconds: float = 0.0
    verify_seconds: float = 0.0
    total_seconds: float = 0.0
    baseline_tests: int = 0
    baseline_seconds: float | None = None
    #: Wall-clock seconds spent in each pipeline stage, in execution order
    #: (filter → probe → prune → verify → assemble → admit by default).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Finished :class:`~repro.obs.trace.Span` objects this execution emitted
    #: (empty unless the query carried a sampled trace context).  Worker
    #: processes ship these back inside the wire report so the coordinator's
    #: recorder sees one coherent cross-process tree.
    spans: list = field(default_factory=list)

    @property
    def tests_saved(self) -> int:
        """Dataset sub-iso tests avoided thanks to the cache."""
        return max(0, self.baseline_tests - self.dataset_tests)

    @property
    def test_speedup(self) -> float:
        """Per-query sub-iso-test speedup (|C_M| / |C|), as in Fig. 3."""
        if self.dataset_tests == 0:
            return float("inf") if self.baseline_tests > 0 else 1.0
        return self.baseline_tests / self.dataset_tests

    @property
    def num_hits(self) -> int:
        """Total confirmed hits (sub + super + exact)."""
        return (
            len(self.sub_hit_entries)
            + len(self.super_hit_entries)
            + (1 if self.exact_hit_entry is not None else 0)
        )

    def journey(self) -> dict[str, object]:
        """The Fig. 3 quantities as a plain dictionary (for dashboards)."""
        return {
            "H": list(self.sub_hit_entries),
            "H_prime": list(self.super_hit_entries),
            "exact": self.exact_hit_entry,
            "C_M": sorted(self.method_candidates, key=repr),
            "S": sorted(self.guaranteed_answers, key=repr),
            "S_prime": sorted(self.guaranteed_non_answers, key=repr),
            "C": sorted(self.verified_candidates, key=repr),
            "R": sorted(self.verified_answers, key=repr),
            "A": sorted(self.answer, key=repr),
            "test_speedup": self.test_speedup,
            "stage_seconds": dict(self.stage_seconds),
        }
