"""Configuration of the GC runtime.

A single dataclass gathers every knob of the system — cache capacity, window
size, replacement policy, verifier, probing limits — so experiments can be
described declaratively and reports can serialise the exact configuration
they ran under.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.errors import ConfigurationError

#: Valid shard routing policies (implemented in :mod:`repro.sharding.router`).
#: Defined here — not in the sharding package — so validating a config never
#: imports the sharding machinery (which itself depends on this module).
SHARD_POLICIES = ("hash", "round-robin", "size-balanced")

#: How a sharded system scatters queries (:mod:`repro.sharding.planner`):
#: ``full`` sends every query to every shard; ``short-circuit`` consults the
#: per-shard feature/size summaries and skips shards that provably cannot
#: contribute answers (NeedleTail-style density/locality pruning).
SCATTER_MODES = ("full", "short-circuit")

#: How a sharded system hosts its shards (:mod:`repro.sharding.system`):
#: ``thread`` keeps every shard in-process (one scatter-pool slot each);
#: ``process`` spawns one OS worker process per shard, speaking the v2
#: envelope protocol over loopback sockets, so CPU-bound verification
#: escapes the GIL and scales with cores.
SHARD_BACKENDS = ("thread", "process")

#: How the request batcher admits queries (:mod:`repro.server.batcher`):
#: ``queue-depth`` rejects on the bounded queue alone; ``cost-based``
#: additionally estimates per-shard batch cost (planned candidate count ×
#: observed per-test cost) and rejects per shard, so a skewed workload
#: backpressures only the hot shard.
ADMISSION_MODES = ("queue-depth", "cost-based")

#: Straggler hedging of a sharded scatter (:mod:`repro.sharding.system`):
#: ``off`` waits for every shard's first attempt; ``p95`` re-issues a slow
#: shard's sub-query once the wait exceeds the rolling 95th percentile of
#: observed per-shard latencies and takes whichever attempt answers first
#: (identical answers either way — shards are deterministic).
HEDGE_MODES = ("off", "p95")

#: Per sub-iso test cost (seconds) assumed before any verification work has
#: been observed — keeps cold-start cost-based admission permissive but not
#: free.  Shared by the scatter planner and the request batcher.
DEFAULT_TEST_COST_SECONDS = 1e-4


@dataclass
class GCConfig:
    """Complete configuration of a :class:`~repro.runtime.system.GraphCacheSystem`."""

    # --- cache manager -------------------------------------------------
    cache_capacity: int = 50
    replacement_policy: str = "HD"
    window_size: int = 10
    min_tests_to_admit: int = 0
    #: Maximum confirmed hits used per direction (None = unlimited).
    max_sub_hits: int | None = None
    max_super_hits: int | None = None
    #: Maximum path length of the cached-query feature index.
    cache_feature_length: int = 2
    #: Toggle the semantic hit directions.  Disabling both degrades GC to a
    #: traditional exact-match-only result cache (the baseline the paper's
    #: contribution extends).
    enable_sub_case: bool = True
    enable_super_case: bool = True
    #: Optional approximate byte budget for the cache contents ("2GB memory"
    #: style sizing); None disables byte-based admission control.
    cache_memory_budget_bytes: int | None = None

    # --- method M -------------------------------------------------------
    method: str = "graphgrep-sx"
    method_options: dict = field(default_factory=dict)
    verifier: str = "vf2"
    #: Number of worker threads used to verify candidates of one query
    #: (GraphCache's thread resource management); 1 means sequential.
    verify_threads: int = 1

    # --- concurrent engine ----------------------------------------------
    #: Concurrent query streams used by ``run_queries_concurrent`` (and the
    #: workload runner's concurrent mode); 1 means sequential execution.
    max_workers: int = 1
    #: When True, window admission and replacement run on a dedicated cache
    #: maintenance thread instead of the query critical path.
    async_maintenance: bool = False

    # --- sharding ---------------------------------------------------------
    #: Number of independent :class:`GraphCacheSystem` shards the dataset is
    #: partitioned across (1 = a single unsharded system).  Values above 1
    #: are honoured by :func:`repro.sharding.make_system`, the query server
    #: and the CLI, which build a
    #: :class:`~repro.sharding.system.ShardedGraphCacheSystem`.
    num_shards: int = 1
    #: How the :class:`~repro.sharding.router.ShardRouter` partitions the
    #: dataset: ``hash`` (stable graph-id hash), ``round-robin`` (dataset
    #: order) or ``size-balanced`` (greedy largest-first balancing).
    shard_policy: str = "hash"
    #: Scatter strategy of a sharded system: ``full`` (every query to every
    #: shard) or ``short-circuit`` (the :class:`ScatterPlanner` skips shards
    #: whose :class:`ShardSummary` proves they cannot contribute answers).
    scatter_mode: str = "full"
    #: Serving admission strategy: ``queue-depth`` (bounded queue only) or
    #: ``cost-based`` (per-shard estimated batch cost backpressure).
    admission_mode: str = "queue-depth"
    #: Shard hosting: ``thread`` (in-process shards on the scatter pool) or
    #: ``process`` (one spawned worker process per shard, v2 envelopes over
    #: loopback — CPU-bound verification scales past the GIL).
    shard_backend: str = "thread"
    #: How many times a crashed shard worker process is replaced before the
    #: coordinator surfaces a :class:`~repro.errors.ShardWorkerError`
    #: (process backend only; 0 = never respawn).
    shard_respawn_limit: int = 1
    #: Straggler hedging of scattered sub-queries: ``off`` or ``p95``
    #: (re-issue a shard's sub-query once its latency exceeds the rolling
    #: p95 of per-shard latencies; first answer wins).
    scatter_hedge: str = "off"
    #: Fixed hedge delay in seconds, overriding the p95 estimate (mainly for
    #: tests and benchmarks that need a deterministic trigger); None derives
    #: the delay from the latency window.
    hedge_delay_seconds: float | None = None

    # --- observability ----------------------------------------------------
    #: Fraction of served queries the server traces end to end (0.0 = off,
    #: 1.0 = every query).  Client-stamped trace contexts are always
    #: honoured regardless of the rate — sampling only governs server-side
    #: trace creation for untraced requests.
    trace_sample_rate: float = 0.0
    #: Completed traces at or above this duration are kept as slow-query
    #: exemplars (full span tree + scatter plan) and logged.
    slow_query_threshold_s: float = 1.0
    #: Maximum spans retained by the per-process span recorder's ring buffer
    #: (whole oldest traces are evicted first).
    trace_buffer_size: int = 512

    # --- accounting ------------------------------------------------------
    #: When True, each query is *also* executed by plain Method M so that the
    #: reported time speedup is a measurement rather than an estimate.
    measure_baseline: bool = False
    #: Whether the cache is enabled at all (False = pass-through baseline).
    cache_enabled: bool = True

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.cache_capacity < 1:
            raise ConfigurationError("cache_capacity must be at least 1")
        if self.window_size < 1:
            raise ConfigurationError("window_size must be at least 1")
        if self.window_size > self.cache_capacity:
            raise ConfigurationError(
                "window_size must not exceed cache_capacity "
                f"({self.window_size} > {self.cache_capacity})"
            )
        if self.min_tests_to_admit < 0:
            raise ConfigurationError("min_tests_to_admit must be non-negative")
        if self.cache_feature_length < 1:
            raise ConfigurationError("cache_feature_length must be at least 1")
        for name, value in (("max_sub_hits", self.max_sub_hits), ("max_super_hits", self.max_super_hits)):
            if value is not None and value < 1:
                raise ConfigurationError(f"{name} must be at least 1 or None")
        if self.cache_memory_budget_bytes is not None and self.cache_memory_budget_bytes <= 0:
            raise ConfigurationError("cache_memory_budget_bytes must be positive or None")
        if self.verify_threads < 1:
            raise ConfigurationError("verify_threads must be at least 1")
        if self.max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if self.shard_policy not in SHARD_POLICIES:
            raise ConfigurationError(
                f"unknown shard_policy {self.shard_policy!r}; "
                f"available: {', '.join(SHARD_POLICIES)}"
            )
        if self.scatter_mode not in SCATTER_MODES:
            raise ConfigurationError(
                f"unknown scatter_mode {self.scatter_mode!r}; "
                f"available: {', '.join(SCATTER_MODES)}"
            )
        if self.admission_mode not in ADMISSION_MODES:
            raise ConfigurationError(
                f"unknown admission_mode {self.admission_mode!r}; "
                f"available: {', '.join(ADMISSION_MODES)}"
            )
        if self.shard_backend not in SHARD_BACKENDS:
            raise ConfigurationError(
                f"unknown shard_backend {self.shard_backend!r}; "
                f"available: {', '.join(SHARD_BACKENDS)}"
            )
        if self.shard_respawn_limit < 0:
            raise ConfigurationError("shard_respawn_limit must be non-negative")
        if self.scatter_hedge not in HEDGE_MODES:
            raise ConfigurationError(
                f"unknown scatter_hedge {self.scatter_hedge!r}; "
                f"available: {', '.join(HEDGE_MODES)}"
            )
        if self.hedge_delay_seconds is not None and self.hedge_delay_seconds <= 0:
            raise ConfigurationError("hedge_delay_seconds must be positive or None")
        if not (0.0 <= self.trace_sample_rate <= 1.0):
            raise ConfigurationError("trace_sample_rate must be between 0 and 1")
        if self.slow_query_threshold_s <= 0:
            raise ConfigurationError("slow_query_threshold_s must be positive")
        if self.trace_buffer_size < 1:
            raise ConfigurationError("trace_buffer_size must be at least 1")

    def to_dict(self) -> dict:
        """Serialise the configuration (for reports and experiment logs)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "GCConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        config = cls(**payload)
        config.validate()
        return config
