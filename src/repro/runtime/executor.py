"""Query Processing Runtime: orchestrates Method M and the cache per query.

For each query the executor performs the paper's pipeline (Fig. 3):

1. run Method M's filter to obtain the candidate set ``C_M``;
2. probe the cache (exact / sub case / super case hits);
3. prune ``C_M`` with the hits into ``S``, ``S'`` and ``C``;
4. verify only ``C`` with sub-iso tests, yielding ``R``;
5. assemble the answer ``A = R ∪ S``;
6. credit the contributing cache entries and offer the executed query for
   admission.

When the cache is disabled (or empty) steps 2–3 contribute nothing and the
executor behaves exactly like Method M — the correctness property the test
suite leans on is that the answers are identical in both modes.
"""

from __future__ import annotations

import time

from repro.cache.graph_cache import CacheLookup, GraphCache
from repro.cache.pruner import CandidateSetPruner, PruningResult
from repro.cache.statistics import QueryRecord, StatisticsManager
from repro.graph.graph import Graph
from repro.methods.base import MethodM
from repro.query_model import Query, QueryType
from repro.runtime.report import QueryReport


class QueryExecutor:
    """Executes queries over Method M, accelerated by a :class:`GraphCache`."""

    def __init__(
        self,
        method: MethodM,
        cache: GraphCache | None,
        statistics: StatisticsManager | None = None,
        measure_baseline: bool = False,
    ) -> None:
        self.method = method
        self.cache = cache
        # note: "or" would discard an *empty* StatisticsManager (it is falsy)
        self.statistics = statistics if statistics is not None else StatisticsManager()
        self.measure_baseline = measure_baseline
        self.pruner = CandidateSetPruner()
        #: Running average cost of one dataset sub-iso test (seconds); used to
        #: convert saved tests into saved time when a query runs no tests.
        self._average_test_cost = 0.0
        self._observed_tests = 0

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def execute(self, query: Query | Graph, query_type: QueryType | str | None = None) -> QueryReport:
        """Process one query and return its full report."""
        query = self._coerce_query(query, query_type)
        start = time.perf_counter()

        # 1. Method M filter
        filter_start = time.perf_counter()
        method_candidates = self.method.filter_candidates(query.graph, query.query_type)
        filter_seconds = time.perf_counter() - filter_start

        report = QueryReport(query=query)
        report.method_candidates = set(method_candidates)
        report.baseline_tests = len(method_candidates)
        report.filter_seconds = filter_seconds

        # 2. cache lookup
        lookup: CacheLookup | None = None
        if self.cache is not None:
            clock = self.cache.tick()
            lookup = self.cache.lookup(query)
            report.probe_tests = lookup.probe_tests
            report.probe_seconds = lookup.probe_seconds
            report.sub_hit_entries = [entry.entry_id for entry in lookup.sub_hits]
            report.super_hit_entries = [entry.entry_id for entry in lookup.super_hits]
            if lookup.exact_entry is not None:
                report.exact_hit_entry = lookup.exact_entry.entry_id
        else:
            clock = 0

        # 3. prune with the hits
        pruning = self._prune(query, report, lookup)
        report.guaranteed_answers = pruning.guaranteed_answers
        report.guaranteed_non_answers = pruning.guaranteed_non_answers
        report.verified_candidates = set(pruning.remaining_candidates)

        # 4. verify what is left
        outcome = self.method.verify_candidates(
            query.graph, sorted(pruning.remaining_candidates, key=repr), query.query_type
        )
        report.verified_answers = outcome.answers
        report.dataset_tests = outcome.num_tests
        report.verify_seconds = outcome.verify_seconds

        # 5. assemble the answer
        report.answer = set(outcome.answers) | set(pruning.guaranteed_answers)

        report.total_seconds = time.perf_counter() - start
        self._update_average_cost(outcome.num_tests, outcome.verify_seconds)

        # 6. credit + admission
        if self.cache is not None and lookup is not None:
            average_cost = self._per_test_cost(outcome.num_tests, outcome.verify_seconds)
            self.cache.credit(lookup, pruning.per_hit_savings, average_cost, clock=clock)
            self.cache.offer(
                query,
                report.answer,
                tests_performed=report.baseline_tests,
                observed_test_cost=average_cost,
                clock=clock,
            )

        # optional measured baseline
        if self.measure_baseline:
            baseline = self.method.execute(query.graph, query.query_type)
            report.baseline_seconds = baseline.total_seconds
        else:
            report.baseline_seconds = report.filter_seconds + (
                report.baseline_tests * self._average_test_cost
            )

        self._record(report)
        return report

    def execute_baseline(self, query: Query | Graph, query_type: QueryType | str | None = None):
        """Run plain Method M (no cache) for one query — the comparison arm."""
        query = self._coerce_query(query, query_type)
        return self.method.execute(query.graph, query.query_type)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce_query(query: Query | Graph, query_type: QueryType | str | None) -> Query:
        if isinstance(query, Query):
            return query
        return Query(graph=query, query_type=QueryType.parse(query_type or QueryType.SUBGRAPH))

    def _prune(
        self, query: Query, report: QueryReport, lookup: CacheLookup | None
    ) -> PruningResult:
        if lookup is None or not lookup.any_hit:
            return PruningResult(
                method_candidates=set(report.method_candidates),
                remaining_candidates=set(report.method_candidates),
            )
        if lookup.exact_entry is not None:
            return self.pruner.exact_hit_result(report.method_candidates, lookup.exact_entry)
        return self.pruner.prune(
            query.query_type,
            report.method_candidates,
            lookup.sub_hits,
            lookup.super_hits,
        )

    def _per_test_cost(self, tests: int, seconds: float) -> float:
        if tests > 0:
            return seconds / tests
        return self._average_test_cost

    def _update_average_cost(self, tests: int, seconds: float) -> None:
        if tests <= 0:
            return
        total = self._average_test_cost * self._observed_tests + seconds
        self._observed_tests += tests
        self._average_test_cost = total / self._observed_tests

    def _record(self, report: QueryReport) -> None:
        record = QueryRecord(
            query_id=report.query.query_id,
            query_type=report.query.query_type,
            num_vertices=report.query.num_vertices,
            num_edges=report.query.num_edges,
            exact_hit=report.exact_hit_entry is not None,
            sub_hits=len(report.sub_hit_entries),
            super_hits=len(report.super_hit_entries),
            method_candidates=len(report.method_candidates),
            guaranteed_answers=len(report.guaranteed_answers),
            guaranteed_non_answers=len(report.guaranteed_non_answers),
            verified_candidates=len(report.verified_candidates),
            answer_size=len(report.answer),
            dataset_tests=report.dataset_tests,
            probe_tests=report.probe_tests,
            filter_seconds=report.filter_seconds,
            probe_seconds=report.probe_seconds,
            verify_seconds=report.verify_seconds,
            total_seconds=report.total_seconds,
            baseline_tests=report.baseline_tests,
            baseline_seconds=report.baseline_seconds,
        )
        self.statistics.record(record)
