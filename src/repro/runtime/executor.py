"""Query Processing Runtime: orchestrates Method M and the cache per query.

Each query flows through the staged pipeline of
:mod:`repro.runtime.pipeline` (the paper's Fig. 3 dataflow):

1. ``FilterStage``   — Method M's filter yields the candidate set ``C_M``;
2. ``ProbeStage``    — the cache is probed (exact / sub case / super case);
3. ``PruneStage``    — hits prune ``C_M`` into ``S``, ``S'`` and ``C``;
4. ``VerifyStage``   — only ``C`` is verified with sub-iso tests → ``R``;
5. ``AssembleStage`` — the answer ``A = R ∪ S`` is assembled;
6. ``AdmitStage``    — contributing entries are credited and the executed
   query is offered for admission.

When the cache is disabled (or empty) the probe/prune stages contribute
nothing and the executor behaves exactly like Method M — the correctness
property the test suite leans on is that the answers are identical in both
modes.  The executor is thread-safe: many queries may run through
:meth:`execute` concurrently (the cache serialises its own mutations and the
running-average test cost is guarded here).
"""

from __future__ import annotations

import threading

from repro.cache.graph_cache import GraphCache
from repro.cache.pruner import CandidateSetPruner
from repro.cache.statistics import QueryRecord, StatisticsManager
from repro.graph.graph import Graph
from repro.methods.base import MethodM
from repro.query_model import Query, QueryType
from repro.runtime.pipeline import ExecutionContext, PipelineStage, QueryPipeline
from repro.runtime.report import QueryReport


class QueryExecutor:
    """Executes queries over Method M, accelerated by a :class:`GraphCache`."""

    def __init__(
        self,
        method: MethodM,
        cache: GraphCache | None,
        statistics: StatisticsManager | None = None,
        measure_baseline: bool = False,
        stages: list[PipelineStage] | None = None,
    ) -> None:
        self.method = method
        self.cache = cache
        self.statistics = statistics or StatisticsManager()
        self.measure_baseline = measure_baseline
        self.pruner = CandidateSetPruner()
        self.pipeline = QueryPipeline(stages)
        #: Running average cost of one dataset sub-iso test (seconds); used to
        #: convert saved tests into saved time when a query runs no tests.
        self._average_test_cost = 0.0
        self._observed_tests = 0
        self._cost_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def execute(self, query: Query | Graph, query_type: QueryType | str | None = None) -> QueryReport:
        """Process one query through the pipeline and return its full report."""
        query = self._coerce_query(query, query_type)
        ctx = ExecutionContext(query=query, executor=self, report=QueryReport(query=query))
        self.pipeline.run(ctx)

        # optional measured baseline
        if self.measure_baseline:
            baseline = self.method.execute(query.graph, query.query_type)
            ctx.report.baseline_seconds = baseline.total_seconds
        else:
            ctx.report.baseline_seconds = ctx.report.filter_seconds + (
                ctx.report.baseline_tests * self._average_test_cost
            )

        self._record(ctx.report)
        return ctx.report

    def execute_baseline(self, query: Query | Graph, query_type: QueryType | str | None = None):
        """Run plain Method M (no cache) for one query — the comparison arm."""
        query = self._coerce_query(query, query_type)
        return self.method.execute(query.graph, query.query_type)

    # ------------------------------------------------------------------ #
    # test-cost accounting (shared with the pipeline stages)
    # ------------------------------------------------------------------ #
    def per_test_cost(self, tests: int, seconds: float) -> float:
        """Cost of one sub-iso test for this query (falls back to the average)."""
        if tests > 0:
            return seconds / tests
        return self._average_test_cost

    def observe_test_cost(self, tests: int, seconds: float) -> None:
        """Fold one query's verification cost into the running average."""
        if tests <= 0:
            return
        with self._cost_lock:
            total = self._average_test_cost * self._observed_tests + seconds
            self._observed_tests += tests
            self._average_test_cost = total / self._observed_tests

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce_query(query: Query | Graph, query_type: QueryType | str | None) -> Query:
        if isinstance(query, Query):
            return query
        return Query(graph=query, query_type=QueryType.parse(query_type or QueryType.SUBGRAPH))

    def _record(self, report: QueryReport) -> None:
        record = QueryRecord(
            query_id=report.query.query_id,
            query_type=report.query.query_type,
            num_vertices=report.query.num_vertices,
            num_edges=report.query.num_edges,
            exact_hit=report.exact_hit_entry is not None,
            sub_hits=len(report.sub_hit_entries),
            super_hits=len(report.super_hit_entries),
            cache_population=report.cache_population,
            method_candidates=len(report.method_candidates),
            guaranteed_answers=len(report.guaranteed_answers),
            guaranteed_non_answers=len(report.guaranteed_non_answers),
            verified_candidates=len(report.verified_candidates),
            answer_size=len(report.answer),
            dataset_tests=report.dataset_tests,
            probe_tests=report.probe_tests,
            filter_seconds=report.filter_seconds,
            probe_seconds=report.probe_seconds,
            verify_seconds=report.verify_seconds,
            total_seconds=report.total_seconds,
            baseline_tests=report.baseline_tests,
            baseline_seconds=report.baseline_seconds,
            stage_seconds=dict(report.stage_seconds),
        )
        self.statistics.record(record)
