"""The staged query pipeline: GC's per-query dataflow as explicit stages.

The paper's Fig. 3 pipeline (filter → probe → prune → verify → assemble →
admit) used to live inline in ``QueryExecutor.execute``.  Here each step is a
first-class :class:`PipelineStage` operating on a shared
:class:`ExecutionContext`, so stages are individually instrumentable (the
pipeline records per-stage wall-clock latency into the query report),
reorderable and pluggable (a deployment can insert, replace or drop stages).

The default stage order reproduces the executor's original semantics exactly:

``FilterStage``   — Method M's filter produces the candidate set ``C_M``;
``ProbeStage``    — the cache is probed for exact/sub/super hits;
``PruneStage``    — hits prune ``C_M`` into ``S``, ``S'`` and ``C``;
``VerifyStage``   — the surviving candidates ``C`` are sub-iso tested;
``AssembleStage`` — the answer ``A = R ∪ S`` is assembled and timed;
``AdmitStage``    — contributing entries are credited and the executed query
                    is offered for admission (synchronously, or via the
                    asynchronous maintenance worker).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.cache.graph_cache import CacheLookup
from repro.cache.pruner import PruningResult
from repro.index.base import graph_id_sort_key
from repro.methods.base import VerificationOutcome
from repro.obs.recorder import get_recorder
from repro.obs.trace import TRACE_KEY, pipeline_spans
from repro.query_model import Query
from repro.runtime.report import QueryReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.executor import QueryExecutor


@dataclass
class ExecutionContext:
    """Everything one query accumulates while flowing through the pipeline."""

    query: Query
    executor: "QueryExecutor"
    report: QueryReport
    #: ``time.perf_counter()`` at pipeline entry (set by the pipeline).
    started_at: float = 0.0
    #: Cache logical clock observed by this query (0 when cache disabled).
    clock: int = 0
    lookup: CacheLookup | None = None
    pruning: PruningResult | None = None
    outcome: VerificationOutcome = field(default_factory=VerificationOutcome)

    @property
    def cache(self):
        """The cache the executing system runs with (may be ``None``)."""
        return self.executor.cache

    @property
    def method(self):
        """The Method M the executing system wraps."""
        return self.executor.method


class PipelineStage(abc.ABC):
    """One step of the query pipeline.

    Stages must be stateless with respect to individual queries (all
    per-query state lives in the :class:`ExecutionContext`) so one stage
    instance can serve many concurrent queries.
    """

    #: Stage name used for per-stage latency attribution.
    name: str = "stage"

    @abc.abstractmethod
    def run(self, ctx: ExecutionContext) -> None:
        """Advance the context through this stage."""


class FilterStage(PipelineStage):
    """Run Method M's filter to obtain the candidate set ``C_M``."""

    name = "filter"

    def run(self, ctx: ExecutionContext) -> None:
        filter_start = time.perf_counter()
        candidates = ctx.method.filter_candidates(ctx.query.graph, ctx.query.query_type)
        ctx.report.filter_seconds = time.perf_counter() - filter_start
        ctx.report.method_candidates = set(candidates)
        ctx.report.baseline_tests = len(candidates)


class ProbeStage(PipelineStage):
    """Probe the cache for exact, sub-case and super-case hits."""

    name = "probe"

    def run(self, ctx: ExecutionContext) -> None:
        if ctx.cache is None:
            ctx.clock = 0
            return
        ctx.report.cache_population = len(ctx.cache)
        ctx.clock = ctx.cache.tick()
        lookup = ctx.cache.lookup(ctx.query)
        ctx.lookup = lookup
        ctx.report.probe_tests = lookup.probe_tests
        ctx.report.probe_seconds = lookup.probe_seconds
        ctx.report.sub_hit_entries = [entry.entry_id for entry in lookup.sub_hits]
        ctx.report.super_hit_entries = [entry.entry_id for entry in lookup.super_hits]
        if lookup.exact_entry is not None:
            ctx.report.exact_hit_entry = lookup.exact_entry.entry_id


class PruneStage(PipelineStage):
    """Prune ``C_M`` with the hits into ``S``, ``S'`` and ``C``."""

    name = "prune"

    def run(self, ctx: ExecutionContext) -> None:
        report, lookup = ctx.report, ctx.lookup
        if lookup is None or not lookup.any_hit:
            pruning = PruningResult(
                method_candidates=set(report.method_candidates),
                remaining_candidates=set(report.method_candidates),
            )
        elif lookup.exact_entry is not None:
            pruning = ctx.executor.pruner.exact_hit_result(
                report.method_candidates, lookup.exact_entry
            )
        else:
            pruning = ctx.executor.pruner.prune(
                ctx.query.query_type,
                report.method_candidates,
                lookup.sub_hits,
                lookup.super_hits,
            )
        ctx.pruning = pruning
        report.guaranteed_answers = pruning.guaranteed_answers
        report.guaranteed_non_answers = pruning.guaranteed_non_answers
        report.verified_candidates = set(pruning.remaining_candidates)


class VerifyStage(PipelineStage):
    """Sub-iso test the surviving candidates ``C`` (in stable id order)."""

    name = "verify"

    def run(self, ctx: ExecutionContext) -> None:
        assert ctx.pruning is not None, "VerifyStage requires PruneStage output"
        outcome = ctx.method.verify_candidates(
            ctx.query.graph,
            sorted(ctx.pruning.remaining_candidates, key=graph_id_sort_key),
            ctx.query.query_type,
        )
        ctx.outcome = outcome
        ctx.report.verified_answers = outcome.answers
        ctx.report.dataset_tests = outcome.num_tests
        ctx.report.verify_seconds = outcome.verify_seconds


class AssembleStage(PipelineStage):
    """Assemble ``A = R ∪ S`` and close the query's timing window."""

    name = "assemble"

    def run(self, ctx: ExecutionContext) -> None:
        assert ctx.pruning is not None, "AssembleStage requires PruneStage output"
        ctx.report.answer = set(ctx.outcome.answers) | set(ctx.pruning.guaranteed_answers)
        ctx.report.total_seconds = time.perf_counter() - ctx.started_at
        ctx.executor.observe_test_cost(ctx.outcome.num_tests, ctx.outcome.verify_seconds)


class AdmitStage(PipelineStage):
    """Credit contributing entries and offer the executed query for admission."""

    name = "admit"

    def run(self, ctx: ExecutionContext) -> None:
        if ctx.cache is None or ctx.lookup is None or ctx.pruning is None:
            return
        average_cost = ctx.executor.per_test_cost(
            ctx.outcome.num_tests, ctx.outcome.verify_seconds
        )
        ctx.cache.credit(ctx.lookup, ctx.pruning.per_hit_savings, average_cost, clock=ctx.clock)
        ctx.cache.offer(
            ctx.query,
            ctx.report.answer,
            tests_performed=ctx.report.baseline_tests,
            observed_test_cost=average_cost,
            clock=ctx.clock,
        )


def default_stages() -> list[PipelineStage]:
    """The canonical Fig. 3 stage order."""
    return [
        FilterStage(),
        ProbeStage(),
        PruneStage(),
        VerifyStage(),
        AssembleStage(),
        AdmitStage(),
    ]


class QueryPipeline:
    """An ordered sequence of stages with per-stage latency instrumentation."""

    def __init__(self, stages: Sequence[PipelineStage] | None = None) -> None:
        self.stages: list[PipelineStage] = list(stages) if stages is not None else default_stages()

    def stage_names(self) -> list[str]:
        """Names of the stages in execution order."""
        return [stage.name for stage in self.stages]

    def run(self, ctx: ExecutionContext) -> QueryReport:
        """Flow one context through every stage, timing each.

        When the query carries a sampled trace context in its metadata
        (:data:`~repro.obs.trace.TRACE_KEY`), one ``pipeline`` span plus one
        child span per stage is recorded and attached to the report — the
        leaf subtree of the end-to-end distributed trace.
        """
        ctx.started_at = time.perf_counter()
        for stage in self.stages:
            stage_start = time.perf_counter()
            stage.run(ctx)
            ctx.report.stage_seconds[stage.name] = time.perf_counter() - stage_start
        carrier = ctx.query.metadata.get(TRACE_KEY)
        if isinstance(carrier, dict):
            total = time.perf_counter() - ctx.started_at
            spans = pipeline_spans(carrier, ctx.report.stage_seconds, total)
            if spans:
                ctx.report.spans.extend(spans)
                get_recorder().record_many(spans)
        return ctx.report

    # ------------------------------------------------------------------ #
    # pluggability
    # ------------------------------------------------------------------ #
    def _index_of(self, name: str) -> int:
        for position, stage in enumerate(self.stages):
            if stage.name == name:
                return position
        raise KeyError(f"no stage named {name!r} in pipeline {self.stage_names()}")

    def insert_before(self, name: str, stage: PipelineStage) -> None:
        """Insert ``stage`` immediately before the stage called ``name``."""
        self.stages.insert(self._index_of(name), stage)

    def insert_after(self, name: str, stage: PipelineStage) -> None:
        """Insert ``stage`` immediately after the stage called ``name``."""
        self.stages.insert(self._index_of(name) + 1, stage)

    def replace(self, name: str, stage: PipelineStage) -> PipelineStage:
        """Swap out the stage called ``name``; returns the replaced stage."""
        position = self._index_of(name)
        replaced = self.stages[position]
        self.stages[position] = stage
        return replaced

    def remove(self, name: str) -> PipelineStage:
        """Remove and return the stage called ``name``."""
        return self.stages.pop(self._index_of(name))


__all__ = [
    "ExecutionContext",
    "PipelineStage",
    "FilterStage",
    "ProbeStage",
    "PruneStage",
    "VerifyStage",
    "AssembleStage",
    "AdmitStage",
    "QueryPipeline",
    "default_stages",
]
