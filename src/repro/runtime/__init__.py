"""Query Processing Runtime: configuration, pipeline, executor and the facade."""

from repro.query_model import Query, QueryType
from repro.runtime.config import GCConfig
from repro.runtime.executor import QueryExecutor
from repro.runtime.pipeline import (
    AdmitStage,
    AssembleStage,
    ExecutionContext,
    FilterStage,
    PipelineStage,
    ProbeStage,
    PruneStage,
    QueryPipeline,
    VerifyStage,
    default_stages,
)
from repro.runtime.report import QueryReport
from repro.runtime.system import GraphCacheSystem

__all__ = [
    "Query",
    "QueryType",
    "GCConfig",
    "QueryExecutor",
    "QueryReport",
    "GraphCacheSystem",
    "ExecutionContext",
    "PipelineStage",
    "QueryPipeline",
    "FilterStage",
    "ProbeStage",
    "PruneStage",
    "VerifyStage",
    "AssembleStage",
    "AdmitStage",
    "default_stages",
]
