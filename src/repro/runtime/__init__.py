"""Query Processing Runtime: configuration, executor, reports and the facade."""

from repro.query_model import Query, QueryType
from repro.runtime.config import GCConfig
from repro.runtime.executor import QueryExecutor
from repro.runtime.report import QueryReport
from repro.runtime.system import GraphCacheSystem

__all__ = [
    "Query",
    "QueryType",
    "GCConfig",
    "QueryExecutor",
    "QueryReport",
    "GraphCacheSystem",
]
