"""Query model shared by every layer (index, methods, cache, runtime).

Kept in its own module (rather than inside ``repro.runtime``) so the lower
layers can import :class:`QueryType` without circular dependencies.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.graph.graph import Graph


class QueryType(enum.Enum):
    """The two query semantics GC accelerates.

    * ``SUBGRAPH`` — return dataset graphs ``G`` with ``query ⊆ G``.
    * ``SUPERGRAPH`` — return dataset graphs ``G`` with ``G ⊆ query``.
    """

    SUBGRAPH = "subgraph"
    SUPERGRAPH = "supergraph"

    @classmethod
    def parse(cls, value: "QueryType | str") -> "QueryType":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ValueError(
                f"unknown query type {value!r}; expected 'subgraph' or 'supergraph'"
            ) from None


_query_counter = itertools.count(1)


@dataclass
class Query:
    """A pattern graph plus its query semantics."""

    graph: Graph
    query_type: QueryType = QueryType.SUBGRAPH
    query_id: int = field(default_factory=lambda: next(_query_counter))
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.query_type = QueryType.parse(self.query_type)

    @property
    def num_vertices(self) -> int:
        """Number of vertices of the pattern graph."""
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges of the pattern graph."""
        return self.graph.num_edges

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Query id={self.query_id} type={self.query_type.value}"
            f" |V|={self.num_vertices} |E|={self.num_edges}>"
        )
