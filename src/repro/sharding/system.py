"""ShardedGraphCacheSystem: scatter-gather execution over dataset shards.

The dataset is partitioned by a :class:`~repro.sharding.router.ShardRouter`
into N disjoint partitions, each owned by an independent
:class:`~repro.runtime.system.GraphCacheSystem` — its own Method M filter
index, its own thread-safe cache, its own admission window and maintenance
worker.  Every query is *scattered* to all shards (each filters + verifies
only its own partition, consulting only its own cache) and the per-shard
reports are *gathered* into one merged :class:`QueryReport`:

* answer / candidate / guaranteed sets — unions (partitions are disjoint, so
  the union is exactly the unsharded result);
* test and probe counts, per-stage seconds — sums across shards;
* ``total_seconds`` — the critical path: the slowest shard plus the merge;
* merge overhead — accounted as its own ``"merge"`` pipeline stage, so
  ``stage_breakdown()`` and the ``/metrics`` endpoint expose it directly.

The merged stream feeds this system's own :class:`StatisticsManager`, which
also carries a reference to every per-shard manager so ``to_dict()`` reports
per-shard aggregation alongside the merged view.

The class mirrors the :class:`GraphCacheSystem` facade (``run_query``,
``run_queries``, ``run_queries_concurrent``, ``warm_cache``, statistics and
memory accessors, snapshot save/restore), so the query server, the request
batcher and the workload runner accept it transparently.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from pathlib import Path

from repro.cache.graph_cache import GraphCache
from repro.cache.statistics import AggregateStatistics, QueryRecord, StatisticsManager
from repro.errors import ConfigurationError
from repro.features.paths import EdgeFeatureExtractor
from repro.graph.graph import Graph
from repro.methods.base import MethodM
from repro.obs.logs import get_logger, replay_entries
from repro.obs.recorder import get_recorder
from repro.obs.trace import (
    TRACE_KEY,
    Span,
    context_from_carrier,
    new_span_id,
    wall_at,
)
from repro.query_model import Query, QueryType
from repro.runtime.config import DEFAULT_TEST_COST_SECONDS, GCConfig
from repro.runtime.report import QueryReport
from repro.runtime.system import GraphCacheSystem
from repro.sharding.planner import PLAN_STAGE, ScatterPlan, ScatterPlanner
from repro.sharding.router import ShardRouter
from repro.sharding.summary import ShardSummary

#: Stage name under which scatter-gather merge time is accounted.
MERGE_STAGE = "merge"

SNAPSHOT_MANIFEST_VERSION = 1

#: Shard-latency observations needed before a p95 hedge delay is derived;
#: until then hedging stays dormant (no sensible straggler threshold yet).
MIN_HEDGE_OBSERVATIONS = 8

logger = get_logger("sharding.system")


def _observe_discarded(future) -> None:
    """Done-callback for a hedge race's losing attempt: keep it observed.

    The loser's answer is identical to the winner's (shards are
    deterministic), so its result is dropped — but a late *failure* should
    still leave a trail instead of vanishing with the future.
    """
    if future.cancelled():
        return
    exc = future.exception()
    if exc is not None:
        logger.debug("discarded hedge attempt failed: %s: %s",
                     type(exc).__name__, exc)


def shard_snapshot_path(path: str | Path, shard: int) -> Path:
    """The per-shard snapshot file derived from the base snapshot path."""
    base = Path(path)
    return base.with_name(f"{base.stem}-shard{shard}{base.suffix or '.json'}")


class ShardedGraphCacheSystem:
    """N independent GC shards behind one scatter-gather facade."""

    def __init__(
        self,
        dataset: Iterable[Graph],
        config: GCConfig | None = None,
        method_factory: Callable[[], MethodM] | None = None,
    ) -> None:
        self.config = config or GCConfig()
        self.config.validate()
        self.dataset = list(dataset)
        if not self.dataset:
            raise ConfigurationError("the dataset must contain at least one graph")
        if method_factory is not None and isinstance(method_factory, MethodM):
            raise ConfigurationError(
                "a sharded system needs a method *factory* (each shard builds its "
                "own Method M over its partition); pass a zero-argument callable"
            )
        self.router = ShardRouter(
            self.dataset, self.config.num_shards, self.config.shard_policy
        )
        shard_payload = self.config.to_dict()
        shard_payload["num_shards"] = 1  # each shard is itself unsharded
        shard_payload["shard_backend"] = "thread"  # workers host plain systems
        #: The worker supervisor when ``shard_backend == "process"`` — the
        #: shard list then holds :class:`ProcessShardClient` proxies, which
        #: implement the same surface this class scatters to.
        self._process_backend: "ProcessShardBackend | None" = None
        self.shards: list[GraphCacheSystem] = []
        if self.config.shard_backend == "process":
            from repro.sharding.process_backend import ProcessShardBackend

            backend = ProcessShardBackend(
                self.router.partitions(),
                GCConfig.from_dict(shard_payload),
                respawn_limit=self.config.shard_respawn_limit,
                method_factory=method_factory,
            )
            self._process_backend = backend
            self.shards = list(backend.clients)  # type: ignore[arg-type]
        else:
            try:
                for partition in self.router.partitions():
                    method = method_factory() if method_factory is not None else None
                    self.shards.append(
                        GraphCacheSystem(partition, GCConfig.from_dict(shard_payload),
                                         method=method)
                    )
            except Exception:
                for shard in self.shards:
                    shard.close()
                raise
        #: Merged per-query statistics; per-shard managers ride along so
        #: ``to_dict()`` exposes per-shard aggregation keys.
        self.statistics = StatisticsManager()
        for index, shard in enumerate(self.shards):
            self.statistics.attach_shard(f"shard{index}", shard.statistics)
        #: Per-shard partition summaries + the scatter planner that consults
        #: them.  The summary feature family (vertex labels + single edges)
        #: is deliberately independent of Method M's own index, so every
        #: screen is sound for any method, including index-free direct SI.
        self._summary_extractor = EdgeFeatureExtractor()
        self.summaries = [
            ShardSummary.build(index, partition, self._summary_extractor)
            for index, partition in enumerate(self.router.partitions())
        ]
        self.planner = ScatterPlanner(
            self.summaries,
            mode=self.config.scatter_mode,
            extractor=self._summary_extractor,
        )
        #: Resident-cache-key freshness per shard.  Cache content listeners
        #: only flip a dirty bit (cheap enough for the synchronous admission
        #: path); the real refresh runs on the cache maintenance worker when
        #: one exists, else lazily at the next plan.
        # process shards keep their caches worker-side (shard.cache is None
        # coordinator-side), so they never publish resident keys: start them
        # clean or the lazy sync would re-walk them before every plan
        self._resident_dirty = [shard.cache is not None for shard in self.shards]
        self._resident_lock = threading.Lock()
        for index, shard in enumerate(self.shards):
            if shard.cache is not None:
                shard.cache.add_content_listener(self._cache_listener(index))
        #: Straggler hedging: a rolling window of observed per-shard scatter
        #: latencies feeds a p95 hedge delay; a shard still running past it
        #: gets its sub-query re-issued, first answer wins.
        self._hedging = self.config.scatter_hedge != "off"
        self._latency_window: deque = deque(maxlen=256)
        self._hedge_lock = threading.Lock()
        self._hedges_issued = 0
        self._hedge_wins = 0
        #: Scatter pool: one slot per shard, so every shard of a query (or of
        #: a batch) executes concurrently with its siblings.  With hedging a
        #: second slot per shard keeps hedge attempts from queueing behind
        #: the very primaries they are meant to overtake.
        self._pool = ThreadPoolExecutor(
            max_workers=self.num_shards * (2 if self._hedging else 1),
            thread_name_prefix="gc-shard",
        )
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def cache(self) -> None:
        """No single cache exists; per-shard caches via :meth:`all_caches`."""
        return None

    @property
    def method(self) -> MethodM:
        """Shard 0's Method M (shards share the method type and options)."""
        return self.shards[0].method

    def all_caches(self) -> list[GraphCache]:
        """Every shard's cache (empty when caching is disabled)."""
        return [shard.cache for shard in self.shards if shard.cache is not None]

    def close(self) -> None:
        """Release every shard and the scatter pool."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        for shard in self.shards:
            shard.close()
        if self._process_backend is not None:
            self._process_backend.close()

    def __enter__(self) -> "ShardedGraphCacheSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # scatter planning (shard summaries)
    # ------------------------------------------------------------------ #
    def _cache_listener(self, shard_index: int):
        def listener() -> None:
            with self._resident_lock:
                self._resident_dirty[shard_index] = True
            cache = self.shards[shard_index].cache
            worker = cache.maintenance if cache is not None else None
            if worker is not None:
                # refresh off the query critical path, on the cache
                # maintenance thread (it is the thread running this listener
                # under async maintenance, so ordering is preserved)
                worker.submit_task(lambda: self._refresh_if_dirty(shard_index))
        return listener

    def _refresh_if_dirty(self, shard_index: int) -> None:
        """Worker-side refresh: a no-op when an earlier task already ran."""
        with self._resident_lock:
            if not self._resident_dirty[shard_index]:
                return
        self._refresh_resident_keys(shard_index)

    def _refresh_resident_keys(self, shard_index: int) -> None:
        """Re-publish one shard cache's exact-match keys into its summary."""
        cache = self.shards[shard_index].cache
        if cache is None:
            return
        with self._resident_lock:
            self._resident_dirty[shard_index] = False
        self.summaries[shard_index].set_resident_keys(frozenset(
            (entry.wl_hash, entry.graph.size_signature(), entry.query_type.value)
            for entry in cache.entries()
        ))

    def _sync_summaries(self) -> None:
        with self._resident_lock:
            dirty = [index for index, flag in enumerate(self._resident_dirty) if flag]
        for index in dirty:
            cache = self.shards[index].cache
            if cache is not None and cache.maintenance is not None:
                # the maintenance worker owns this refresh — planning with
                # slightly stale resident keys is safe (they only feed exact
                # routing and cost hints, never pruning), so don't pull the
                # O(cache) rebuild onto the query/admission hot path
                continue
            self._refresh_resident_keys(index)

    def refresh_summaries(self) -> None:
        """Rebuild every shard summary from scratch (partition + cache)."""
        partitions = self.router.partitions()
        for index, summary in enumerate(self.summaries):
            summary.refresh(partitions[index], self._summary_extractor)
            self._refresh_resident_keys(index)

    def plan_query(
        self,
        query: Query | Graph,
        query_type: QueryType | str = QueryType.SUBGRAPH,
        record: bool = True,
    ) -> ScatterPlan:
        """The scatter plan for one query under the configured mode.

        With ``record=False`` the planner's statistics stay untouched —
        the admission path probes costs this way before the query is run.
        A plan stashed by :meth:`estimate_shard_costs` is reused (and, on
        the execution pass, consumed) so a cost-admitted query is not
        feature-extracted and seal-checked twice on the serving hot path.
        """
        if not isinstance(query, Query):
            query = Query(graph=query, query_type=QueryType.parse(query_type))
        cached = query.metadata.get("scatter_plan")
        if isinstance(cached, ScatterPlan):
            if record:
                query.metadata.pop("scatter_plan", None)
                self.planner.stats.observe(cached)
            return cached
        if self.planner.mode != "full":
            self._sync_summaries()
        return self.planner.plan(query, record=record)

    def estimate_shard_costs(
        self, query: Query | Graph, query_type: QueryType | str = QueryType.SUBGRAPH
    ) -> dict[int, float]:
        """Estimated per-shard verification seconds for one query.

        Planned candidate count (a shard's observed mean dataset tests per
        query, or its partition size before any observation) times the
        shard's observed per-test cost; shards the planner prunes cost
        nothing, shards expected to answer from cache cost ~nothing.  This
        is what cost-based shard-aware admission charges against per-shard
        budgets.
        """
        if not isinstance(query, Query):
            query = Query(graph=query, query_type=QueryType.parse(query_type))
        plan = self.plan_query(query, record=False)
        # stash for the execution pass: the same Query object flows from
        # admission into the batch, so planning happens once per query
        query.metadata["scatter_plan"] = plan
        per_test_costs = [
            shard.statistics.observed_test_cost(default=DEFAULT_TEST_COST_SECONDS)
            for shard in self.shards
        ]
        planned_candidates = [
            int(round(shard.statistics.mean_dataset_tests(default=len(shard.dataset))))
            for shard in self.shards
        ]
        return self.planner.shard_costs(plan, per_test_costs, planned_candidates)

    def scatter_metrics(self) -> dict:
        """Skip rates, fan-out and per-shard cost signals (for ``/metrics``)."""
        return {
            "mode": self.planner.mode,
            "num_shards": self.num_shards,
            "stats": self.planner.stats.to_dict(),
            "summaries": [summary.to_dict() for summary in self.summaries],
            "per_shard_test_cost_seconds": [
                shard.statistics.observed_test_cost(default=DEFAULT_TEST_COST_SECONDS)
                for shard in self.shards
            ],
            "hedging": self.hedge_stats(),
        }

    # ------------------------------------------------------------------ #
    # straggler hedging
    # ------------------------------------------------------------------ #
    def hedge_stats(self) -> dict:
        """Hedging counters + the delay currently in force (for metrics)."""
        delay = self._hedge_delay()
        with self._hedge_lock:
            return {
                "mode": self.config.scatter_hedge,
                "delay_seconds": delay,
                "observed_window": len(self._latency_window),
                "hedges_issued": self._hedges_issued,
                "hedge_wins": self._hedge_wins,
            }

    def _observe_shard_latency(self, seconds: float) -> None:
        with self._hedge_lock:
            self._latency_window.append(seconds)

    def _hedge_delay(self) -> float | None:
        """Seconds to wait before hedging a straggler shard (None = don't).

        A configured ``hedge_delay_seconds`` wins; otherwise the nearest-rank
        p95 of the rolling per-shard latency window, once the window holds
        enough observations to mean anything.
        """
        if not self._hedging:
            return None
        if self.config.hedge_delay_seconds is not None:
            return self.config.hedge_delay_seconds
        with self._hedge_lock:
            if len(self._latency_window) < MIN_HEDGE_OBSERVATIONS:
                return None
            window = sorted(self._latency_window)
        rank = max(0, math.ceil(0.95 * len(window)) - 1)
        return window[rank]

    def _submit_timed(self, fn, *args):
        """Submit one shard attempt, feeding its latency into the window."""
        begun = time.perf_counter()
        future = self._pool.submit(fn, *args)

        def _observe(done) -> None:
            if not done.cancelled() and done.exception() is None:
                self._observe_shard_latency(time.perf_counter() - begun)

        future.add_done_callback(_observe)
        return future

    @staticmethod
    def _hedge_clone(query: Query) -> Query:
        """A fresh Query for a hedge attempt: same pattern, copied metadata.

        Both attempts run concurrently and shard pipelines annotate
        ``query.metadata`` — sharing one dict between the racing attempts
        would be a data race, so the hedge gets its own shallow copy (the
        trace carrier rides along, parenting its pipeline spans correctly).
        """
        return Query(graph=query.graph, query_type=query.query_type,
                     metadata=dict(query.metadata))

    def _gather_hedged(
        self,
        futures: dict,
        resubmit,
        span_scope: dict | None = None,
    ) -> dict:
        """Gather per-shard futures, re-issuing stragglers after the delay.

        ``futures`` maps shard index → primary attempt; ``resubmit(shard)``
        launches a hedge attempt for that shard.  Whichever attempt finishes
        first supplies the shard's result (answers are identical — shards
        are deterministic over their own partitions); should the winner have
        *failed*, the other attempt is consulted before giving up, so a
        hedge also masks one transient fault.  Returns shard → result.
        """
        delay = self._hedge_delay()
        laggards: set = set()
        if delay is not None and futures:
            _, laggards = futures_wait(set(futures.values()), timeout=delay)
        hedges: dict[int, tuple] = {}
        if laggards:
            primary_of = {future: shard for shard, future in futures.items()}
            for future in laggards:  # launch every hedge before racing any
                shard = primary_of[future]
                hedges[shard] = (resubmit(shard), time.perf_counter())
            with self._hedge_lock:
                self._hedges_issued += len(hedges)
        results: dict = {}
        hedge_spans: list[Span] = []
        for shard, primary in futures.items():
            if shard not in hedges:
                results[shard] = primary.result()
                continue
            hedge, hedge_begun = hedges[shard]
            futures_wait({primary, hedge}, return_when=FIRST_COMPLETED)
            # prefer the primary on a tie: its statistics stream is the one
            # the shard would have produced without hedging
            winner, loser = ((primary, hedge) if primary.done()
                             else (hedge, primary))
            try:
                results[shard] = winner.result()
            except Exception:
                winner, loser = loser, winner
                results[shard] = winner.result()
            won = winner is hedge
            if won:
                with self._hedge_lock:
                    self._hedge_wins += 1
            loser.add_done_callback(_observe_discarded)
            if span_scope is not None:
                context = span_scope["context"]
                hedge_spans.append(Span(
                    trace_id=context.trace_id, span_id=new_span_id(),
                    parent_span_id=span_scope["scatter_span_id"],
                    name="hedge", start=wall_at(hedge_begun),
                    duration_seconds=time.perf_counter() - hedge_begun,
                    attributes={"shard": shard, "won": won},
                ))
        if hedge_spans:
            get_recorder().record_many(hedge_spans)
        return results

    # ------------------------------------------------------------------ #
    # query execution (scatter-gather)
    # ------------------------------------------------------------------ #
    def run_query(
        self, query: Query | Graph, query_type: QueryType | str = QueryType.SUBGRAPH
    ) -> QueryReport:
        """Scatter one query to every shard and merge the answers."""
        if not isinstance(query, Query):
            query = Query(graph=query, query_type=QueryType.parse(query_type))
        return self._scatter_one(query, query.query_type)

    def run_queries(
        self,
        queries: Iterable[Query | Graph],
        query_type: QueryType | str = QueryType.SUBGRAPH,
    ) -> list[QueryReport]:
        """Process queries in order; each is scattered across all shards.

        Per-shard cache state evolves exactly as if that shard processed the
        stream sequentially on its own, so the merged answers are invariant
        across shard counts.
        """
        return [self.run_query(query, query_type) for query in queries]

    def run_queries_concurrent(
        self,
        queries: Iterable[Query | Graph],
        query_type: QueryType | str = QueryType.SUBGRAPH,
        max_workers: int | None = None,
    ) -> list[QueryReport]:
        """Scatter the whole batch to per-shard worker pools and merge.

        Each shard executes the batch through its own
        :meth:`GraphCacheSystem.run_queries_concurrent` (``max_workers``
        concurrent streams *per shard*), all shards running concurrently on
        the scatter pool.  Merged reports are returned in submission order,
        so downstream comparisons stay deterministic.
        """
        workers = self.config.max_workers if max_workers is None else max_workers
        if workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        query_list = [
            query if isinstance(query, Query)
            else Query(graph=query, query_type=QueryType.parse(query_type))
            for query in queries
        ]
        if not query_list:
            return []
        plans = [self.plan_query(query) for query in query_list]
        scopes = []
        for query, plan in zip(query_list, plans):
            query.metadata["scatter"] = plan.to_dict()
            scopes.append(self._begin_trace_scope(query))
        # group the batch per shard: each shard only ever sees the queries
        # planned onto it (under full scatter that is the whole batch)
        shard_positions: list[list[int]] = [[] for _ in range(self.num_shards)]
        for position, plan in enumerate(plans):
            for shard in plan.targets:
                shard_positions[shard].append(position)
        futures = {
            shard: self._submit_timed(
                self.shards[shard].run_queries_concurrent,
                [query_list[position] for position in positions],
                query_type,
                workers,
            )
            for shard, positions in enumerate(shard_positions)
            if positions
        }

        def resubmit(shard: int):
            # the hedge re-runs the shard's whole sub-batch on cloned
            # queries: the originals are racing on the primary attempt
            return self._submit_timed(
                self.shards[shard].run_queries_concurrent,
                [self._hedge_clone(query_list[position])
                 for position in shard_positions[shard]],
                query_type,
                workers,
            )

        shard_reports = self._gather_hedged(
            futures, resubmit,
            span_scope=next((scope for scope in scopes if scope), None),
        )
        offset_of = [
            {position: offset for offset, position in enumerate(positions)}
            for positions in shard_positions
        ]
        return [
            self._merge(
                query,
                [shard_reports[shard][offset_of[shard][position]]
                 for shard in plan.targets],
                plan=plan,
                trace_scope=scopes[position],
            )
            for position, (query, plan) in enumerate(zip(query_list, plans))
        ]

    def warm_cache(
        self,
        queries: Iterable[Query | Graph],
        query_type: QueryType | str = QueryType.SUBGRAPH,
        reset_statistics: bool = True,
    ) -> None:
        """Warm every shard's cache with the same query stream.

        The warm-up runs through the normal scatter-gather path, so the
        merged and per-shard statistics stay consistent: with
        ``reset_statistics=False`` both views carry the warm-up queries,
        with the default both are cleared.
        """
        self.run_queries(list(queries), query_type)
        for shard in self.shards:
            # uniform across backends: an in-process shard flushes its own
            # cache window, a process proxy forwards to its worker
            shard.flush_window()
        if reset_statistics:
            self.statistics.reset()
            for shard in self.shards:
                shard.statistics.reset()
                reset_remote = getattr(shard, "reset_remote_statistics", None)
                if reset_remote is not None:
                    reset_remote()

    def _scatter_one(self, query: Query, query_type: QueryType | str) -> QueryReport:
        plan = self.plan_query(query)
        query.metadata["scatter"] = plan.to_dict()
        scope = self._begin_trace_scope(query)
        futures = {
            shard: self._submit_timed(self.shards[shard].run_query, query, query_type)
            for shard in plan.targets
        }

        def resubmit(shard: int):
            return self._submit_timed(
                self.shards[shard].run_query, self._hedge_clone(query), query_type
            )

        reports = self._gather_hedged(futures, resubmit, span_scope=scope)
        return self._merge(query, [reports[shard] for shard in plan.targets],
                           plan=plan, trace_scope=scope)

    # ------------------------------------------------------------------ #
    # distributed tracing of the scatter-gather hop
    # ------------------------------------------------------------------ #
    @staticmethod
    def _begin_trace_scope(query: Query) -> dict | None:
        """Open the per-query ``scatter`` span and reparent the carrier.

        Every shard execution (thread pipeline or process worker) parents its
        ``pipeline`` span on whatever span id rides in the metadata carrier —
        so before scattering, the carrier's span id is rewritten to a fresh
        scatter span id.  :meth:`_merge` records the scatter/plan/merge spans
        under the *original* context and restores the carrier.
        """
        context = context_from_carrier(query.metadata)
        if context is None:
            return None
        scatter_span_id = new_span_id()
        scope = {
            "context": context,
            "scatter_span_id": scatter_span_id,
            "carrier": query.metadata[TRACE_KEY],
            # anchored wall stamp: offsets added to it downstream come from
            # perf_counter, so plan/scatter/merge spans order consistently
            "started_wall": wall_at(time.perf_counter()),
        }
        query.metadata[TRACE_KEY] = {
            "trace_id": context.trace_id,
            "span_id": scatter_span_id,
            "sampled": True,
        }
        return scope

    @staticmethod
    def _close_trace_scope(
        scope: dict,
        query: Query,
        plan: ScatterPlan | None,
        plan_seconds: float,
        slowest: float,
        merge_seconds: float,
    ) -> list[Span]:
        """The plan/scatter/merge spans of one gathered query (carrier restored)."""
        query.metadata[TRACE_KEY] = scope["carrier"]
        context = scope["context"]
        started_wall = scope["started_wall"]
        attributes: dict = {}
        if plan is not None:
            attributes = {"targets": list(plan.targets), "skipped": list(plan.skipped)}
        spans = []
        if plan_seconds > 0.0:
            spans.append(Span(
                trace_id=context.trace_id, span_id=new_span_id(),
                parent_span_id=context.span_id, name=PLAN_STAGE,
                start=started_wall - plan_seconds, duration_seconds=plan_seconds,
            ))
        spans.append(Span(
            trace_id=context.trace_id, span_id=scope["scatter_span_id"],
            parent_span_id=context.span_id, name="scatter",
            start=started_wall, duration_seconds=slowest, attributes=attributes,
        ))
        spans.append(Span(
            trace_id=context.trace_id, span_id=new_span_id(),
            parent_span_id=context.span_id, name=MERGE_STAGE,
            start=started_wall + slowest, duration_seconds=merge_seconds,
        ))
        return spans

    # ------------------------------------------------------------------ #
    # gather / merge
    # ------------------------------------------------------------------ #
    def _merge(
        self,
        query: Query,
        shard_reports: list[QueryReport],
        plan: ScatterPlan | None = None,
        trace_scope: dict | None = None,
    ) -> QueryReport:
        """Merge per-shard reports into one deterministic report + record.

        An empty ``shard_reports`` is legal: the planner proved *no* shard
        can contribute, so the merged answer is empty without any scatter.
        """
        started = time.perf_counter()
        merged = QueryReport(query=query)
        stage_seconds: dict[str, float] = {}
        baseline_seconds = 0.0
        # a fully-pruned query has no shard reports and hence no measured
        # baseline — it must record None, not a zero measurement
        have_baseline = bool(shard_reports)
        slowest = 0.0
        for report in shard_reports:  # shard order: deterministic
            if merged.exact_hit_entry is None:
                merged.exact_hit_entry = report.exact_hit_entry
            merged.sub_hit_entries.extend(report.sub_hit_entries)
            merged.super_hit_entries.extend(report.super_hit_entries)
            merged.method_candidates |= report.method_candidates
            merged.guaranteed_answers |= report.guaranteed_answers
            merged.guaranteed_non_answers |= report.guaranteed_non_answers
            merged.verified_candidates |= report.verified_candidates
            merged.verified_answers |= report.verified_answers
            merged.answer |= report.answer
            merged.cache_population += report.cache_population
            merged.dataset_tests += report.dataset_tests
            merged.probe_tests += report.probe_tests
            merged.filter_seconds += report.filter_seconds
            merged.probe_seconds += report.probe_seconds
            merged.verify_seconds += report.verify_seconds
            merged.baseline_tests += report.baseline_tests
            slowest = max(slowest, report.total_seconds)
            if report.baseline_seconds is None:
                have_baseline = False
            else:
                baseline_seconds += report.baseline_seconds
            for stage, seconds in report.stage_seconds.items():
                stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
        merged.baseline_seconds = baseline_seconds if have_baseline else None
        merge_seconds = time.perf_counter() - started
        plan_seconds = 0.0
        if plan is not None and self.planner.mode != "full":
            # planning is real per-query work in short-circuit mode: book it
            # as its own stage next to the merge, so skip decisions show up
            # in stage_breakdown() and /metrics like any other stage
            plan_seconds = plan.plan_seconds
            stage_seconds[PLAN_STAGE] = plan_seconds
        stage_seconds[MERGE_STAGE] = merge_seconds
        merged.stage_seconds = stage_seconds
        #: Critical path: shards ran concurrently, so the merged wall time is
        #: the plan, the slowest scattered shard, and the gather/merge.
        merged.total_seconds = plan_seconds + slowest + merge_seconds
        if trace_scope is not None:
            scatter_spans = self._close_trace_scope(
                trace_scope, query, plan, plan_seconds, slowest, merge_seconds
            )
            # shard-side pipeline spans are already in the recorder (thread
            # shards record directly; process proxies re-record on gather) —
            # only the scatter-level spans are new here
            get_recorder().record_many(scatter_spans)
            for report in shard_reports:
                merged.spans.extend(report.spans)
            merged.spans.extend(scatter_spans)
        self.statistics.record(self._record_from(merged))
        return merged

    @staticmethod
    def _record_from(report: QueryReport) -> QueryRecord:
        return QueryRecord.from_report(report)

    # ------------------------------------------------------------------ #
    # snapshots (fan out to per-shard files + a manifest)
    # ------------------------------------------------------------------ #
    def save_snapshot(self, path: str | Path) -> int:
        """Persist every shard's cache; returns total entries written.

        ``path`` receives a manifest (shard count, routing policy, file
        names); each shard's entries land in ``<stem>-shard<i><suffix>``
        next to it.  A restore with a different shard count or policy is
        refused (cold start) — shard files only make sense for the exact
        partitioning they were written under.
        """
        base = Path(path)
        total = 0
        shard_files: list[str] = []
        # gate on configuration, not `shard.cache`: a process shard's cache
        # lives in its worker (coordinator-side cache is None) but snapshots
        # fine — the worker writes the shard file itself
        if self.config.cache_enabled:
            for index, shard in enumerate(self.shards):
                shard_path = shard_snapshot_path(base, index)
                total += shard.save_snapshot(shard_path)
                shard_files.append(shard_path.name)
        manifest = {
            "format_version": SNAPSHOT_MANIFEST_VERSION,
            "sharded": True,
            "num_shards": self.num_shards,
            "shard_policy": self.router.policy,
            "shard_files": shard_files,
            "entries": total,
        }
        base.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        return total

    def restore_snapshot(self, path: str | Path) -> int:
        """Warm every shard from a sharded snapshot; returns entries restored.

        Returns 0 (cold start) when the manifest is missing, is not a
        sharded manifest (e.g. a single-system snapshot), or was written
        under a different shard count / routing policy.  A corrupt manifest
        or shard file raises — warm-cache data is never silently dropped.
        """
        base = Path(path)
        if not base.exists():
            return 0
        manifest = json.loads(base.read_text(encoding="utf-8"))
        if not isinstance(manifest, dict) or not manifest.get("sharded"):
            return 0
        if (
            manifest.get("num_shards") != self.num_shards
            or manifest.get("shard_policy") != self.router.policy
        ):
            return 0
        return sum(
            shard.restore_snapshot(shard_snapshot_path(base, index))
            for index, shard in enumerate(self.shards)
        )

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def aggregate(self) -> AggregateStatistics:
        """Merged aggregate statistics over every query processed so far."""
        return self.statistics.aggregate()

    def records(self) -> list[QueryRecord]:
        """Merged per-query records."""
        return self.statistics.records()

    def stage_breakdown(self) -> list[dict[str, float]]:
        """Merged per-stage latency summary (includes the ``merge`` stage)."""
        return self.statistics.stage_breakdown()

    def hit_percentages(self) -> list[float]:
        """Per-query hit percentage over the summed shard cache populations."""
        return self.statistics.per_record_hit_percentages()

    def cache_memory_bytes(self) -> int:
        """Total cache memory across shards."""
        return sum(shard.cache_memory_bytes() for shard in self.shards)

    def index_memory_bytes(self) -> int:
        """Total Method M filter-index memory across shards."""
        return sum(shard.index_memory_bytes() for shard in self.shards)

    def memory_overhead_ratio(self) -> float:
        """Total cache memory as a fraction of total index memory."""
        index_bytes = self.index_memory_bytes()
        if index_bytes <= 0:
            return float("inf") if self.cache_memory_bytes() > 0 else 0.0
        return self.cache_memory_bytes() / index_bytes

    def describe_shards(self) -> list[dict[str, object]]:
        """One summary row per shard (dataset slice, cache, memory, scatter)."""
        stats = self.planner.stats.to_dict()
        rows: list[dict[str, object]] = []
        for index, shard in enumerate(self.shards):
            row: dict[str, object] = {
                "shard": index,
                "dataset_size": len(shard.dataset),
                "cache_memory_bytes": shard.cache_memory_bytes(),
                "index_memory_bytes": shard.index_memory_bytes(),
                "scattered": stats["per_shard_scattered"][index],
                "skipped": stats["per_shard_skipped"][index],
            }
            if shard.cache is not None:
                row["cache"] = shard.cache.describe()
            else:
                remote_describe = getattr(shard, "remote_describe", None)
                if remote_describe is not None:
                    try:
                        remote = remote_describe()
                    except Exception:
                        remote = None  # metrics stay up while a worker respawns
                    if isinstance(remote, dict) and remote.get("cache") is not None:
                        row["cache"] = remote["cache"]
            rows.append(row)
        return rows

    def worker_liveness(self) -> list[dict]:
        """One liveness row per shard (process-backend rows carry pid/respawns).

        Thread shards live in this process, so they are alive iff we are;
        process rows come from the backend supervisor and can report a dead
        worker before the next query trips over it — the ``/health``
        degradation signal load balancers watch.
        """
        if self._process_backend is not None:
            return self._process_backend.liveness()
        return [
            {"shard": index, "backend": "thread", "alive": True, "respawns": 0}
            for index in range(self.num_shards)
        ]

    def worker_registry_snapshots(self) -> list[tuple[dict, dict]]:
        """``({"shard": i}, registry snapshot)`` per process worker.

        The coordinator's ``/metrics?format=text`` fans these into its own
        exposition as distinct labelled series.  A worker that cannot answer
        (mid-respawn) is skipped — a scrape never fails on a dying shard.
        """
        snapshots: list[tuple[dict, dict]] = []
        for index, shard in enumerate(self.shards):
            fetch = getattr(shard, "registry_snapshot", None)
            if fetch is None:
                continue
            try:
                snapshot = fetch()
            except Exception:
                continue
            if isinstance(snapshot, dict):
                snapshots.append(({"shard": str(index)}, snapshot))
        return snapshots

    def forward_worker_logs(self) -> int:
        """Drain buffered worker warnings/errors into this process's log.

        Returns the number of entries forwarded; thread shards (which log
        here directly) contribute nothing.
        """
        forwarded = 0
        for index, shard in enumerate(self.shards):
            drain = getattr(shard, "drain_logs", None)
            if drain is None:
                continue
            try:
                payload = drain()
            except Exception:
                continue
            if not isinstance(payload, dict):
                continue
            entries = payload.get("entries", []) or []
            replay_entries(entries, f"shard{index}",
                           dropped=int(payload.get("dropped", 0) or 0))
            forwarded += len(entries)
        return forwarded

    def describe(self) -> dict[str, object]:
        """Full description of the sharded deployment (for reports)."""
        return {
            "config": self.config.to_dict(),
            "method": self.method.describe(),
            "dataset_size": len(self.dataset),
            "router": self.router.describe(),
            "scatter": self.scatter_metrics(),
            "shards": self.describe_shards(),
        }


def make_system(
    dataset: Iterable[Graph],
    config: GCConfig | None = None,
    method: MethodM | Callable[[], MethodM] | None = None,
) -> GraphCacheSystem | ShardedGraphCacheSystem:
    """Build the system a config asks for: unsharded or scatter-gather.

    ``method`` may be a :class:`MethodM` instance (unsharded only) or a
    zero-argument factory.  With ``config.num_shards > 1`` a factory is
    required — each shard builds its own Method M over its partition.
    """
    config = config or GCConfig()
    config.validate()
    if config.num_shards <= 1 and config.shard_backend == "thread":
        if method is not None and not isinstance(method, MethodM):
            method = method()
        return GraphCacheSystem(dataset, config, method=method)
    if isinstance(method, MethodM):
        raise ConfigurationError(
            "a sharded deployment requires a method factory (zero-argument "
            "callable), not a built MethodM instance: every shard indexes its "
            "own partition"
        )
    return ShardedGraphCacheSystem(dataset, config, method_factory=method)
