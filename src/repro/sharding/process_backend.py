"""ProcessShardBackend: one spawned worker process per shard, v2 envelopes.

The GIL makes ``shard_backend="thread"`` a single-core deployment for
CPU-bound verification: the C1b benchmark shows 4 threads running *slower*
than 1.  This backend keeps the whole scatter-gather architecture — planner,
merge, cost-based admission, ``/metrics`` fan-in, snapshots — and swaps only
the shard hosting: each shard becomes a spawned OS process running
:func:`repro.sharding.worker.worker_main` (its own
:class:`~repro.runtime.system.GraphCacheSystem`, its own interpreter, its
own core), reachable over loopback HTTP speaking the existing v2 envelope
protocol.  PR 5's protocol work is what makes this cheap: the transport is
the stock :class:`~repro.api.aio.AsyncRemoteGraphService` pool, pinned to
v2, multiplexed on one coordinator-owned event-loop thread.

:class:`ProcessShardClient` implements the same shard surface
:class:`~repro.sharding.system.ShardedGraphCacheSystem` already scatters to
(``run_query``/``run_queries_concurrent``/``statistics``/``dataset``/
snapshots/memory accessors), so the sharded system treats thread shards and
process shards identically.  Each proxy keeps a coordinator-side
:class:`StatisticsManager` mirror fed from the full per-query reports the
worker returns, which is what keeps ``attach_shard`` fan-in and cost-based
admission (``observed_test_cost``/``mean_dataset_tests``) working unchanged.

Worker lifecycle: spawn + ready-handshake at construction (startup errors
travel back over the pipe), graceful drain (``/admin/shutdown`` → join →
terminate) at close, and crash recovery in between — a request hitting a
dead worker triggers a bounded respawn (``GCConfig.shard_respawn_limit``)
and re-issues *only the failed queries* against the cold replacement (sound:
the cache only ever prunes guaranteed candidates, so answers are invariant
under cache state).  A worker that stays down surfaces as a typed,
retryable :class:`~repro.errors.ShardWorkerError` (wire code
``shard-worker``, HTTP 503).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
from collections.abc import Callable, Sequence

from repro.api.aio import AsyncRemoteGraphService
from repro.api.envelopes import (
    ErrorEnvelope,
    QueryRequest,
    parse_response,
    wire_result,
)
from repro.cache.statistics import QueryRecord, StatisticsManager
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ServerError,
    ShardWorkerError,
)
from repro.graph.graph import Graph
from repro.methods.base import MethodM
from repro.obs.logs import get_logger
from repro.obs.recorder import get_recorder
from repro.obs.trace import TRACE_KEY, TraceContext
from repro.query_model import Query, QueryType
from repro.runtime.config import GCConfig
from repro.runtime.report import QueryReport
from repro.sharding.worker import report_from_wire, worker_main

logger = get_logger("sharding.process")

#: Seconds a spawned worker gets to build its index and report its port.
DEFAULT_STARTUP_TIMEOUT = 120.0

#: Per-request timeout against a worker (generous: a shard query is the
#: same work an in-process shard would do, plus loopback framing).
DEFAULT_REQUEST_TIMEOUT = 300.0


class _WorkerHandle:
    """One live worker: its process, its port, its pinned-v2 client pool."""

    __slots__ = ("index", "process", "port", "service", "describe")

    def __init__(self, index: int, process, port: int,
                 service: AsyncRemoteGraphService, describe: dict) -> None:
        self.index = index
        self.process = process
        self.port = port
        self.service = service
        self.describe = describe


class _RemoteMethodInfo:
    """Read-only stand-in for a worker-resident Method M (name + describe)."""

    def __init__(self, describe_payload: dict) -> None:
        self.name = str(describe_payload.get("method_name", "unknown"))
        self._description = dict(describe_payload.get("method") or {})

    def describe(self) -> dict:
        return dict(self._description)


class ProcessShardBackend:
    """Spawns, supervises and speaks to one worker process per shard."""

    def __init__(
        self,
        partitions: Sequence[Sequence[Graph]],
        shard_config: GCConfig,
        respawn_limit: int = 1,
        method_factory: Callable[[], MethodM] | None = None,
        startup_timeout: float = DEFAULT_STARTUP_TIMEOUT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        if method_factory is not None and isinstance(method_factory, MethodM):
            raise ConfigurationError(
                "the process shard backend needs a method *factory*; "
                "pass a zero-argument callable, not a built MethodM"
            )
        self._ctx = multiprocessing.get_context("spawn")
        self._dataset_payloads = [
            [graph.to_dict() for graph in partition] for partition in partitions
        ]
        self._config_payload = shard_config.to_dict()
        self._method_factory = method_factory
        self._startup_timeout = startup_timeout
        self._request_timeout = request_timeout
        self._respawn_limit = respawn_limit
        self._respawns_left = [respawn_limit] * len(self._dataset_payloads)
        #: Workers successfully replaced after a crash (asserted by tests).
        self.respawns_performed = 0
        self._lock = threading.Lock()
        self._closed = False

        #: One event loop on a dedicated thread carries every worker's
        #: connection pool; proxy threads submit coroutines onto it.
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="gc-procshard-loop", daemon=True
        )
        self._loop_thread.start()

        self._handles: list[_WorkerHandle] = []
        try:
            # start every worker first, then collect handshakes: startup
            # (imports + index build) overlaps across workers
            started = [self._start_process(index)
                       for index in range(len(self._dataset_payloads))]
            for index, (process, ready) in enumerate(started):
                port, describe = self._await_ready(index, process, ready)
                self._handles.append(self._make_handle(index, process, port, describe))
        except Exception:
            self._teardown(started=self._handles,
                           raw=started[len(self._handles):] if started else [])
            raise

        self.clients = [
            ProcessShardClient(self, index, partition, shard_config)
            for index, partition in enumerate(partitions)
        ]

    # ------------------------------------------------------------------ #
    # worker lifecycle
    # ------------------------------------------------------------------ #
    def _start_process(self, index: int):
        ready_recv, ready_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(ready_send, self._dataset_payloads[index],
                  self._config_payload, index, self._method_factory),
            name=f"gc-shard-worker-{index}",
            daemon=True,
        )
        try:
            process.start()
        except Exception as exc:
            ready_recv.close()
            raise ConfigurationError(
                f"failed to spawn shard {index} worker: {exc} — a process "
                "backend ships its method factory to the child by pickling, "
                "so it must be a module-level callable (or None for the "
                "config-driven default)"
            ) from exc
        finally:
            ready_send.close()  # the child holds the write end now
        return process, ready_recv

    def _await_ready(self, index: int, process, ready) -> tuple[int, dict]:
        try:
            if not ready.poll(self._startup_timeout):
                raise ShardWorkerError(
                    index, f"startup handshake timed out after {self._startup_timeout}s"
                )
            try:
                payload = ready.recv()
            except (EOFError, OSError) as exc:
                raise ShardWorkerError(
                    index, f"worker died during startup ({type(exc).__name__})"
                ) from exc
        finally:
            ready.close()
        if not isinstance(payload, dict) or "port" not in payload:
            reason = payload.get("error") if isinstance(payload, dict) else repr(payload)
            raise ShardWorkerError(index, f"worker failed to start: {reason}")
        return int(payload["port"]), dict(payload.get("describe") or {})

    def _make_handle(self, index: int, process, port: int, describe: dict) -> _WorkerHandle:
        service = AsyncRemoteGraphService(
            "127.0.0.1", port,
            timeout=self._request_timeout,
            max_connections=64,
            protocol_version=2,  # workers are always v2-capable: skip /protocol
        )
        return _WorkerHandle(index, process, port, service, describe)

    def describe_payload(self, index: int) -> dict:
        """The handshake describe payload of shard ``index``'s worker."""
        return dict(self._handles[index].describe)

    # ------------------------------------------------------------------ #
    # transport (proxy threads → event loop → workers)
    # ------------------------------------------------------------------ #
    def _submit(self, coroutine, timeout: float | None = None):
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=timeout)

    def call(self, index: int, method: str, path: str,
             body: dict | None = None) -> tuple[int, dict]:
        """One request to shard ``index``'s worker, with crash recovery.

        A transport failure against a *dead* worker spends respawn budget,
        brings up a cold replacement and retries the request there (all the
        endpoints driven through here are answer-safe to re-execute); a
        transport failure against a live worker propagates — the async pool
        already retried stale keep-alive connections once, and timeouts must
        never re-run a query that may still be executing.
        """
        attempts = 0
        while True:
            handle = self._handle(index)
            try:
                return self._submit(handle.service.request(method, path, body))
            except TimeoutError as exc:
                if handle.process.is_alive():
                    raise
                self._recover(index, handle, "worker died mid-request", cause=exc)
            except (OSError, EOFError) as exc:
                self._recover(index, handle, f"{type(exc).__name__}: {exc}", cause=exc)
            attempts += 1
            if attempts > self._respawn_limit + 1:  # pragma: no cover - safety net
                raise ShardWorkerError(index, "worker kept failing after respawn",
                                       self.respawns_performed)

    def admin(self, index: int, path: str, body: dict | None = None) -> dict:
        """POST an admin endpoint and insist on a 200 payload."""
        status, payload = self.call(index, "POST", path, body or {})
        if status != 200:
            raise ServerError(f"shard {index} {path} replied {status}: {payload}")
        return payload

    def describe(self, index: int) -> dict:
        """A *live* describe of shard ``index``'s worker (memory, cache)."""
        status, payload = self.call(index, "GET", "/describe")
        if status != 200:
            raise ServerError(f"shard {index} /describe replied {status}: {payload}")
        return payload

    def query(self, index: int, body: dict) -> tuple[int, dict]:
        """POST one query envelope to shard ``index``."""
        return self.call(index, "POST", "/query", body)

    def query_batch(self, index: int, bodies: list[dict],
                    concurrency: int) -> list[tuple[int, dict]]:
        """POST a batch concurrently; outcomes return in submission order.

        On a worker crash mid-batch, only the failed positions are re-issued
        against the respawned worker — completed answers are kept exactly
        once, so a crash can neither drop nor duplicate an answer.
        """
        results: list[tuple[int, dict] | None] = [None] * len(bodies)
        pending = list(range(len(bodies)))
        attempts = 0
        while pending:
            handle = self._handle(index)
            outcomes = self._submit(
                self._gather(handle.service, [bodies[i] for i in pending], concurrency)
            )
            failed: list[int] = []
            first_failure: BaseException | None = None
            for position, outcome in zip(pending, outcomes):
                if isinstance(outcome, BaseException):
                    # NB: TimeoutError subclasses OSError — classify it first
                    if isinstance(outcome, TimeoutError) and handle.process.is_alive():
                        raise outcome
                    if isinstance(outcome, (OSError, EOFError)):
                        failed.append(position)
                        if first_failure is None:
                            first_failure = outcome
                    else:
                        raise outcome
                else:
                    results[position] = outcome
            if not failed:
                break
            self._recover(
                index, handle,
                f"worker lost {len(failed)} in-flight queries "
                f"({type(first_failure).__name__})",
                cause=first_failure,
            )
            pending = failed
            attempts += 1
            if attempts > self._respawn_limit + 1:  # pragma: no cover - safety net
                raise ShardWorkerError(index, "worker kept failing after respawn",
                                       self.respawns_performed)
        return results  # type: ignore[return-value]

    @staticmethod
    async def _gather(service: AsyncRemoteGraphService, bodies: list[dict],
                      concurrency: int):
        gate = asyncio.Semaphore(max(1, concurrency))

        async def one(body: dict):
            async with gate:
                return await service.request("POST", "/query", body)

        return await asyncio.gather(*(one(body) for body in bodies),
                                    return_exceptions=True)

    # ------------------------------------------------------------------ #
    # crash recovery
    # ------------------------------------------------------------------ #
    def _handle(self, index: int) -> _WorkerHandle:
        if self._closed:
            raise ServerError("process shard backend is closed")
        with self._lock:
            return self._handles[index]

    def _recover(self, index: int, failed_handle: _WorkerHandle,
                 reason: str, cause: BaseException | None = None) -> None:
        """Replace a dead worker under budget; generation-safe across threads.

        Many in-flight requests can fail together when one worker dies; only
        the first caller spends budget and respawns, the rest observe the
        swapped handle and simply retry.  A transport error against a worker
        that is demonstrably alive is not a crash — it propagates.
        """
        with self._lock:
            current = self._handles[index]
            if current is not failed_handle:
                return  # a sibling thread already replaced this worker
            process = failed_handle.process
            if process.is_alive():
                process.join(timeout=0.5)  # a dying worker needs a beat to reap
            if process.is_alive():
                raise cause if cause is not None else ShardWorkerError(
                    index, reason, self.respawns_performed)
            if self._respawns_left[index] <= 0:
                logger.error("shard %d worker down (%s); respawn budget exhausted",
                             index, reason)
                raise ShardWorkerError(
                    index, f"{reason}; respawn budget exhausted",
                    self.respawns_performed,
                ) from cause
            self._respawns_left[index] -= 1
            self._close_service(failed_handle.service)
            replacement, ready = self._start_process(index)
            try:
                port, describe = self._await_ready(index, replacement, ready)
            except ShardWorkerError:
                replacement.terminate()
                raise
            self._handles[index] = self._make_handle(index, replacement, port, describe)
            self.respawns_performed += 1
            logger.warning(
                "shard %d worker respawned after crash (%s); "
                "%d respawn(s) left for this shard",
                index, reason, self._respawns_left[index],
            )

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def liveness(self) -> list[dict]:
        """One row per worker: alive/pid/port plus respawn accounting."""
        with self._lock:
            handles = list(self._handles)
            respawns_left = list(self._respawns_left)
        return [
            {
                "shard": handle.index,
                "backend": "process",
                "alive": handle.process.is_alive(),
                "pid": handle.process.pid,
                "port": handle.port,
                "respawns": self._respawn_limit - respawns_left[handle.index],
                "respawns_left": respawns_left[handle.index],
            }
            for handle in handles
        ]

    def pool_stats(self) -> list[dict]:
        """Per-worker async connection-pool telemetry (``shard`` stamped in)."""
        with self._lock:
            handles = list(self._handles)
        stats = []
        for handle in handles:
            payload = dict(handle.service.pool_stats())
            payload["shard"] = handle.index
            stats.append(payload)
        return stats

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def _close_service(self, service: AsyncRemoteGraphService) -> None:
        try:
            self._submit(service.aclose(), timeout=5.0)
        except Exception:  # pragma: no cover - best-effort socket teardown
            pass

    def _teardown(self, started: list[_WorkerHandle], raw: list) -> None:
        """Startup-failure cleanup: kill everything already running."""
        for handle in started:
            self._close_service(handle.service)
            handle.process.terminate()
        for process, ready in raw:
            try:
                ready.close()
            except Exception:
                pass
            process.terminate()
        for handle in started:
            handle.process.join(timeout=2.0)
        for process, _ in raw:
            process.join(timeout=2.0)
        self._stop_loop()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=5.0)
        self._loop.close()

    def close(self) -> None:
        """Drain and join every worker: shutdown → join → terminate."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        for handle in handles:
            try:
                self._submit(
                    handle.service.request("POST", "/admin/shutdown", {}),
                    timeout=5.0,
                )
            except Exception:
                pass  # a dead worker cannot drain; terminate below
        for handle in handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            self._close_service(handle.service)
        self._stop_loop()


class ProcessShardClient:
    """One shard's proxy: the GraphCacheSystem shard surface over a worker.

    ``cache`` is ``None`` (the real cache lives in the worker; resident-key
    exact routing simply never primes, which is sound — summaries still
    prune on partition features).  ``statistics`` is a coordinator-side
    mirror recording the full per-query reports the worker returns, so
    ``/metrics`` fan-in and cost-based admission read genuine numbers.
    """

    cache = None

    def __init__(self, backend: ProcessShardBackend, index: int,
                 partition: Sequence[Graph], config: GCConfig) -> None:
        self._backend = backend
        self.index = index
        self.dataset = list(partition)
        self.config = config
        self.statistics = StatisticsManager()
        self.method = _RemoteMethodInfo(backend.describe_payload(index))

    # -- query execution ------------------------------------------------ #
    @staticmethod
    def _as_query(query: Query | Graph, query_type: QueryType | str) -> Query:
        if isinstance(query, Query):
            return query
        return Query(graph=query, query_type=QueryType.parse(query_type))

    def _wire(self, query: Query) -> dict:
        # the live ScatterPlan stashed by cost-based admission is a
        # coordinator-side object; everything else in metadata is JSON.
        # The trace carrier is lifted onto the envelope's own "trace"
        # section — this is the loopback hop the trace context must survive
        metadata = {key: value for key, value in query.metadata.items()
                    if key not in ("scatter_plan", TRACE_KEY)}
        trace = TraceContext.from_wire(query.metadata.get(TRACE_KEY))
        request = QueryRequest(graph=query.graph, query_type=query.query_type,
                               metadata=metadata, request_id=query.query_id,
                               trace=trace)
        return request.to_wire(2)

    def _report_from(self, query: Query, status: int, payload: dict) -> QueryReport:
        outcome = parse_response(payload, http_status=status)
        if isinstance(outcome, ErrorEnvelope):
            raise outcome.to_exception()
        section = wire_result(payload).get("report")
        if not isinstance(section, dict):
            raise ProtocolError(
                f"shard {self.index} worker response carries no 'report' section"
            )
        report = report_from_wire(query, section)
        if report.spans:
            # the worker recorded these in *its* process; replay them into
            # the coordinator's recorder so the tree is whole on this side
            get_recorder().record_many(report.spans)
        return report

    def run_query(self, query: Query | Graph,
                  query_type: QueryType | str = QueryType.SUBGRAPH) -> QueryReport:
        query = self._as_query(query, query_type)
        status, payload = self._backend.query(self.index, self._wire(query))
        report = self._report_from(query, status, payload)
        self.statistics.record(QueryRecord.from_report(report))
        return report

    def run_queries(self, queries, query_type: QueryType | str = QueryType.SUBGRAPH):
        return [self.run_query(query, query_type) for query in queries]

    def run_queries_concurrent(self, queries,
                               query_type: QueryType | str = QueryType.SUBGRAPH,
                               max_workers: int | None = None):
        query_list = [self._as_query(query, query_type) for query in queries]
        if not query_list:
            return []
        workers = self.config.max_workers if max_workers is None else max_workers
        if workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        outcomes = self._backend.query_batch(
            self.index, [self._wire(query) for query in query_list], workers
        )
        reports = [
            self._report_from(query, status, payload)
            for query, (status, payload) in zip(query_list, outcomes)
        ]
        # mirror records in submission order, matching the thread backend's
        # post-batch statistics reorder
        for report in reports:
            self.statistics.record(QueryRecord.from_report(report))
        return reports

    # -- shard lifecycle hooks ------------------------------------------ #
    def flush_window(self) -> None:
        self._backend.admin(self.index, "/admin/flush-window")

    def reset_remote_statistics(self) -> None:
        self._backend.admin(self.index, "/admin/reset-statistics")

    def save_snapshot(self, path) -> int:
        payload = self._backend.admin(self.index, "/admin/snapshot/save",
                                      {"path": str(path)})
        return int(payload.get("entries", 0))

    def restore_snapshot(self, path) -> int:
        payload = self._backend.admin(self.index, "/admin/snapshot/restore",
                                      {"path": str(path)})
        return int(payload.get("entries", 0))

    # -- observability --------------------------------------------------- #
    def remote_describe(self) -> dict:
        """A live ``/describe`` of the worker (cache population, memory)."""
        return self._backend.describe(self.index)

    def registry_snapshot(self) -> dict:
        """The worker's own :class:`MetricsRegistry` snapshot (for fan-in)."""
        status, payload = self._backend.call(self.index, "GET", "/obs/registry")
        if status != 200:
            raise ServerError(
                f"shard {self.index} /obs/registry replied {status}: {payload}"
            )
        return payload

    def drain_logs(self) -> dict:
        """Pop the worker's buffered warning/error log entries."""
        return self._backend.admin(self.index, "/admin/logs/drain")

    def cache_memory_bytes(self) -> int:
        try:
            return int(self.remote_describe().get("cache_memory_bytes", 0))
        except Exception:  # metrics must not mask a serving-path failure
            return 0

    def index_memory_bytes(self) -> int:
        try:
            return int(self.remote_describe().get("index_memory_bytes", 0))
        except Exception:
            return 0

    def close(self) -> None:
        """Worker teardown is backend-wide; see ProcessShardBackend.close."""
