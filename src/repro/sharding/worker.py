"""Shard worker process: one unsharded GraphCacheSystem behind v2 envelopes.

The process shard backend spawns one of these per shard
(``multiprocessing`` *spawn* context — no inherited locks or sockets, the
worker rebuilds everything from serialised payloads).  Each worker hosts its
own :class:`~repro.runtime.system.GraphCacheSystem` over its partition —
its own Method M index, its own thread-safe cache, its own admission window
— and fronts it with a minimal loopback HTTP app speaking **the same v2
envelope protocol** as the public query server (``GET /protocol``
negotiation, :func:`~repro.api.envelopes.parse_request`, taxonomy-classified
:class:`~repro.api.envelopes.ErrorEnvelope` on failure).  The coordinator
therefore needs no new wire format: it reuses the async client pool as
transport.

The one addition over the public surface: a shard worker's ``POST /query``
success payload carries the *full* :class:`~repro.runtime.report.QueryReport`
(journey sets included) under ``result["report"]``, because the coordinator
must gather per-shard reports to run the scatter-gather merge — the public
:class:`QueryResponse` only summarises them.  The section is additive, so
the payload still parses as a plain v2 response.

``/admin/*`` endpoints cover the shard lifecycle the in-process backend gets
for free: window flush (warm-up), statistics reset, snapshot save/restore
(worker-side file I/O — coordinator and workers share a filesystem), and
graceful shutdown.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import __version__
from repro.api.envelopes import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ErrorEnvelope,
    MetricsSnapshot,
    QueryResponse,
    parse_request,
)
from repro.cache.statistics import json_safe
from repro.obs.collectors import recorder_samples, system_samples
from repro.obs.logs import BufferedLogHandler, current_trace_id, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import get_recorder
from repro.obs.trace import TRACE_KEY, Span
from repro.query_model import Query
from repro.runtime.config import GCConfig
from repro.runtime.report import QueryReport
from repro.runtime.system import GraphCacheSystem

logger = get_logger("sharding.worker")


# ---------------------------------------------------------------------- #
# full-report wire serialisation (the additive ``result["report"]`` section)
# ---------------------------------------------------------------------- #
def report_to_wire(report: QueryReport) -> dict:
    """Serialise every :class:`QueryReport` field the merge consumes.

    Journey sets travel as sorted lists (graph ids are ints or strings —
    JSON-native either way); hit entries are cache entry ids (ints).
    """
    return json_safe({
        "exact_hit_entry": report.exact_hit_entry,
        "sub_hit_entries": list(report.sub_hit_entries),
        "super_hit_entries": list(report.super_hit_entries),
        "method_candidates": sorted(report.method_candidates, key=repr),
        "guaranteed_answers": sorted(report.guaranteed_answers, key=repr),
        "guaranteed_non_answers": sorted(report.guaranteed_non_answers, key=repr),
        "verified_candidates": sorted(report.verified_candidates, key=repr),
        "verified_answers": sorted(report.verified_answers, key=repr),
        "answer": sorted(report.answer, key=repr),
        "cache_population": report.cache_population,
        "dataset_tests": report.dataset_tests,
        "probe_tests": report.probe_tests,
        "filter_seconds": report.filter_seconds,
        "probe_seconds": report.probe_seconds,
        "verify_seconds": report.verify_seconds,
        "total_seconds": report.total_seconds,
        "baseline_tests": report.baseline_tests,
        "baseline_seconds": report.baseline_seconds,
        "stage_seconds": dict(report.stage_seconds),
        # additive: the worker-side span subtree of a traced query, so the
        # coordinator's recorder sees one coherent cross-process tree
        "spans": [span.to_dict() for span in report.spans],
    })


def report_from_wire(query: Query, payload: dict) -> QueryReport:
    """Rebuild the shard's :class:`QueryReport` around the coordinator's query."""
    return QueryReport(
        query=query,
        exact_hit_entry=payload.get("exact_hit_entry"),
        sub_hit_entries=list(payload.get("sub_hit_entries", [])),
        super_hit_entries=list(payload.get("super_hit_entries", [])),
        method_candidates=set(payload.get("method_candidates", [])),
        guaranteed_answers=set(payload.get("guaranteed_answers", [])),
        guaranteed_non_answers=set(payload.get("guaranteed_non_answers", [])),
        verified_candidates=set(payload.get("verified_candidates", [])),
        verified_answers=set(payload.get("verified_answers", [])),
        answer=set(payload.get("answer", [])),
        cache_population=int(payload.get("cache_population", 0)),
        dataset_tests=int(payload.get("dataset_tests", 0)),
        probe_tests=int(payload.get("probe_tests", 0)),
        filter_seconds=float(payload.get("filter_seconds", 0.0)),
        probe_seconds=float(payload.get("probe_seconds", 0.0)),
        verify_seconds=float(payload.get("verify_seconds", 0.0)),
        total_seconds=float(payload.get("total_seconds", 0.0)),
        baseline_tests=int(payload.get("baseline_tests", 0)),
        baseline_seconds=payload.get("baseline_seconds"),
        stage_seconds=dict(payload.get("stage_seconds", {})),
        spans=[Span.from_dict(span) for span in payload.get("spans", [])
               if isinstance(span, dict)],
    )


# ---------------------------------------------------------------------- #
# the worker HTTP app
# ---------------------------------------------------------------------- #
class _WorkerHTTPServer(ThreadingHTTPServer):
    """Loopback transport: one thread per coordinator connection."""

    daemon_threads = True
    request_queue_size = 128


class ShardWorkerApp:
    """HTTP-agnostic request handling for one shard worker."""

    def __init__(self, system: GraphCacheSystem, shard_index: int,
                 log_handler: BufferedLogHandler | None = None) -> None:
        self.system = system
        self.shard_index = shard_index
        #: The worker's buffered warning/error log, drained by the
        #: coordinator over ``POST /admin/logs/drain``.
        self.log_handler = log_handler
        #: This worker's own telemetry registry, fanned into the
        #: coordinator's text exposition under a ``shard`` label.
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "worker_requests_total", help="Envelope queries served by this worker")
        self._request_errors = self.registry.counter(
            "worker_request_errors_total", help="Envelope queries that failed")
        self._latency = self.registry.histogram(
            "worker_query_seconds", help="Worker-side query latency")
        self.registry.register_collector(lambda: system_samples(self.system))
        self.registry.register_collector(lambda: recorder_samples(get_recorder()))

    def describe(self) -> dict:
        """Everything the coordinator mirrors about this worker's system."""
        payload = {
            "shard": self.shard_index,
            "method_name": self.system.method.name,
            "method": self.system.method.describe(),
            "dataset_size": len(self.system.dataset),
            "cache": (self.system.cache.describe()
                      if self.system.cache is not None else None),
            "cache_memory_bytes": self.system.cache_memory_bytes(),
            "index_memory_bytes": self.system.index_memory_bytes(),
        }
        return json_safe(payload)

    def protocol(self) -> dict:
        return {
            "versions": list(SUPPORTED_VERSIONS),
            "preferred": PROTOCOL_VERSION,
            "server": f"GraphCacheShardWorker/{__version__}",
        }

    def serve_query(self, payload: dict) -> tuple[int, dict]:
        """Execute one envelope query; success carries the full report."""
        try:
            request, version = parse_request(payload)
        except Exception as exc:
            self._request_errors.inc()
            envelope = ErrorEnvelope.from_exception(exc)
            return envelope.http_status, envelope.to_wire(PROTOCOL_VERSION)
        self._requests.inc()
        query = request.to_query()
        carrier = query.metadata.get(TRACE_KEY)
        trace_token = None
        if isinstance(carrier, dict):
            # attribute this shard's pipeline spans and log lines to itself
            carrier["shard"] = self.shard_index
            trace_token = current_trace_id.set(str(carrier.get("trace_id") or "") or None)
        started = time.perf_counter()
        try:
            report = self.system.run_query(query)
        except Exception as exc:
            self._request_errors.inc()
            logger.error("shard %d query failed: %s: %s",
                         self.shard_index, type(exc).__name__, exc)
            envelope = ErrorEnvelope.from_exception(exc, request_id=request.request_id)
            return envelope.http_status, envelope.to_wire(version)
        finally:
            self._latency.observe(time.perf_counter() - started)
            if trace_token is not None:
                current_trace_id.reset(trace_token)
        response = QueryResponse.from_report(report, request_id=request.request_id)
        wire = response.to_wire(version)
        if version >= 2:
            wire["result"]["report"] = report_to_wire(report)
        return 200, wire

    def admin(self, path: str, payload: dict) -> tuple[int, dict]:
        """Shard lifecycle endpoints the coordinator drives."""
        if path == "/admin/flush-window":
            self.system.flush_window()
            return 200, {"ok": True}
        if path == "/admin/reset-statistics":
            self.system.statistics.reset()
            return 200, {"ok": True}
        if path == "/admin/snapshot/save":
            target = payload.get("path")
            if not isinstance(target, str) or not target:
                return 400, {"error": "'path' must be a non-empty string"}
            return 200, {"entries": self.system.save_snapshot(target)}
        if path == "/admin/snapshot/restore":
            target = payload.get("path")
            if not isinstance(target, str) or not target:
                return 400, {"error": "'path' must be a non-empty string"}
            return 200, {"entries": self.system.restore_snapshot(target)}
        if path == "/admin/logs/drain":
            if self.log_handler is None:
                return 200, {"entries": [], "dropped": 0}
            return 200, self.log_handler.drain()
        return 404, {"error": f"unknown path {path!r}"}


def _make_handler(app: ShardWorkerApp, httpd: _WorkerHTTPServer) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"  # keep-alive: the pool reuses connections
        server_version = f"GraphCacheShardWorker/{__version__}"
        # headers and body flush as separate small writes; without NODELAY,
        # Nagle + delayed ACK stalls every response ~40ms even on loopback
        disable_nagle_algorithm = True

        def do_POST(self) -> None:
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length)
            except ValueError:
                self._reply(400, {"error": "bad Content-Length header"})
                return
            try:
                payload = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                self._reply(400, {"error": f"malformed JSON body: {exc}"})
                return
            if not isinstance(payload, dict):
                payload = {}
            if self.path == "/query":
                status, body = app.serve_query(payload)
            elif self.path == "/admin/shutdown":
                # reply first, then stop serve_forever off-thread (shutdown
                # from a handler thread would deadlock the serve loop)
                status, body = 200, {"ok": True}
                threading.Thread(target=httpd.shutdown, daemon=True).start()
            elif self.path.startswith("/admin/"):
                status, body = app.admin(self.path, payload)
            else:
                status, body = 404, {"error": f"unknown path {self.path!r}"}
            self._reply(status, body)

        def do_GET(self) -> None:
            if self.path == "/protocol":
                self._reply(200, app.protocol())
            elif self.path == "/health":
                self._reply(200, {"status": "ok", "shard": app.shard_index})
            elif self.path == "/describe":
                self._reply(200, app.describe())
            elif self.path == "/metrics":
                self._reply(200, MetricsSnapshot.from_system(app.system).to_wire())
            elif self.path == "/obs/registry":
                self._reply(200, app.registry.snapshot())
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # the coordinator accounts requests; workers stay silent

    return Handler


def worker_main(
    ready,
    dataset_payload: list[dict],
    config_payload: dict,
    shard_index: int,
    method_factory=None,
) -> None:
    """Entry point of a spawned shard worker process.

    Rebuilds the partition (:meth:`Graph.from_dict`) and the per-shard
    configuration, builds the system (config-driven method unless a picklable
    ``method_factory`` was shipped), binds the loopback app on an ephemeral
    port, reports ``{"port", "describe"}`` on the ``ready`` pipe, and serves
    until ``/admin/shutdown`` (or the process is killed).  A startup failure
    is reported as ``{"error": ...}`` on the pipe so the coordinator can
    surface the real reason instead of a bare handshake timeout.
    """
    from repro.graph.graph import Graph  # deferred: after spawn bootstrap

    try:
        # buffer warnings/errors for the coordinator to drain and re-emit —
        # a spawned worker's stderr is otherwise lost
        log_handler = BufferedLogHandler()
        logging.getLogger("repro").addHandler(log_handler)
        dataset = [Graph.from_dict(payload) for payload in dataset_payload]
        config = GCConfig.from_dict(config_payload)
        get_recorder().configure(
            buffer_size=config.trace_buffer_size,
            slow_threshold_seconds=config.slow_query_threshold_s,
        )
        method = method_factory() if method_factory is not None else None
        system = GraphCacheSystem(dataset, config, method=method)
        app = ShardWorkerApp(system, shard_index, log_handler=log_handler)
        httpd = _WorkerHTTPServer(("127.0.0.1", 0), None)
        httpd.RequestHandlerClass = _make_handler(app, httpd)
    except Exception as exc:
        try:
            ready.send({"error": f"{type(exc).__name__}: {exc}"})
        finally:
            ready.close()
        return
    try:
        ready.send({"port": httpd.server_address[1], "describe": app.describe()})
        ready.close()
        httpd.serve_forever()
    finally:
        httpd.server_close()
        system.close()
