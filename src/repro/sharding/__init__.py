"""Sharded scatter-gather execution: dataset partitioning + merged serving.

Partition the dataset across N independent :class:`GraphCacheSystem` shards
(:class:`ShardRouter`), scatter every query's filter + verify work to all
shards in parallel, and merge the per-shard answers into one deterministic
report (:class:`ShardedGraphCacheSystem`).  :func:`make_system` dispatches on
``GCConfig.num_shards`` so callers (query server, CLI, workload runner) stay
agnostic of whether they hold a sharded or an unsharded engine.

Shards run on one of two execution backends (``GCConfig.shard_backend``):
``"thread"`` hosts each shard in-process on the scatter pool, ``"process"``
spawns one worker *process* per shard (:class:`ProcessShardBackend` +
:mod:`repro.sharding.worker`) speaking v2 envelopes over loopback — same
scatter-gather semantics, no shared GIL for CPU-bound verification.
"""

from repro.runtime.config import SCATTER_MODES, SHARD_BACKENDS, SHARD_POLICIES
from repro.sharding.planner import PLAN_STAGE, ScatterPlan, ScatterPlanner, ScatterStats
from repro.sharding.process_backend import ProcessShardBackend, ProcessShardClient
from repro.sharding.router import ShardRouter, stable_graph_id_hash
from repro.sharding.summary import ShardSummary, resident_key
from repro.sharding.system import (
    MERGE_STAGE,
    ShardedGraphCacheSystem,
    make_system,
    shard_snapshot_path,
)

__all__ = [
    "SCATTER_MODES",
    "SHARD_BACKENDS",
    "SHARD_POLICIES",
    "ProcessShardBackend",
    "ProcessShardClient",
    "ShardRouter",
    "ShardSummary",
    "ShardedGraphCacheSystem",
    "ScatterPlan",
    "ScatterPlanner",
    "ScatterStats",
    "MERGE_STAGE",
    "PLAN_STAGE",
    "make_system",
    "resident_key",
    "shard_snapshot_path",
    "stable_graph_id_hash",
]
