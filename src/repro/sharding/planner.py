"""ScatterPlanner: decide, per query, which shards must be scattered to.

PR 3's scatter-gather engine sends every query to every shard, so adding
shards buys parallelism but never reduces total filter/verify work.  The
planner closes that gap: it consults each shard's :class:`ShardSummary`
(union/common feature vectors, label set, size envelope, resident cache
keys) and *proves* which shards cannot contribute answers; only the
survivors are scattered to.  Tuffy-style, the cost model rides on the same
plan: per targeted shard the planner estimates the batch cost (planned
candidate count × the shard's observed per-test cost) so the request
batcher can backpressure a hot shard without starving the cold ones.

Safety invariants, locked by the differential + property suites:

* every skip is backed by a sound summary screen — a skipped shard
  contributes **zero** answers under full scatter;
* a shard whose summary is unusable (stale flag, broken integrity seal) is
  **always scattered to** — degraded coverage, never dropped answers — and
  the fallback is counted so ``/metrics`` surfaces the event;
* ``full`` mode never consults summaries at all (the PR 3 behaviour).

Planning time is booked as its own ``plan`` pipeline stage on merged
reports (:data:`PLAN_STAGE`), next to the existing ``merge`` stage.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.features.base import FeatureExtractor
from repro.query_model import Query
from repro.runtime.config import SCATTER_MODES
from repro.sharding.summary import ShardSummary, resident_key

#: Stage name under which per-query scatter planning time is accounted.
PLAN_STAGE = "plan"


@dataclass
class ScatterPlan:
    """The planner's verdict for one query."""

    query_id: int
    #: Shard indices the query must be scattered to, ascending.
    targets: list[int] = field(default_factory=list)
    #: Pruned shards → the sound reason each cannot contribute.
    skipped: dict[int, str] = field(default_factory=dict)
    #: Shards scattered to *despite* an unusable summary (degraded mode).
    fallbacks: list[int] = field(default_factory=list)
    #: Targeted shards whose cache holds the query's exact-match key — they
    #: will answer their partition from cache (≈ zero verification cost).
    exact_shards: list[int] = field(default_factory=list)
    plan_seconds: float = 0.0

    @property
    def fanout(self) -> int:
        """Number of shards actually scattered to."""
        return len(self.targets)

    def to_dict(self) -> dict:
        """JSON-safe view (stamped into ``query.metadata`` by the system)."""
        return {
            "targets": list(self.targets),
            "skipped": dict(self.skipped),
            "fallbacks": list(self.fallbacks),
            "exact_shards": list(self.exact_shards),
            "fanout": self.fanout,
        }


class ScatterStats:
    """Thread-safe counters over every plan the planner produced."""

    def __init__(self, num_shards: int) -> None:
        self._lock = threading.Lock()
        self.num_shards = num_shards
        self.queries = 0
        self.scattered_total = 0
        self.skipped_total = 0
        self.fallbacks = 0
        self.zero_target_queries = 0
        self.exact_routed = 0
        self.skip_reasons: dict[str, int] = {}
        self.per_shard_scattered = [0] * num_shards
        self.per_shard_skipped = [0] * num_shards

    def observe(self, plan: ScatterPlan) -> None:
        with self._lock:
            self.queries += 1
            self.scattered_total += len(plan.targets)
            self.skipped_total += len(plan.skipped)
            self.fallbacks += len(plan.fallbacks)
            if not plan.targets:
                self.zero_target_queries += 1
            if plan.exact_shards:
                self.exact_routed += 1
            for reason in plan.skipped.values():
                self.skip_reasons[reason] = self.skip_reasons.get(reason, 0) + 1
            for shard in plan.targets:
                self.per_shard_scattered[shard] += 1
            for shard in plan.skipped:
                self.per_shard_skipped[shard] += 1

    @property
    def mean_fanout(self) -> float:
        """Average number of shards scattered to per planned query."""
        return self.scattered_total / self.queries if self.queries else 0.0

    @property
    def skip_rate(self) -> float:
        """Fraction of (query, shard) pairs the planner proved skippable."""
        pairs = self.queries * self.num_shards
        return self.skipped_total / pairs if pairs else 0.0

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "queries": self.queries,
                "mean_fanout": round(self.mean_fanout, 4),
                "skip_rate": round(self.skip_rate, 4),
                "scattered_total": self.scattered_total,
                "skipped_total": self.skipped_total,
                "summary_fallbacks": self.fallbacks,
                "zero_target_queries": self.zero_target_queries,
                "exact_routed_queries": self.exact_routed,
                "skip_reasons": dict(self.skip_reasons),
                "per_shard_scattered": list(self.per_shard_scattered),
                "per_shard_skipped": list(self.per_shard_skipped),
            }

    def metrics_samples(self):
        """These counters as registry :class:`~repro.obs.metrics.Sample`\\ s.

        The unified telemetry registry scrapes this at ``/metrics`` time, so
        the scatter planner shows up in the Prometheus text exposition with
        the same numbers the JSON ``scatter`` section reports.
        """
        from repro.obs.metrics import COUNTER, GAUGE, Sample

        stats = self.to_dict()
        yield Sample("gc_scatter_queries_total", COUNTER, float(stats["queries"]),
                     help="Queries planned by the scatter planner")
        yield Sample("gc_scatter_mean_fanout", GAUGE, float(stats["mean_fanout"]),
                     help="Mean shards scattered to per query")
        yield Sample("gc_scatter_skip_rate", GAUGE, float(stats["skip_rate"]),
                     help="Fraction of shard sub-queries pruned by summaries")
        yield Sample("gc_scatter_summary_fallbacks_total", COUNTER,
                     float(stats["summary_fallbacks"]),
                     help="Plans that fell back to full scatter on an unusable summary")
        for shard, scattered in enumerate(stats["per_shard_scattered"]):
            yield Sample("gc_scatter_shard_scattered_total", COUNTER,
                         float(scattered),
                         help="Sub-queries scattered to each shard",
                         labels={"shard": str(shard)})
        for shard, skipped in enumerate(stats["per_shard_skipped"]):
            yield Sample("gc_scatter_shard_skipped_total", COUNTER,
                         float(skipped),
                         help="Sub-queries pruned away from each shard",
                         labels={"shard": str(shard)})


class ScatterPlanner:
    """Summary-driven scatter planning over a fixed set of shards."""

    def __init__(
        self,
        summaries: list[ShardSummary],
        mode: str = "full",
        extractor: FeatureExtractor | None = None,
    ) -> None:
        if mode not in SCATTER_MODES:
            raise ConfigurationError(
                f"unknown scatter mode {mode!r}; available: {', '.join(SCATTER_MODES)}"
            )
        if not summaries:
            raise ConfigurationError("the planner needs at least one shard summary")
        self.mode = mode
        self.summaries = list(summaries)
        #: The feature family queries are screened with; must be the family
        #: the summaries were built with (soundness depends on it).
        self.extractor = extractor
        self.stats = ScatterStats(len(summaries))

    @property
    def num_shards(self) -> int:
        return len(self.summaries)

    def plan(self, query: Query, record: bool = True) -> ScatterPlan:
        """Plan one query; with ``record=False`` the stats are untouched
        (used for admission-time cost probes that precede the real run)."""
        started = time.perf_counter()
        plan = ScatterPlan(query_id=query.query_id)
        if self.mode == "full" or self.extractor is None:
            plan.targets = list(range(self.num_shards))
        else:
            features = self.extractor.extract(query.graph)
            key = resident_key(query.graph, query.query_type)
            for summary in self.summaries:
                if not summary.usable():
                    # stale/corrupt summary: never trust it to prune — scatter
                    # to the shard and surface the degradation in the stats
                    plan.targets.append(summary.shard)
                    plan.fallbacks.append(summary.shard)
                    continue
                reason = summary.prune_reason(query, features)
                if reason is not None:
                    plan.skipped[summary.shard] = reason
                    continue
                plan.targets.append(summary.shard)
                if summary.holds_exact(key):
                    plan.exact_shards.append(summary.shard)
        plan.plan_seconds = time.perf_counter() - started
        if record:
            self.stats.observe(plan)
        return plan

    # ------------------------------------------------------------------ #
    # cost model (shard-aware admission)
    # ------------------------------------------------------------------ #
    @staticmethod
    def estimate_cost(candidates: int, per_test_cost: float) -> float:
        """Estimated verification seconds for ``candidates`` planned tests.

        Deliberately the simplest sound model — monotone non-decreasing in
        the candidate count and in the per-test cost (the property suite
        pins this down), never negative.
        """
        return max(0, candidates) * max(per_test_cost, 0.0)

    def shard_costs(
        self, plan: ScatterPlan, per_test_costs: list[float],
        planned_candidates: list[int],
    ) -> dict[int, float]:
        """Per-targeted-shard estimated cost for one planned query.

        ``planned_candidates[s]`` is the caller's candidate-count estimate
        for shard ``s`` (observed mean tests per query, or the partition
        size before any observation); a shard expected to answer from its
        cache (exact resident key) costs ~nothing.
        """
        costs: dict[int, float] = {}
        for shard in plan.targets:
            if shard in plan.exact_shards:
                costs[shard] = 0.0
                continue
            costs[shard] = self.estimate_cost(
                planned_candidates[shard], per_test_costs[shard]
            )
        return costs
