"""ShardRouter: deterministic partitioning of a dataset across shards.

The router owns the single invariant the sharded engine's correctness rests
on: **every dataset graph is routed to exactly one shard**.  Because shards
hold disjoint partitions whose union is the full dataset, the union of
per-shard answer sets is exactly the unsharded answer set — no dedup, no
double counting — which is what the differential harness locks in.

Three routing policies (named in :data:`repro.runtime.config.SHARD_POLICIES`):

* ``hash``          — a *stable* hash of the graph id (``zlib.crc32`` over its
  string form; Python's built-in ``hash`` is salted per process and would not
  reproduce across runs);
* ``round-robin``   — dataset position modulo the shard count;
* ``size-balanced`` — greedy largest-first (LPT) balancing on graph size
  (vertices + edges), so shards carry comparable verification work even when
  graph sizes are skewed.

Rebalancing (:meth:`ShardRouter.rebalance`) recomputes the assignment under a
new policy and reports exactly which graphs moved; the assignment stays total
and disjoint throughout — the property suite checks both.
"""

from __future__ import annotations

import zlib

from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.index.base import GraphId
from repro.runtime.config import SHARD_POLICIES


def stable_graph_id_hash(graph_id: GraphId) -> int:
    """A process-independent hash of a graph id (int or str).

    ``zlib.crc32`` over the id's string form: deterministic across runs and
    platforms, unlike the salted built-in ``hash`` for strings.
    """
    return zlib.crc32(str(graph_id).encode("utf-8"))


class ShardRouter:
    """Partitions a dataset across ``num_shards`` disjoint shards."""

    def __init__(
        self,
        dataset: list[Graph],
        num_shards: int,
        policy: str = "hash",
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if not dataset:
            raise ConfigurationError("the dataset must contain at least one graph")
        if num_shards > len(dataset):
            raise ConfigurationError(
                f"num_shards ({num_shards}) must not exceed the dataset size "
                f"({len(dataset)}): every shard needs at least one graph"
            )
        self.num_shards = num_shards
        self.dataset = list(dataset)
        self._ids = [
            graph.graph_id if graph.graph_id is not None else position
            for position, graph in enumerate(self.dataset)
        ]
        if len(set(self._ids)) != len(self._ids):
            raise ConfigurationError("dataset graph ids must be unique to shard")
        self.policy = ""
        self._assignment: dict[GraphId, int] = {}
        self.rebalance(policy)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def shard_of(self, graph_id: GraphId) -> int:
        """The shard index the graph is routed to."""
        try:
            return self._assignment[graph_id]
        except KeyError:
            raise ConfigurationError(
                f"graph id {graph_id!r} is not part of the routed dataset"
            ) from None

    def assignment(self) -> dict[GraphId, int]:
        """A copy of the full graph-id → shard-index assignment."""
        return dict(self._assignment)

    def partitions(self) -> list[list[Graph]]:
        """Per-shard graph lists (dataset order preserved within a shard)."""
        parts: list[list[Graph]] = [[] for _ in range(self.num_shards)]
        for graph, graph_id in zip(self.dataset, self._ids):
            parts[self._assignment[graph_id]].append(graph)
        return parts

    def shard_sizes(self) -> list[int]:
        """Number of graphs per shard."""
        sizes = [0] * self.num_shards
        for shard in self._assignment.values():
            sizes[shard] += 1
        return sizes

    # ------------------------------------------------------------------ #
    # rebalancing
    # ------------------------------------------------------------------ #
    def rebalance(
        self, policy: str, dataset: list[Graph] | None = None
    ) -> dict[GraphId, tuple[int, int]]:
        """Recompute the assignment under ``policy``.

        Returns the *move plan*: graph id → ``(old_shard, new_shard)`` for
        every graph whose shard changed.  The new assignment is total (every
        graph assigned) and disjoint (exactly one shard per graph) — same as
        the old one; on the first call (from ``__init__``) the plan maps from
        a virtual shard ``-1``; graphs no longer present map to shard ``-1``.

        ``dataset`` re-routes a *changed* dataset (graphs added or removed
        since construction).  A dataset that shrank below the shard count is
        rejected up front with a :class:`ConfigurationError` — the previous
        assignment stays fully intact, so callers can catch the error and
        retire shards explicitly instead of ending up with a half-applied
        plan and empty shards.
        """
        if policy not in SHARD_POLICIES:
            raise ConfigurationError(
                f"unknown shard policy {policy!r}; available: {', '.join(SHARD_POLICIES)}"
            )
        if dataset is not None:
            dataset = list(dataset)
            if not dataset:
                raise ConfigurationError(
                    "cannot rebalance onto an empty dataset: every shard "
                    "needs at least one graph"
                )
            if self.num_shards > len(dataset):
                raise ConfigurationError(
                    f"cannot rebalance: the dataset shrank to {len(dataset)} "
                    f"graph(s), below the {self.num_shards} configured shards "
                    "— every shard needs at least one graph; reduce "
                    "num_shards (rebuild the router) or keep more graphs"
                )
            ids = [
                graph.graph_id if graph.graph_id is not None else position
                for position, graph in enumerate(dataset)
            ]
            if len(set(ids)) != len(ids):
                raise ConfigurationError(
                    "dataset graph ids must be unique to shard"
                )
            self.dataset = dataset
            self._ids = ids
        new_assignment = self._compute_assignment(policy)
        moves = {
            graph_id: (self._assignment.get(graph_id, -1), shard)
            for graph_id, shard in new_assignment.items()
            if self._assignment.get(graph_id, -1) != shard
        }
        for graph_id, old_shard in self._assignment.items():
            if graph_id not in new_assignment:
                moves[graph_id] = (old_shard, -1)
        self._assignment = new_assignment
        self.policy = policy
        return moves

    def _compute_assignment(self, policy: str) -> dict[GraphId, int]:
        if policy == "round-robin":
            return {
                graph_id: position % self.num_shards
                for position, graph_id in enumerate(self._ids)
            }
        if policy == "hash":
            assignment = {
                graph_id: stable_graph_id_hash(graph_id) % self.num_shards
                for graph_id in self._ids
            }
            return self._fill_empty_shards(assignment)
        # size-balanced: LPT — place graphs largest-first on the currently
        # lightest shard (ties broken by shard index, then dataset order, so
        # the assignment is deterministic)
        loads = [0] * self.num_shards
        assignment: dict[GraphId, int] = {}
        weighted = sorted(
            enumerate(zip(self.dataset, self._ids)),
            key=lambda item: (-(item[1][0].num_vertices + item[1][0].num_edges), item[0]),
        )
        for _, (graph, graph_id) in weighted:
            shard = min(range(self.num_shards), key=lambda s: (loads[s], s))
            assignment[graph_id] = shard
            loads[shard] += graph.num_vertices + graph.num_edges
        # zero-weight graphs (empty patterns) all tie-break onto shard 0 —
        # the no-empty-shard invariant needs repairing here too
        return self._fill_empty_shards(assignment)

    def _fill_empty_shards(self, assignment: dict[GraphId, int]) -> dict[GraphId, int]:
        """Ensure no shard is empty (every shard must hold ≥1 graph).

        Hash routing (and size-balanced routing over zero-weight graphs) can
        leave a shard empty on small datasets; donate one graph from the
        currently largest shard to each empty one, walking dataset order so
        the fix is deterministic.
        """
        sizes = [0] * self.num_shards
        for shard in assignment.values():
            sizes[shard] += 1
        for empty in range(self.num_shards):
            if sizes[empty] > 0:
                continue
            donor = max(range(self.num_shards), key=lambda s: (sizes[s], -s))
            for graph_id in self._ids:
                if assignment[graph_id] == donor:
                    assignment[graph_id] = empty
                    sizes[donor] -= 1
                    sizes[empty] += 1
                    break
        return assignment

    def describe(self) -> dict[str, object]:
        """Routing summary for reports and the server's metrics payload."""
        return {
            "num_shards": self.num_shards,
            "policy": self.policy,
            "shard_sizes": self.shard_sizes(),
        }
