"""ShardSummary: a compact, provably-sound sketch of one shard's partition.

NeedleTail (Kim et al.) shows that cheap per-partition density/locality
summaries let a system touch only the partitions that can contribute
answers.  The GC equivalent: every shard publishes

* ``union_features``  — pointwise max of the partition's feature multisets.
  A subgraph query needing more of some feature than the union supplies is
  contained in *no* partition graph (feature monotonicity under subgraph
  containment), so the shard can be skipped.
* ``common_features`` — pointwise min of the partition's multisets.  Every
  partition graph carries at least these counts, so a supergraph query
  providing fewer of some floor feature contains *no* partition graph.
* ``label_set`` plus the vertex/edge size envelope — the same two screens in
  their cheapest form (a query using an unknown label, or falling outside
  the partition's size range in the relevant direction, is unanswerable).
* ``resident_keys``   — the exact-match keys (WL hash, size signature,
  query semantics) of the shard cache's current entries, kept current by the
  cache maintenance path; the planner uses them to spot shards that will
  answer from cache for ~free (cost-based admission) and to route repeated
  queries cheaply.

Summaries are *advisory only in the safe direction*: every screen is a
proof of non-contribution, never of contribution, so pruning with a correct
summary can never drop answers.  Against an *incorrect* summary the planner
defends with a seal: every legitimate mutation re-seals the summary
(:meth:`_reseal`), :meth:`usable` re-checks the seal, and a corrupted or
explicitly stale summary makes the planner fall back to full scatter for
that shard (visible in ``/metrics``) instead of trusting it.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field

from repro.features.base import FeatureExtractor, FeatureKey
from repro.graph.graph import Graph
from repro.query_model import Query, QueryType

#: The exact-match identity of a cached entry, as the cache's own exact
#: screen sees it: WL hash + (vertices, edges) + query semantics.
ResidentKey = tuple[str, tuple[int, int], str]

#: Skip reasons the planner records per pruned shard.
REASON_SIZE = "size-envelope"
REASON_LABEL = "label-gap"
REASON_FEATURES = "feature-gap"
REASON_FLOOR = "feature-floor"


def resident_key(graph: Graph, query_type: QueryType) -> ResidentKey:
    """The exact-match cache key of a (pattern graph, semantics) pair."""
    return (graph.wl_hash(), graph.size_signature(), query_type.value)


@dataclass
class ShardSummary:
    """Everything the planner may safely conclude about one shard."""

    shard: int
    num_graphs: int = 0
    union_features: Counter[FeatureKey] = field(default_factory=Counter)
    common_features: Counter[FeatureKey] = field(default_factory=Counter)
    label_set: frozenset[str] = frozenset()
    min_vertices: int = 0
    max_vertices: int = 0
    min_edges: int = 0
    max_edges: int = 0
    #: Exact-match keys of the shard cache's resident entries.
    resident_keys: frozenset[ResidentKey] = frozenset()
    #: Explicit staleness flag (set by operators/tests, or by a failed
    #: refresh); a stale summary is never trusted for pruning.
    stale: bool = False
    #: Integrity seal over the pruning-relevant partition content; *only*
    #: :meth:`build`/:meth:`refresh` re-seal it, so out-of-band mutation
    #: (corruption) stays detected even while resident keys keep churning.
    #: Seals are process-local (built on Python ``hash``) — they are never
    #: persisted.
    partition_seal: int = 0
    #: Integrity seal over the resident cache keys (re-sealed by every
    #: legitimate :meth:`set_resident_keys`).
    resident_seal: int = 0
    #: Serialises every *legitimate* mutation against :meth:`usable`, so a
    #: seal check never observes new content with an old seal (which would
    #: misreport healthy churn as corruption).  Out-of-band corruption, by
    #: definition, bypasses it — and stays detected.
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # construction / maintenance
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, shard: int, partition: list[Graph], extractor: FeatureExtractor
    ) -> "ShardSummary":
        """Summarise a partition with ``extractor`` (the planner's family)."""
        multisets = [extractor.extract(graph) for graph in partition]
        labels: set[str] = set()
        for graph in partition:
            labels.update(graph.label_counts())
        summary = cls(
            shard=shard,
            num_graphs=len(partition),
            union_features=FeatureExtractor.multiset_union(multisets),
            common_features=FeatureExtractor.multiset_common(multisets),
            label_set=frozenset(labels),
            min_vertices=min((g.num_vertices for g in partition), default=0),
            max_vertices=max((g.num_vertices for g in partition), default=0),
            min_edges=min((g.num_edges for g in partition), default=0),
            max_edges=max((g.num_edges for g in partition), default=0),
        )
        summary._reseal()
        return summary

    def set_resident_keys(self, keys: frozenset[ResidentKey]) -> None:
        """Replace the resident cache keys (a legitimate mutation: re-seals
        the resident half only — partition corruption stays detected)."""
        with self._lock:
            self.resident_keys = frozenset(keys)
            self.resident_seal = self._fingerprint_resident()

    def mark_stale(self) -> None:
        """Flag the summary as untrustworthy until the next rebuild."""
        self.stale = True

    def refresh(self, partition: list[Graph], extractor: FeatureExtractor) -> None:
        """Rebuild the partition-level vectors in place (clears staleness)."""
        rebuilt = ShardSummary.build(self.shard, partition, extractor)
        with self._lock:
            self.num_graphs = rebuilt.num_graphs
            self.union_features = rebuilt.union_features
            self.common_features = rebuilt.common_features
            self.label_set = rebuilt.label_set
            self.min_vertices = rebuilt.min_vertices
            self.max_vertices = rebuilt.max_vertices
            self.min_edges = rebuilt.min_edges
            self.max_edges = rebuilt.max_edges
            self.stale = False
            self.partition_seal = self._fingerprint_partition()
            self.resident_seal = self._fingerprint_resident()

    def _fingerprint_partition(self) -> int:
        # order-independent XOR over the vector items: O(n) with no sorting
        # or string building — usable() runs this per shard per planned query
        token = 0
        for item in self.union_features.items():
            token ^= hash(("union", item))
        for item in self.common_features.items():
            token ^= hash(("common", item))
        return hash((
            self.shard,
            self.num_graphs,
            token,
            self.label_set,  # frozenset: hash computed once, then cached
            self.min_vertices, self.max_vertices,
            self.min_edges, self.max_edges,
        ))

    def _fingerprint_resident(self) -> int:
        # frozenset hashes are order-independent and cached on the object,
        # so re-checking the seal is O(1) until the keys are replaced
        return hash(self.resident_keys)

    def _reseal(self) -> None:
        with self._lock:
            self.partition_seal = self._fingerprint_partition()
            self.resident_seal = self._fingerprint_resident()

    def usable(self) -> bool:
        """True when the summary may be trusted to *prune* this shard."""
        if self.stale:
            return False
        with self._lock:
            return (
                self.partition_seal == self._fingerprint_partition()
                and self.resident_seal == self._fingerprint_resident()
            )

    # ------------------------------------------------------------------ #
    # screens
    # ------------------------------------------------------------------ #
    def prune_reason(
        self, query: Query, query_features: Counter[FeatureKey]
    ) -> str | None:
        """Why this shard provably cannot contribute answers (None = it may).

        Every returned reason is a *sound* proof of non-contribution;
        callers must have checked :meth:`usable` first — a stale or corrupt
        summary proves nothing.
        """
        graph = query.graph
        if query.query_type is QueryType.SUBGRAPH:
            # query ⊆ G requires a G at least as large as the query...
            if graph.num_vertices > self.max_vertices or graph.num_edges > self.max_edges:
                return REASON_SIZE
            # ...containing every query label...
            if any(label not in self.label_set for label in graph.label_counts()):
                return REASON_LABEL
            # ...and at least the query's count of every feature.
            if not FeatureExtractor.multiset_contains(self.union_features, query_features):
                return REASON_FEATURES
            return None
        # supergraph: G ⊆ query requires a G no larger than the query...
        if graph.num_vertices < self.min_vertices or graph.num_edges < self.min_edges:
            return REASON_SIZE
        # ...and the query must supply every feature the *whole partition*
        # is floored at (every G carries >= common_features).
        for key, floor in self.common_features.items():
            if query_features.get(key, 0) < floor:
                return REASON_FLOOR
        return None

    def holds_exact(self, key: ResidentKey) -> bool:
        """Whether the shard cache currently holds this exact-match key."""
        return key in self.resident_keys

    def to_dict(self) -> dict:
        """Compact JSON-safe view (for ``/metrics`` and reports)."""
        return {
            "shard": self.shard,
            "num_graphs": self.num_graphs,
            "num_union_features": len(self.union_features),
            "num_common_features": len(self.common_features),
            "num_labels": len(self.label_set),
            "size_envelope": {
                "min_vertices": self.min_vertices,
                "max_vertices": self.max_vertices,
                "min_edges": self.min_edges,
                "max_edges": self.max_edges,
            },
            "resident_keys": len(self.resident_keys),
            "stale": self.stale,
            "usable": self.usable(),
        }
