"""Request batcher: coalesce queued queries into concurrent engine batches.

The serving hot path of the subsystem.  Incoming queries land in a *bounded*
admission queue (backpressure: a full queue rejects the request — the HTTP
layer maps that to 429).  The queue is a priority queue: entries are ordered
by priority band (higher ``priority`` first), earliest deadline first within
a band, FIFO among peers — so under load the dispatcher always spends the
next batch slot on the most urgent work still worth doing.  With
``admission_mode="cost-based"`` admission is
additionally *shard-aware*: each query's scatter plan is priced per shard
(planned candidate count × the shard's observed per-test cost, via
``estimate_shard_costs``) and reserved against a per-shard outstanding-cost
budget, so a skewed workload exhausts — and 429s on — only the hot shard
while queries for the other shards keep flowing.  A single dispatcher
thread pulls the queue and
coalesces up to ``max_batch_size`` queries — waiting at most
``max_delay_seconds`` for stragglers once the first query of a batch is in
hand — then executes the whole batch through
:meth:`GraphCacheSystem.run_queries_concurrent`, so one batch of B queries
overlaps B verification stages instead of serialising them.  Each caller
holds a :class:`~concurrent.futures.Future` that resolves to a
:class:`ServedQuery` when its batch completes.

Dead work is *shed*, never executed: at batch-build time the dispatcher
drops entries whose deadline already expired (their future raises the typed
:class:`~repro.errors.DeadlineExceededError`, the wire ``timeout``/504) and
entries whose waiter gave up (:meth:`RequestBatcher.abandon` — the server's
request-timeout path).  Either way the entry's cost reservation is released
the moment it becomes dead, and both shed reasons are counted in
:class:`BatcherStats`.

Shutdown is graceful by default: ``close(drain=True)`` stops admission,
executes everything already queued, and only then joins the dispatcher —
nothing accepted is ever dropped.  The async ``CacheMaintenanceWorker``
(when configured) keeps running off this critical path exactly as in
library use; batches drain it via ``run_queries_concurrent`` itself.
"""

from __future__ import annotations

import heapq
import itertools
import math
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from typing import TYPE_CHECKING, Union

from repro.api.envelopes import QueryRequest, QueryResponse
from repro.errors import (
    AdmissionRejectedError,
    ConfigurationError,
    DeadlineExceededError,
    ServerClosedError,
)
from repro.obs.logs import get_logger
from repro.query_model import Query
from repro.runtime.config import ADMISSION_MODES
from repro.runtime.report import QueryReport
from repro.runtime.system import GraphCacheSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sharding.system import ShardedGraphCacheSystem

    AnySystem = Union[GraphCacheSystem, "ShardedGraphCacheSystem"]

_STOP = object()

#: Heap key of the stop marker: sorts after every real entry (priorities are
#: finite ints, so ``-priority`` can never reach ``inf``), which is exactly
#: the drain semantics the FIFO queue had — everything admitted before
#: ``close()`` is processed first, then the dispatcher sees the marker.
_STOP_KEY = (math.inf, math.inf, math.inf)

logger = get_logger("server.batcher")


@dataclass
class ServedQuery:
    """What a caller's future resolves to: the report plus serving metadata."""

    report: QueryReport
    #: Seconds the query waited in the admission queue before its batch ran.
    queue_seconds: float
    #: Number of queries coalesced into the batch that served this query.
    batch_size: int

    def to_response(self, request_id: str | int | None = None) -> QueryResponse:
        """The typed response envelope, serving metadata included."""
        return QueryResponse.from_report(
            self.report,
            queue_seconds=self.queue_seconds,
            batch_size=self.batch_size,
            request_id=request_id,
        )


@dataclass
class _Pending:
    query: Query
    future: Future
    enqueued_at: float
    #: Per-shard estimated cost (seconds) reserved at admission under
    #: cost-based mode; released when the query's batch completes — or the
    #: moment the entry goes dead (deadline expiry / abandonment).
    costs: dict[int, float] | None = None
    #: Absolute monotonic deadline (None = no deadline).
    deadline: float | None = None
    #: The caller's relative budget in seconds (for the shed error message).
    deadline_budget: float | None = None
    priority: int = 0
    request_id: str | int | None = None
    #: Set by :meth:`RequestBatcher.abandon`: the waiter gave up, skip this
    #: entry at batch-build time instead of executing dead work.
    abandoned: bool = False


class _PendingQueue:
    """Bounded priority queue of :class:`_Pending` entries (plus ``_STOP``).

    Ordering: priority band descending, earliest deadline first within a
    band (no deadline sorts last), submission order among peers.  The stop
    marker is exempt from the bound and sorts after everything, preserving
    the drain-first shutdown contract of the FIFO queue this replaces.
    Raises the :mod:`queue` module's ``Full``/``Empty`` so call sites keep
    their stdlib error handling.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._heap: list[tuple[tuple, object]] = []
        self._size = 0  # real entries only; _STOP is not counted
        self._seq = itertools.count()
        self._mutex = threading.Lock()
        self._not_empty = threading.Condition(self._mutex)

    def _key(self, item) -> tuple:
        if item is _STOP:
            return _STOP_KEY
        deadline = item.deadline if item.deadline is not None else math.inf
        return (-item.priority, deadline, next(self._seq))

    def put_nowait(self, item) -> None:
        with self._mutex:
            if item is not _STOP and self._size >= self.maxsize:
                raise queue.Full
            heapq.heappush(self._heap, (self._key(item), item))
            if item is not _STOP:
                self._size += 1
            self._not_empty.notify()

    put = put_nowait  # close() never blocks: the stop marker is unbounded

    def _pop(self):
        _, item = heapq.heappop(self._heap)
        if item is not _STOP:
            self._size -= 1
        return item

    def get(self, timeout: float | None = None):
        with self._not_empty:
            if timeout is None:
                while not self._heap:
                    self._not_empty.wait()
            else:
                limit = time.monotonic() + timeout
                while not self._heap:
                    remaining = limit - time.monotonic()
                    if remaining <= 0:
                        raise queue.Empty
                    self._not_empty.wait(remaining)
            return self._pop()

    def get_nowait(self):
        with self._mutex:
            if not self._heap:
                raise queue.Empty
            return self._pop()

    def qsize(self) -> int:
        with self._mutex:
            return self._size


@dataclass
class BatcherStats:
    """Counters the ``/stats`` endpoint exposes (one snapshot per call)."""

    submitted: int = 0
    rejected: int = 0
    #: Rejections charged to a specific shard's cost budget (a subset of
    #: ``rejected``) — nonzero means shard-aware backpressure engaged.
    rejected_cost: int = 0
    served: int = 0
    failed: int = 0
    #: Admitted entries dropped at batch-build time because their deadline
    #: expired while queued (future raises ``DeadlineExceededError``).
    shed_expired: int = 0
    #: Admitted entries dropped because the waiter abandoned them (the
    #: server's request-timeout path): no zombie execution, no held cost.
    shed_abandoned: int = 0
    batches: int = 0
    largest_batch: int = 0
    queue_depth: int = 0
    admission_mode: str = "queue-depth"
    #: Outstanding estimated cost (seconds) reserved per shard right now.
    shard_outstanding: dict = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return (self.served + self.failed) / self.batches if self.batches else 0.0

    @property
    def shed(self) -> int:
        """Total dead work dropped before execution, for either reason."""
        return self.shed_expired + self.shed_abandoned

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "rejected_cost": self.rejected_cost,
            "served": self.served,
            "failed": self.failed,
            "shed": self.shed,
            "shed_expired": self.shed_expired,
            "shed_abandoned": self.shed_abandoned,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "queue_depth": self.queue_depth,
            "admission_mode": self.admission_mode,
            "shard_outstanding_seconds": {
                str(shard): round(cost, 6)
                for shard, cost in sorted(self.shard_outstanding.items())
            },
        }


class RequestBatcher:
    """Bounded admission queue + batch dispatcher over one system.

    ``system`` is anything exposing ``run_queries_concurrent`` with the
    :class:`GraphCacheSystem` contract — the single-system engine or a
    :class:`~repro.sharding.system.ShardedGraphCacheSystem`; batches scatter
    across shards inside the system, invisibly to the batcher.
    """

    def __init__(
        self,
        system: "AnySystem",
        max_batch_size: int = 4,
        max_delay_seconds: float = 0.005,
        max_queue_depth: int = 64,
        batch_workers: int | None = None,
        admission_mode: str = "queue-depth",
        max_shard_cost_seconds: float = 0.25,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be at least 1")
        if max_delay_seconds < 0:
            raise ConfigurationError("max_delay_seconds must be non-negative")
        if max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be at least 1")
        if batch_workers is not None and batch_workers < 1:
            raise ConfigurationError("batch_workers must be at least 1 or None")
        if admission_mode not in ADMISSION_MODES:
            raise ConfigurationError(
                f"unknown admission_mode {admission_mode!r}; "
                f"available: {', '.join(ADMISSION_MODES)}"
            )
        if max_shard_cost_seconds <= 0:
            raise ConfigurationError("max_shard_cost_seconds must be positive")
        self.system = system
        self.max_batch_size = max_batch_size
        self.max_delay_seconds = max_delay_seconds
        self.batch_workers = batch_workers or max_batch_size
        self.admission_mode = admission_mode
        #: Per-shard budget of outstanding estimated verification seconds;
        #: a query whose plan touches a shard over budget is rejected while
        #: queries for the other shards keep flowing.
        self.max_shard_cost_seconds = max_shard_cost_seconds
        self._queue = _PendingQueue(maxsize=max_queue_depth)
        self._stats = BatcherStats(admission_mode=admission_mode)
        self._stats_lock = threading.Lock()
        #: Estimated cost (seconds) reserved per shard for queries admitted
        #: but not yet completed; guarded by ``_stats_lock``.
        self._outstanding: dict[int, float] = {}
        #: Serialises the closed-check + enqueue in :meth:`submit` against
        #: :meth:`close` setting the flag, so the stop marker is strictly the
        #: last item ever queued and no admitted future can be orphaned.
        self._admission_lock = threading.Lock()
        self._closed = False
        self._drain_on_close = True
        self._thread = threading.Thread(
            target=self._run, name="gc-request-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        query: Query | QueryRequest,
        deadline_seconds: float | None = None,
        priority: int | None = None,
    ) -> Future:
        """Enqueue one query; the future resolves to a :class:`ServedQuery`.

        Accepts an executable :class:`Query` or a
        :class:`~repro.api.envelopes.QueryRequest` envelope (the server's
        native currency), which is unwrapped here; an envelope's own
        ``deadline_seconds``/``priority`` fields apply unless the keyword
        overrides them.  A deadline starts ticking now — expire while queued
        and the dispatcher sheds the entry (future raises
        :class:`DeadlineExceededError`) instead of executing it.  Raises
        :class:`AdmissionRejectedError` when the bounded queue is full, or —
        in cost-based mode — when a shard the query's scatter plan targets
        has exhausted its outstanding-cost budget (the error then names the
        hot shard); :class:`ServerClosedError` once draining started.
        """
        request_id: str | int | None = None
        if isinstance(query, QueryRequest):
            if deadline_seconds is None:
                deadline_seconds = query.deadline_seconds
            if priority is None:
                priority = query.priority
            request_id = query.request_id
            query = query.to_query()
        now = time.monotonic()
        pending = _Pending(
            query=query,
            future=Future(),
            enqueued_at=now,
            deadline=now + deadline_seconds if deadline_seconds is not None else None,
            deadline_budget=deadline_seconds,
            priority=priority or 0,
            request_id=request_id,
        )
        # lets abandon() find the queue entry behind the future it hands out
        pending.future._gc_pending = pending
        if self.admission_mode == "cost-based":
            pending.costs = self._reserve_costs(query)
        with self._admission_lock:
            if self._closed:
                self._release_costs(pending)
                raise ServerClosedError("batcher is shut down; no new queries accepted")
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                self._release_costs(pending)
                with self._stats_lock:
                    self._stats.rejected += 1
                raise AdmissionRejectedError(self._queue.maxsize) from None
        with self._stats_lock:
            self._stats.submitted += 1
        return pending.future

    # ------------------------------------------------------------------ #
    # cost-based shard-aware admission
    # ------------------------------------------------------------------ #
    def _reserve_costs(self, query: Query) -> dict[int, float]:
        """Estimate and reserve per-shard cost, rejecting on a hot shard.

        A shard with *nothing* outstanding always admits (no starvation when
        one query alone exceeds the budget); beyond that, outstanding + new
        must stay within ``max_shard_cost_seconds`` per shard.
        """
        costs = self.system.estimate_shard_costs(query)
        # an unsharded system prices itself as pseudo-shard 0; rejections
        # then must not name a shard the operator could go looking for
        sharded = getattr(self.system, "shards", None) is not None
        with self._stats_lock:
            for shard, cost in sorted(costs.items()):
                outstanding = self._outstanding.get(shard, 0.0)
                if outstanding > 0.0 and outstanding + cost > self.max_shard_cost_seconds:
                    self._stats.rejected += 1
                    self._stats.rejected_cost += 1
                    raise AdmissionRejectedError(
                        self._queue.qsize(),
                        shard=shard if sharded else None,
                        estimated_cost_seconds=cost,
                    )
            for shard, cost in costs.items():
                self._outstanding[shard] = self._outstanding.get(shard, 0.0) + cost
        return costs

    def _release_costs(self, pending: _Pending) -> None:
        """Return a dead/completed query's reserved cost to its shards.

        Idempotent and race-free: the costs are swapped out under the stats
        lock, so a concurrent second release (abandon() racing the
        dispatcher) can never double-credit a shard.
        """
        with self._stats_lock:
            costs, pending.costs = pending.costs, None
            if not costs:
                return
            for shard, cost in costs.items():
                remaining = self._outstanding.get(shard, 0.0) - cost
                if remaining <= 1e-12:
                    self._outstanding.pop(shard, None)
                else:
                    self._outstanding[shard] = remaining

    # ------------------------------------------------------------------ #
    # dead-work shedding
    # ------------------------------------------------------------------ #
    def abandon(self, future: Future, request_id: str | int | None = None) -> bool:
        """Mark a submitted future's queue entry dead: its waiter gave up.

        The server's request-timeout path calls this after ``future.result``
        times out.  The entry's cost reservation is released *immediately*
        (no zombie holding shard budget until its batch finishes) and the
        dispatcher skips the entry at batch-build time instead of executing
        it.  A done-callback keeps the future observed: should the entry
        slip into a batch anyway (already coalesced when abandoned) a later
        pipeline exception is logged with the request id rather than lost.
        Returns False for futures this batcher didn't issue.
        """
        pending = getattr(future, "_gc_pending", None)
        if pending is None:
            return False
        pending.abandoned = True
        self._release_costs(pending)
        who = request_id if request_id is not None else pending.request_id
        label = repr(who) if who is not None else "<no request id>"

        def _observe(done: Future) -> None:
            if done.cancelled():
                logger.debug("abandoned query %s shed before execution", label)
                return
            exc = done.exception()
            if exc is None:
                logger.debug("abandoned query %s completed after its waiter "
                             "timed out; result discarded", label)
            elif isinstance(exc, DeadlineExceededError):
                logger.debug("abandoned query %s shed on deadline expiry", label)
            else:
                logger.warning("abandoned query %s failed later in the "
                               "pipeline: %s: %s", label, type(exc).__name__, exc)

        future.add_done_callback(_observe)
        return True

    def _shed(self, pending: _Pending) -> bool:
        """Drop a dead queue entry (dispatcher thread only); True if shed."""
        if pending.abandoned:
            self._release_costs(pending)
            pending.future.cancel()
            with self._stats_lock:
                self._stats.shed_abandoned += 1
            return True
        if pending.deadline is not None and time.monotonic() >= pending.deadline:
            self._release_costs(pending)
            pending.future.set_exception(DeadlineExceededError(
                "query deadline expired in the admission queue; "
                "shed before execution",
                deadline_seconds=pending.deadline_budget,
            ))
            with self._stats_lock:
                self._stats.shed_expired += 1
            return True
        return False

    def stats(self) -> BatcherStats:
        """A point-in-time copy of the serving counters."""
        with self._stats_lock:
            snapshot = BatcherStats(**{
                name: getattr(self._stats, name)
                for name in ("submitted", "rejected", "rejected_cost", "served",
                             "failed", "shed_expired", "shed_abandoned",
                             "batches", "largest_batch")
            })
            snapshot.shard_outstanding = dict(self._outstanding)
        snapshot.admission_mode = self.admission_mode
        snapshot.queue_depth = self._queue.qsize()
        return snapshot

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True) -> None:
        """Stop admission; with ``drain`` execute everything queued first."""
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
            self._drain_on_close = drain
            self._queue.put(_STOP)  # unblocks the dispatcher even when idle
        self._thread.join()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        stopping = False
        while not stopping:
            head = self._queue.get()
            if head is _STOP:
                break
            if self._closed and not self._drain_on_close:
                # closing without drain: refuse instead of executing (the
                # stop marker sorts behind these, so check the flag)
                self._release_costs(head)
                head.future.set_exception(
                    ServerClosedError("batcher shut down before this query ran")
                )
                continue
            if self._shed(head):
                continue
            batch = [head]
            deadline = time.monotonic() + self.max_delay_seconds
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    item = (
                        self._queue.get(timeout=remaining)
                        if remaining > 0
                        else self._queue.get_nowait()
                    )
                except queue.Empty:
                    break
                if item is _STOP:
                    stopping = True
                    break
                if self._shed(item):
                    continue
                batch.append(item)
            self._execute(batch)
        # the admission lock makes _STOP the last item ever queued, so once
        # the loop exits (with drain: after executing everything admitted;
        # without: after refusing it) the queue is empty and we just return

    def _execute(self, batch: list[_Pending]) -> None:
        started = time.monotonic()
        try:
            reports = self.system.run_queries_concurrent(
                [pending.query for pending in batch],
                max_workers=min(len(batch), self.batch_workers),
            )
        except Exception as exc:  # propagate to every caller in the batch
            logger.error("batch of %d failed: %s: %s",
                         len(batch), type(exc).__name__, exc)
            for pending in batch:
                self._release_costs(pending)
                pending.future.set_exception(exc)
            with self._stats_lock:
                self._stats.batches += 1
                self._stats.failed += len(batch)
                self._stats.largest_batch = max(self._stats.largest_batch, len(batch))
            return
        for pending, report in zip(batch, reports):
            self._release_costs(pending)
            pending.future.set_result(
                ServedQuery(
                    report=report,
                    queue_seconds=started - pending.enqueued_at,
                    batch_size=len(batch),
                )
            )
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.served += len(batch)
            self._stats.largest_batch = max(self._stats.largest_batch, len(batch))
