"""Request batcher: coalesce queued queries into concurrent engine batches.

The serving hot path of the subsystem.  Incoming queries land in a *bounded*
admission queue (backpressure: a full queue rejects the request — the HTTP
layer maps that to 429).  A single dispatcher thread pulls the queue and
coalesces up to ``max_batch_size`` queries — waiting at most
``max_delay_seconds`` for stragglers once the first query of a batch is in
hand — then executes the whole batch through
:meth:`GraphCacheSystem.run_queries_concurrent`, so one batch of B queries
overlaps B verification stages instead of serialising them.  Each caller
holds a :class:`~concurrent.futures.Future` that resolves to a
:class:`ServedQuery` when its batch completes.

Shutdown is graceful by default: ``close(drain=True)`` stops admission,
executes everything already queued, and only then joins the dispatcher —
nothing accepted is ever dropped.  The async ``CacheMaintenanceWorker``
(when configured) keeps running off this critical path exactly as in
library use; batches drain it via ``run_queries_concurrent`` itself.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

from typing import TYPE_CHECKING, Union

from repro.errors import AdmissionRejectedError, ConfigurationError, ServerClosedError
from repro.query_model import Query
from repro.runtime.report import QueryReport
from repro.runtime.system import GraphCacheSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sharding.system import ShardedGraphCacheSystem

    AnySystem = Union[GraphCacheSystem, "ShardedGraphCacheSystem"]

_STOP = object()


@dataclass
class ServedQuery:
    """What a caller's future resolves to: the report plus serving metadata."""

    report: QueryReport
    #: Seconds the query waited in the admission queue before its batch ran.
    queue_seconds: float
    #: Number of queries coalesced into the batch that served this query.
    batch_size: int


@dataclass
class _Pending:
    query: Query
    future: Future
    enqueued_at: float


@dataclass
class BatcherStats:
    """Counters the ``/stats`` endpoint exposes (one snapshot per call)."""

    submitted: int = 0
    rejected: int = 0
    served: int = 0
    failed: int = 0
    batches: int = 0
    largest_batch: int = 0
    queue_depth: int = 0

    @property
    def mean_batch_size(self) -> float:
        return (self.served + self.failed) / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "served": self.served,
            "failed": self.failed,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "queue_depth": self.queue_depth,
        }


class RequestBatcher:
    """Bounded admission queue + batch dispatcher over one system.

    ``system`` is anything exposing ``run_queries_concurrent`` with the
    :class:`GraphCacheSystem` contract — the single-system engine or a
    :class:`~repro.sharding.system.ShardedGraphCacheSystem`; batches scatter
    across shards inside the system, invisibly to the batcher.
    """

    def __init__(
        self,
        system: "AnySystem",
        max_batch_size: int = 4,
        max_delay_seconds: float = 0.005,
        max_queue_depth: int = 64,
        batch_workers: int | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be at least 1")
        if max_delay_seconds < 0:
            raise ConfigurationError("max_delay_seconds must be non-negative")
        if max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be at least 1")
        if batch_workers is not None and batch_workers < 1:
            raise ConfigurationError("batch_workers must be at least 1 or None")
        self.system = system
        self.max_batch_size = max_batch_size
        self.max_delay_seconds = max_delay_seconds
        self.batch_workers = batch_workers or max_batch_size
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue_depth)
        self._stats = BatcherStats()
        self._stats_lock = threading.Lock()
        #: Serialises the closed-check + enqueue in :meth:`submit` against
        #: :meth:`close` setting the flag, so the stop marker is strictly the
        #: last item ever queued and no admitted future can be orphaned.
        self._admission_lock = threading.Lock()
        self._closed = False
        self._drain_on_close = True
        self._thread = threading.Thread(
            target=self._run, name="gc-request-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit(self, query: Query) -> Future:
        """Enqueue one query; the future resolves to a :class:`ServedQuery`.

        Raises :class:`AdmissionRejectedError` when the bounded queue is full
        (backpressure) and :class:`ServerClosedError` once draining started.
        """
        pending = _Pending(query=query, future=Future(), enqueued_at=time.monotonic())
        with self._admission_lock:
            if self._closed:
                raise ServerClosedError("batcher is shut down; no new queries accepted")
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                with self._stats_lock:
                    self._stats.rejected += 1
                raise AdmissionRejectedError(self._queue.maxsize) from None
        with self._stats_lock:
            self._stats.submitted += 1
        return pending.future

    def stats(self) -> BatcherStats:
        """A point-in-time copy of the serving counters."""
        with self._stats_lock:
            snapshot = BatcherStats(**{
                field: getattr(self._stats, field)
                for field in ("submitted", "rejected", "served", "failed",
                              "batches", "largest_batch")
            })
        snapshot.queue_depth = self._queue.qsize()
        return snapshot

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True) -> None:
        """Stop admission; with ``drain`` execute everything queued first."""
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
            self._drain_on_close = drain
            self._queue.put(_STOP)  # unblocks the dispatcher even when idle
        self._thread.join()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        stopping = False
        while not stopping:
            head = self._queue.get()
            if head is _STOP:
                break
            if self._closed and not self._drain_on_close:
                # closing without drain: refuse instead of executing (the
                # stop marker is FIFO-queued behind these, so check the flag)
                head.future.set_exception(
                    ServerClosedError("batcher shut down before this query ran")
                )
                continue
            batch = [head]
            deadline = time.monotonic() + self.max_delay_seconds
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    item = (
                        self._queue.get(timeout=remaining)
                        if remaining > 0
                        else self._queue.get_nowait()
                    )
                except queue.Empty:
                    break
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)
            self._execute(batch)
        # the admission lock makes _STOP the last item ever queued, so once
        # the loop exits (with drain: after executing everything admitted;
        # without: after refusing it) the queue is empty and we just return

    def _execute(self, batch: list[_Pending]) -> None:
        started = time.monotonic()
        try:
            reports = self.system.run_queries_concurrent(
                [pending.query for pending in batch],
                max_workers=min(len(batch), self.batch_workers),
            )
        except Exception as exc:  # propagate to every caller in the batch
            for pending in batch:
                pending.future.set_exception(exc)
            with self._stats_lock:
                self._stats.batches += 1
                self._stats.failed += len(batch)
                self._stats.largest_batch = max(self._stats.largest_batch, len(batch))
            return
        for pending, report in zip(batch, reports):
            pending.future.set_result(
                ServedQuery(
                    report=report,
                    queue_seconds=started - pending.enqueued_at,
                    batch_size=len(batch),
                )
            )
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.served += len(batch)
            self._stats.largest_batch = max(self._stats.largest_batch, len(batch))
