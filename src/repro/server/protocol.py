"""JSON wire protocol of the query server.

One request = one graph query::

    {"graph": {... Graph.to_dict() ...}, "query_type": "subgraph",
     "metadata": {...}}

One response = the answer set plus the observability payload the paper's
demonstrator surfaces per query (hits, per-stage latency, tests saved)::

    {"answer": [...], "query_id": 7, "query_type": "subgraph",
     "hits": {"exact": false, "sub": 2, "super": 0},
     "tests": {"dataset": 3, "baseline": 11, "probe": 4},
     "stage_seconds": {"filter": ..., "probe": ..., ...},
     "total_seconds": ...,
     "server": {"queue_seconds": ..., "batch_size": ...}}

Everything is JSON-safe (graph ids may be ints or strings; infinities are
mapped to ``None`` by :func:`repro.cache.statistics.json_safe`).
"""

from __future__ import annotations

from repro.cache.statistics import json_safe
from repro.errors import ProtocolError
from repro.graph.graph import Graph
from repro.query_model import Query, QueryType
from repro.runtime.report import QueryReport


def query_to_payload(query: Query) -> dict:
    """Serialise a query into the request wire format."""
    return {
        "graph": query.graph.to_dict(),
        "query_type": query.query_type.value,
        "metadata": dict(query.metadata),
    }


def query_from_payload(payload: dict) -> Query:
    """Parse a request payload into a :class:`Query` (fresh query id)."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(payload).__name__}")
    if "graph" not in payload:
        raise ProtocolError("request has no 'graph' field")
    try:
        graph = Graph.from_dict(payload["graph"])
    except Exception as exc:
        raise ProtocolError(f"malformed 'graph' payload: {exc}") from exc
    try:
        query_type = QueryType.parse(payload.get("query_type", "subgraph"))
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    metadata = payload.get("metadata", {})
    if not isinstance(metadata, dict):
        raise ProtocolError("'metadata' must be a JSON object")
    return Query(graph=graph, query_type=query_type, metadata=dict(metadata))


def report_to_payload(
    report: QueryReport,
    queue_seconds: float | None = None,
    batch_size: int | None = None,
) -> dict:
    """Serialise a query report into the response wire format."""
    payload = {
        "answer": sorted(report.answer, key=repr),
        "query_id": report.query.query_id,
        "query_type": report.query.query_type.value,
        "hits": {
            "exact": report.exact_hit_entry is not None,
            "sub": len(report.sub_hit_entries),
            "super": len(report.super_hit_entries),
        },
        "tests": {
            "dataset": report.dataset_tests,
            "baseline": report.baseline_tests,
            "probe": report.probe_tests,
        },
        "stage_seconds": dict(report.stage_seconds),
        "total_seconds": report.total_seconds,
    }
    server: dict = {}
    if queue_seconds is not None:
        server["queue_seconds"] = queue_seconds
    if batch_size is not None:
        server["batch_size"] = batch_size
    if server:
        payload["server"] = server
    return json_safe(payload)


def answer_from_payload(payload: dict) -> set:
    """Extract the answer set from a response payload.

    Graph ids survive JSON as-is for the int/str ids the library uses, so
    the returned set compares equal to an in-process ``report.answer``.
    """
    if not isinstance(payload, dict) or "answer" not in payload:
        raise ProtocolError("response has no 'answer' field")
    return set(payload["answer"])
