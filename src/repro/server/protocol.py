"""JSON wire protocol of the query server (compatibility shim).

The protocol definition now lives in :mod:`repro.api.envelopes` as typed,
versioned envelopes (v2 with v1 auto-upgrade); this module keeps the
original function surface for existing callers.  New code should use
:class:`repro.api.QueryRequest` / :class:`repro.api.QueryResponse` directly.

One v1 request = one graph query::

    {"graph": {... Graph.to_dict() ...}, "query_type": "subgraph",
     "metadata": {...}}

One v1 response = the answer set plus the observability payload::

    {"answer": [...], "query_id": 7, "query_type": "subgraph",
     "hits": {"exact": false, "sub": 2, "super": 0},
     "tests": {"dataset": 3, "baseline": 11, "probe": 4},
     "stage_seconds": {"filter": ..., "probe": ..., ...},
     "total_seconds": ...,
     "server": {"queue_seconds": ..., "batch_size": ...}}

See :mod:`repro.api.envelopes` for the v2 envelope shapes.
"""

from __future__ import annotations

from repro.api.envelopes import (
    QueryRequest,
    QueryResponse,
    parse_request,
    wire_version,
)
from repro.errors import ProtocolError
from repro.query_model import Query
from repro.runtime.report import QueryReport


def query_to_payload(query: Query) -> dict:
    """Serialise a query into the v1 request wire format."""
    return QueryRequest.from_query(query).to_wire(version=1)


def query_from_payload(payload: dict) -> Query:
    """Parse a request payload (either version) into a fresh :class:`Query`."""
    request, _ = parse_request(payload)
    return request.to_query()


def report_to_payload(
    report: QueryReport,
    queue_seconds: float | None = None,
    batch_size: int | None = None,
) -> dict:
    """Serialise a query report into the v1 response wire format."""
    return QueryResponse.from_report(
        report, queue_seconds=queue_seconds, batch_size=batch_size
    ).to_wire(version=1)


def answer_from_payload(payload: dict) -> set:
    """Extract the answer set from a response payload (either version).

    Graph ids survive JSON as-is for the int/str ids the library uses, so
    the returned set compares equal to an in-process ``report.answer``.
    """
    if wire_version(payload) >= 2:
        payload = payload.get("result") or {}
    if not isinstance(payload, dict) or "answer" not in payload:
        raise ProtocolError("response has no 'answer' field")
    return set(payload["answer"])
