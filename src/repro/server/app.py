"""QueryServer: an embedded HTTP serving boundary over a GraphCacheSystem.

Stdlib only (``http.server`` + ``threading``).  The server owns one shared
:class:`GraphCacheSystem` — thread-safe cache, staged pipeline, optional
async maintenance worker — and fronts it with a :class:`RequestBatcher`
(bounded admission queue + batch coalescing).  Endpoints:

* ``POST /query``  — one JSON graph query; replies with the answer set and
  per-stage latency.  ``429`` when the admission queue is full, ``400`` on
  malformed payloads, ``503`` while draining, ``504`` on timeout.
* ``GET /metrics`` — the :class:`StatisticsManager` snapshot (hit rate,
  stage breakdown) plus cache population, JSON.
* ``GET /stats``   — serving-side counters: admission/batching/uptime.
* ``GET /health``  — liveness probe.

Lifecycle: ``start()`` serves on a background thread; ``stop()`` performs a
graceful drain (no accepted query is dropped), persists the cache snapshot
when a ``snapshot_path`` is configured, and closes the system.  A restarted
server pointed at the same snapshot path starts *warm*.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro import __version__
from repro.cache.statistics import json_safe
from repro.errors import AdmissionRejectedError, ProtocolError, ServerClosedError
from repro.graph.graph import Graph
from repro.methods.base import MethodM
from repro.runtime.config import GCConfig
from repro.server.batcher import RequestBatcher
from repro.server.protocol import query_from_payload, report_to_payload
from repro.sharding import make_system


class QueryServer:
    """Embedded graph-query server: batching, backpressure, live metrics.

    With ``config.num_shards > 1`` the server fronts a
    :class:`~repro.sharding.system.ShardedGraphCacheSystem`: queries are
    scattered across the shards and merged transparently, ``/metrics`` grows
    per-shard and ``scatter`` sections (skip rates, fan-out, summary health),
    and cache snapshots fan out to per-shard files.  With
    ``config.scatter_mode="short-circuit"`` the scatter planner prunes shards
    that provably cannot contribute; with
    ``config.admission_mode="cost-based"`` the batcher prices each query per
    shard and backpressures only hot shards.  ``method`` may then be a
    zero-argument factory (each shard builds its own Method M over its
    partition); a built instance only fits one shard.
    """

    def __init__(
        self,
        dataset: list[Graph],
        config: GCConfig | None = None,
        method: MethodM | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 4,
        max_delay_seconds: float = 0.005,
        max_queue_depth: int = 64,
        batch_workers: int | None = None,
        snapshot_path: str | Path | None = None,
        request_timeout_seconds: float = 60.0,
        max_shard_cost_seconds: float = 0.25,
    ) -> None:
        self.system = make_system(dataset, config, method=method)
        try:
            # bind before spawning the batcher thread or touching the
            # snapshot: a failed bind (port in use) must not leak either
            self._httpd = ThreadingHTTPServer((host, port), _make_handler(self))
        except OSError:
            self.system.close()
            raise
        try:
            self.snapshot_path = Path(snapshot_path) if snapshot_path is not None else None
            self.restored_entries = 0
            if self.snapshot_path is not None:
                self.restored_entries = self.system.restore_snapshot(self.snapshot_path)
            self.batcher = RequestBatcher(
                self.system,
                max_batch_size=max_batch_size,
                max_delay_seconds=max_delay_seconds,
                max_queue_depth=max_queue_depth,
                batch_workers=batch_workers,
                admission_mode=self.system.config.admission_mode,
                max_shard_cost_seconds=max_shard_cost_seconds,
            )
        except Exception:
            self._httpd.server_close()
            self.system.close()
            raise
        self.request_timeout_seconds = request_timeout_seconds
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()
        self._stopped = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "QueryServer":
        """Serve on a background thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="gc-query-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: drain the batcher, snapshot, close the system."""
        if self._stopped:
            return
        self._stopped = True
        self.batcher.close(drain=drain)
        if self.snapshot_path is not None:
            self.system.save_snapshot(self.snapshot_path)
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
        self._httpd.server_close()
        self.system.close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # request handling (HTTP-agnostic: returns status + JSON payload)
    # ------------------------------------------------------------------ #
    def serve_query(self, payload: dict) -> tuple[int, dict]:
        """Admit, batch and execute one query payload."""
        try:
            query = query_from_payload(payload)
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        try:
            future = self.batcher.submit(query)
        except AdmissionRejectedError as exc:
            payload = {"error": str(exc), "queue_depth": exc.queue_depth}
            if exc.shard is not None:
                payload["shard"] = exc.shard
            return 429, payload
        except ServerClosedError as exc:
            return 503, {"error": str(exc)}
        try:
            served = future.result(timeout=self.request_timeout_seconds)
        except FutureTimeoutError:
            return 504, {"error": "query timed out in the serving pipeline"}
        except ServerClosedError as exc:
            return 503, {"error": str(exc)}
        except Exception as exc:  # execution error inside the pipeline
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        return 200, report_to_payload(
            served.report,
            queue_seconds=served.queue_seconds,
            batch_size=served.batch_size,
        )

    def metrics(self) -> dict:
        """The ``/metrics`` payload: statistics snapshot + cache population.

        For a sharded system the statistics snapshot already carries the
        per-shard aggregates; a ``shards`` section adds each shard's cache
        population and memory so operators see how load distributes.
        """
        payload = {
            "statistics": self.system.statistics.to_dict(),
            "hit_percentages": json_safe(self.system.hit_percentages()),
        }
        describe_shards = getattr(self.system, "describe_shards", None)
        if describe_shards is not None:
            payload["shards"] = json_safe(describe_shards())
            payload["router"] = json_safe(self.system.router.describe())
            # skip rates, mean fan-out, summary health and per-shard cost
            # signals: what short-circuit scatter + cost-based admission did
            payload["scatter"] = json_safe(self.system.scatter_metrics())
        elif self.system.cache is not None:
            payload["cache"] = json_safe(self.system.cache.describe())
        return payload

    def stats(self) -> dict:
        """The ``/stats`` payload: serving-side counters and identity."""
        return {
            "server": {
                "version": __version__,
                "address": self.address,
                "uptime_seconds": round(time.monotonic() - self._started_at, 3),
                "restored_entries": self.restored_entries,
                "snapshot_path": str(self.snapshot_path) if self.snapshot_path else None,
                "draining": self.batcher.closed,
            },
            "batcher": self.batcher.stats().to_dict(),
            "config": json_safe(self.system.config.to_dict()),
            "dataset_size": len(self.system.dataset),
        }


def _make_handler(server: QueryServer) -> type[BaseHTTPRequestHandler]:
    """Build the request handler class bound to one :class:`QueryServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"  # keep-alive: load generators reuse connections
        server_version = f"GraphCacheServer/{__version__}"

        def do_POST(self) -> None:
            # always consume the body: keep-alive framing breaks otherwise
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length)
            except ValueError:
                self._reply(400, {"error": "bad Content-Length header"})
                return
            if self.path != "/query":
                self._reply(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                payload = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                self._reply(400, {"error": f"malformed JSON body: {exc}"})
                return
            status, body = server.serve_query(payload)
            self._reply(status, body)

        def do_GET(self) -> None:
            if self.path == "/metrics":
                self._reply(200, server.metrics())
            elif self.path == "/stats":
                self._reply(200, server.stats())
            elif self.path == "/health":
                self._reply(200, {"status": "ok"})
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # requests are accounted in BatcherStats, not on stderr

    return Handler
