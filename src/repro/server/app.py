"""QueryServer: an embedded HTTP serving boundary over a GraphCacheSystem.

Stdlib only (``http.server`` + ``threading``).  The server owns one shared
:class:`GraphCacheSystem` — thread-safe cache, staged pipeline, optional
async maintenance worker — and fronts it with a :class:`RequestBatcher`
(bounded admission queue + batch coalescing).  It speaks the versioned
envelope protocol of :mod:`repro.api.envelopes` natively: v2 requests get v2
responses, legacy v1 payloads are auto-upgraded on the way in and answered
in v1 shapes, and every error is classified through the
:mod:`repro.api.taxonomy` table (stable ``code`` + HTTP status — never
message-string parsing).  Endpoints:

* ``POST /query``        — one JSON graph query (v1 or v2 envelope); replies
  with the answer set and per-stage latency.  ``429`` when admission rejects
  (the envelope names the hot shard under cost-based mode), ``400`` on
  malformed payloads, ``503`` while draining, ``504`` on timeout.
* ``POST /batch``        — streamed batch submission: many envelopes over
  one connection, per-query NDJSON result lines back in *completion* order
  (connection-close framing).  Per-item errors use the same taxonomy.
* ``GET /protocol``      — version negotiation: the wire versions served.
* ``POST /record/start`` / ``POST /record/stop`` — server-side trace
  recording: persist the live request stream as a replayable trace.
* ``GET /metrics``       — the :class:`StatisticsManager` snapshot (hit rate,
  stage breakdown) plus cache population, JSON.  With ``?format=text`` the
  unified telemetry registry renders Prometheus-style text instead,
  fanning in process-worker registries as ``shard="i"`` series.
* ``GET /stats``         — serving-side counters: admission/batching/uptime.
* ``GET /health``        — liveness probe; with a process shard backend the
  payload carries per-worker liveness + respawn counts and degrades the
  status when a worker is down.
* ``GET /debug/traces``  — recent/slowest span trees from the in-process
  span recorder, plus slow-query exemplars (``?trace_id=``, ``?sort=``,
  ``?count=``).

Lifecycle: ``start()`` serves on a background thread; ``stop()`` performs a
graceful drain (no accepted query is dropped), persists the cache snapshot
when a ``snapshot_path`` is configured, and closes the system.  A restarted
server pointed at the same snapshot path starts *warm*.
"""

from __future__ import annotations

import json
import random
import threading
import time
import uuid
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as futures_wait
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.api.envelopes import (
    ErrorEnvelope,
    MetricsSnapshot,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    parse_request,
)
from repro.api.recording import TraceRecorder
from repro.cache.statistics import json_safe
from repro.errors import DeadlineExceededError, ProtocolError, RecordingStateError
from repro.graph.graph import Graph
from repro.methods.base import MethodM
from repro.obs.collectors import (
    batcher_samples,
    pool_samples,
    recorder_samples,
    scatter_samples,
    system_samples,
)
from repro.obs.logs import current_trace_id, get_logger
from repro.obs.metrics import COUNTER, GAUGE, MetricsRegistry, Sample
from repro.obs.recorder import configure_recorder
from repro.obs.trace import Span, TraceContext, new_span_id, new_trace_id, wall_at
from repro.runtime.config import GCConfig
from repro.server.batcher import RequestBatcher
from repro.sharding import make_system

logger = get_logger("server")


class _HTTPServer(ThreadingHTTPServer):
    """The transport: one thread per connection, sized for thousands.

    The async client opens connections in bursts, so the listen backlog must
    be far deeper than :mod:`socketserver`'s default of 5 or a warm-up wave
    gets connection-refused before a single request is sent.
    """

    daemon_threads = True
    request_queue_size = 1024


class QueryServer:
    """Embedded graph-query server: batching, backpressure, live metrics.

    With ``config.num_shards > 1`` the server fronts a
    :class:`~repro.sharding.system.ShardedGraphCacheSystem`: queries are
    scattered across the shards and merged transparently, ``/metrics`` grows
    per-shard and ``scatter`` sections (skip rates, fan-out, summary health),
    and cache snapshots fan out to per-shard files.  With
    ``config.scatter_mode="short-circuit"`` the scatter planner prunes shards
    that provably cannot contribute; with
    ``config.admission_mode="cost-based"`` the batcher prices each query per
    shard and backpressures only hot shards.  ``method`` may then be a
    zero-argument factory (each shard builds its own Method M over its
    partition); a built instance only fits one shard.
    """

    def __init__(
        self,
        dataset: list[Graph],
        config: GCConfig | None = None,
        method: MethodM | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 4,
        max_delay_seconds: float = 0.005,
        max_queue_depth: int = 64,
        batch_workers: int | None = None,
        snapshot_path: str | Path | None = None,
        request_timeout_seconds: float = 60.0,
        max_shard_cost_seconds: float = 0.25,
    ) -> None:
        self.system = make_system(dataset, config, method=method)
        try:
            # bind before spawning the batcher thread or touching the
            # snapshot: a failed bind (port in use) must not leak either
            self._httpd = _HTTPServer((host, port), _make_handler(self))
        except OSError:
            self.system.close()
            raise
        try:
            self.snapshot_path = Path(snapshot_path) if snapshot_path is not None else None
            self.restored_entries = 0
            if self.snapshot_path is not None:
                self.restored_entries = self.system.restore_snapshot(self.snapshot_path)
            self.batcher = RequestBatcher(
                self.system,
                max_batch_size=max_batch_size,
                max_delay_seconds=max_delay_seconds,
                max_queue_depth=max_queue_depth,
                batch_workers=batch_workers,
                admission_mode=self.system.config.admission_mode,
                max_shard_cost_seconds=max_shard_cost_seconds,
            )
        except Exception:
            self._httpd.server_close()
            self.system.close()
            raise
        self.recorder = TraceRecorder()
        self.request_timeout_seconds = request_timeout_seconds
        self._thread: threading.Thread | None = None
        self._started_at = time.monotonic()
        self._stopped = False
        # --- observability: span recorder knobs + unified metrics registry
        cfg = self.system.config
        self.trace_sample_rate = cfg.trace_sample_rate
        # dedicated RNG: the sampling decision must never consume the global
        # seeded stream that workload generators depend on for determinism
        self._sample_rng = random.Random(uuid.uuid4().int)
        self.span_recorder = configure_recorder(
            buffer_size=cfg.trace_buffer_size,
            slow_threshold_seconds=cfg.slow_query_threshold_s,
        )
        self.registry = MetricsRegistry()
        self._request_outcomes = {
            outcome: self.registry.counter(
                "gc_server_requests_total",
                help="Query requests by terminal outcome",
                outcome=outcome,
            )
            for outcome in ("ok", "rejected", "error", "timeout", "protocol-error")
        }
        self._request_latency = self.registry.histogram(
            "gc_server_request_seconds",
            help="End-to-end served-request latency (admission to response)",
        )
        self._queue_latency = self.registry.histogram(
            "gc_server_queue_wait_seconds",
            help="Seconds served requests waited in the admission queue",
        )
        self.registry.register_collector(lambda: system_samples(self.system))
        self.registry.register_collector(lambda: batcher_samples(self.batcher))
        self.registry.register_collector(
            lambda: recorder_samples(self.span_recorder))
        if getattr(self.system, "planner", None) is not None:
            self.registry.register_collector(lambda: scatter_samples(self.system))
        self.registry.register_collector(self._runtime_samples)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "QueryServer":
        """Serve on a background thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="gc-query-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: drain the batcher, snapshot, close the system."""
        if self._stopped:
            return
        self._stopped = True
        self.batcher.close(drain=drain)
        if self.snapshot_path is not None:
            self.system.save_snapshot(self.snapshot_path)
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
        self._httpd.server_close()
        self.system.close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # request handling (HTTP-agnostic: returns status + JSON payload)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _error(exc: BaseException, version: int,
               request_id=None) -> tuple[int, dict]:
        """Render any exception via the taxonomy, in the request's version."""
        envelope = ErrorEnvelope.from_exception(exc, request_id=request_id)
        return envelope.http_status, envelope.to_wire(version)

    def _sampled(self) -> bool:
        """One server-side sampling decision at ``trace_sample_rate``."""
        rate = self.trace_sample_rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self._sample_rng.random() < rate

    def _begin_request_trace(self, request) -> dict | None:
        """Open the ``server.request`` span and re-root the request's trace.

        A client-supplied context is always honoured (its span becomes the
        parent); otherwise the server samples at ``trace_sample_rate`` and
        starts a fresh trace.  The request's trace is rewritten so everything
        downstream — queue, batch, plan, scatter, worker pipelines — parents
        on this server span.
        """
        client = request.trace
        if client is not None and not client.sampled:
            return None
        if client is None and not self._sampled():
            return None
        trace_id = client.trace_id if client is not None else new_trace_id()
        span_id = new_span_id()
        request.trace = TraceContext(trace_id=trace_id, span_id=span_id)
        started = time.perf_counter()
        return {
            "trace_id": trace_id,
            "span_id": span_id,
            "parent": client.span_id if client is not None else None,
            # wall stamp derived from the same monotonic reading via the
            # process clock anchor: child spans whose starts are computed as
            # wall-now minus monotonic durations can never precede the root
            "started_wall": wall_at(started),
            "started": started,
            "token": current_trace_id.set(trace_id),
        }

    def _finish_request_trace(self, scope: dict | None, served=None,
                              outcome: str = "ok") -> None:
        """Close the server spans and complete the trace in the recorder."""
        if scope is None:
            return
        current_trace_id.reset(scope["token"])
        duration = time.perf_counter() - scope["started"]
        spans = []
        scatter = None
        if served is not None:
            # queue wait then batch execution, back to back under the
            # server.request span — the gap between them is dispatch overhead
            spans.append(Span(
                trace_id=scope["trace_id"], span_id=new_span_id(),
                name="server.queue", parent_span_id=scope["span_id"],
                start=scope["started_wall"],
                duration_seconds=served.queue_seconds,
            ))
            spans.append(Span(
                trace_id=scope["trace_id"], span_id=new_span_id(),
                name="server.batch", parent_span_id=scope["span_id"],
                start=scope["started_wall"] + served.queue_seconds,
                duration_seconds=served.report.total_seconds,
                attributes={"batch_size": served.batch_size},
            ))
            plan = served.report.query.metadata.get("scatter")
            if isinstance(plan, dict):
                scatter = plan
        spans.append(Span(
            trace_id=scope["trace_id"], span_id=scope["span_id"],
            name="server.request", parent_span_id=scope["parent"],
            start=scope["started_wall"], duration_seconds=duration,
            attributes={"outcome": outcome},
        ))
        self.span_recorder.record_many(spans)
        self.span_recorder.complete(scope["trace_id"], duration, scatter=scatter)

    def serve_query(self, payload: dict) -> tuple[int, dict]:
        """Admit, batch and execute one query payload (v1 or v2 envelope)."""
        started = time.perf_counter()
        try:
            request, version = parse_request(payload)
        except ProtocolError as exc:
            # a payload that *declares* version >= 2 gets a v2-shaped error
            # (it clearly speaks envelopes); anything else — bare legacy
            # payloads and explicit "version": 1 alike — gets v1 strings
            declared = payload.get("version", 1) if isinstance(payload, dict) else 1
            spoke_v2 = (isinstance(declared, int)
                        and not isinstance(declared, bool) and declared >= 2)
            self._request_outcomes["protocol-error"].inc()
            return self._error(exc, PROTOCOL_VERSION if spoke_v2 else 1)
        self.recorder.record(request)
        scope = self._begin_request_trace(request)
        try:
            future = self.batcher.submit(request)
        except Exception as exc:  # admission rejected / draining
            self._request_outcomes["rejected"].inc()
            self._finish_request_trace(scope, outcome="rejected")
            return self._error(exc, version, request.request_id)
        wait = self.request_timeout_seconds
        if request.deadline_seconds is not None:
            # don't hold the connection past the caller's own budget
            wait = min(wait, request.deadline_seconds)
        try:
            served = future.result(timeout=wait)
        except FutureTimeoutError:
            # the waiter is gone: mark the queue entry dead so the batcher
            # sheds it instead of executing zombie work, and release its
            # cost reservation *now* rather than when its batch would end
            self.batcher.abandon(future, request_id=request.request_id)
            self._request_outcomes["timeout"].inc()
            self._finish_request_trace(scope, outcome="timeout")
            envelope = ErrorEnvelope.timeout(
                "query timed out in the serving pipeline",
                request_id=request.request_id,
            )
            return envelope.http_status, envelope.to_wire(version)
        except DeadlineExceededError as exc:  # shed in the admission queue
            self._request_outcomes["timeout"].inc()
            self._finish_request_trace(scope, outcome="shed")
            return self._error(exc, version, request.request_id)
        except Exception as exc:  # execution error inside the pipeline
            self._request_outcomes["error"].inc()
            self._finish_request_trace(scope, outcome="error")
            logger.warning("query %s failed in the pipeline: %s: %s",
                           request.request_id, type(exc).__name__, exc)
            return self._error(exc, version, request.request_id)
        self._request_outcomes["ok"].inc()
        self._request_latency.observe(time.perf_counter() - started)
        self._queue_latency.observe(served.queue_seconds)
        self._finish_request_trace(scope, served=served)
        response = served.to_response(request_id=request.request_id)
        if scope is not None:
            response.trace_id = scope["trace_id"]
        return 200, response.to_wire(version)

    def batch_stream(self, payload: dict):
        """Validate a ``POST /batch`` payload; return the response-line stream.

        The payload is ``{"queries": [<v1-or-v2 request envelope>, ...]}``.
        Every query is admitted up front (one connection, one submission
        round-trip for the whole batch), then per-query outcomes stream back
        as NDJSON lines ``{"index": i, ...envelope}`` in *completion* order —
        a straggler never holds up answers that are already done.  Per-item
        protocol and admission errors become error-envelope lines for their
        index; queries still unfinished at the request timeout are abandoned
        (dead work shed, cost released) and answered with ``timeout`` lines.
        Raises :class:`ProtocolError` when the outer payload is malformed.
        """
        if not isinstance(payload, dict):
            raise ProtocolError("batch payload must be a JSON object")
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ProtocolError(
                "'queries' must be a non-empty list of request envelopes")
        return self._batch_lines(queries)

    def _batch_lines(self, queries: list):
        """The generator behind :meth:`batch_stream` (validated input)."""
        futures: dict = {}
        immediate: list[dict] = []
        for index, item in enumerate(queries):
            started = time.perf_counter()
            try:
                request, version = parse_request(item)
            except ProtocolError as exc:
                self._request_outcomes["protocol-error"].inc()
                immediate.append({"index": index,
                                  **self._error(exc, PROTOCOL_VERSION)[1]})
                continue
            self.recorder.record(request)
            try:
                future = self.batcher.submit(request)
            except Exception as exc:  # admission rejected / draining
                self._request_outcomes["rejected"].inc()
                immediate.append({
                    "index": index,
                    **self._error(exc, version, request.request_id)[1],
                })
                continue
            futures[future] = (index, request, version, started)
        yield from immediate
        limit = time.monotonic() + self.request_timeout_seconds
        pending = set(futures)
        while pending:
            remaining = limit - time.monotonic()
            if remaining <= 0:
                break
            done, pending = futures_wait(pending, timeout=remaining,
                                         return_when=FIRST_COMPLETED)
            if not done:
                break
            for future in done:
                index, request, version, started = futures[future]
                yield {"index": index,
                       **self._batch_outcome(future, request, version, started)}
        for future in pending:  # request timeout: shed the zombie work
            index, request, version, _ = futures[future]
            self.batcher.abandon(future, request_id=request.request_id)
            self._request_outcomes["timeout"].inc()
            envelope = ErrorEnvelope.timeout(
                "query timed out in the serving pipeline",
                request_id=request.request_id,
            )
            yield {"index": index, **envelope.to_wire(version)}

    def _batch_outcome(self, future, request, version: int,
                       started: float) -> dict:
        """The wire body for one completed batch future."""
        try:
            served = future.result()
        except DeadlineExceededError as exc:  # shed in the admission queue
            self._request_outcomes["timeout"].inc()
            return self._error(exc, version, request.request_id)[1]
        except Exception as exc:
            self._request_outcomes["error"].inc()
            logger.warning("query %s failed in the pipeline: %s: %s",
                           request.request_id, type(exc).__name__, exc)
            return self._error(exc, version, request.request_id)[1]
        self._request_outcomes["ok"].inc()
        self._request_latency.observe(time.perf_counter() - started)
        self._queue_latency.observe(served.queue_seconds)
        return served.to_response(request_id=request.request_id).to_wire(version)

    def protocol(self) -> dict:
        """The ``/protocol`` payload: wire versions this server speaks."""
        return {
            "versions": list(SUPPORTED_VERSIONS),
            "preferred": PROTOCOL_VERSION,
            "server": f"GraphCacheServer/{__version__}",
        }

    # ------------------------------------------------------------------ #
    # trace recording
    # ------------------------------------------------------------------ #
    def record_start(self, payload: dict) -> tuple[int, dict]:
        """Begin recording the live request stream (``POST /record/start``)."""
        name = payload.get("name")
        path = payload.get("path")
        if name is not None and not isinstance(name, str):
            return self._error(ProtocolError("'name' must be a string"), PROTOCOL_VERSION)
        if path is not None and not isinstance(path, str):
            return self._error(ProtocolError("'path' must be a string"), PROTOCOL_VERSION)
        try:
            return 200, self.recorder.start(name=name, path=path)
        except RecordingStateError as exc:
            return self._error(exc, PROTOCOL_VERSION)

    def record_stop(self) -> tuple[int, dict]:
        """Stop recording; persist and/or return the trace (``/record/stop``).

        When the server-side persist fails the trace comes back inline
        instead (never lost), with the write error noted in its metadata.
        """
        try:
            trace, path = self.recorder.stop()
        except RecordingStateError as exc:
            return self._error(exc, PROTOCOL_VERSION)
        payload: dict = {"recorded": len(trace), "name": trace.name, "path": path}
        if path is None:
            payload["trace"] = trace.to_dict()
        return 200, payload

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def metrics(self) -> dict:
        """The ``/metrics`` payload: statistics snapshot + cache population.

        For a sharded system the statistics snapshot already carries the
        per-shard aggregates; ``shards``/``router``/``scatter`` sections add
        each shard's population and what short-circuit scatter + cost-based
        admission did (see :class:`repro.api.envelopes.MetricsSnapshot`).
        """
        return MetricsSnapshot.from_system(self.system).to_wire()

    def stats(self) -> dict:
        """The ``/stats`` payload: serving-side counters and identity."""
        return {
            "server": {
                "version": __version__,
                "address": self.address,
                "uptime_seconds": round(time.monotonic() - self._started_at, 3),
                "restored_entries": self.restored_entries,
                "snapshot_path": str(self.snapshot_path) if self.snapshot_path else None,
                "draining": self.batcher.closed,
                "protocol_versions": list(SUPPORTED_VERSIONS),
            },
            "recording": {
                "active": self.recorder.active,
                "recorded": self.recorder.recorded,
            },
            "batcher": self.batcher.stats().to_dict(),
            "config": json_safe(self.system.config.to_dict()),
            "dataset_size": len(self.system.dataset),
        }

    def _runtime_samples(self):
        """Registry collector: uptime, worker liveness, async-pool gauges."""
        yield Sample("gc_server_uptime_seconds", GAUGE,
                     time.monotonic() - self._started_at,
                     help="Seconds since the server started")
        liveness = getattr(self.system, "worker_liveness", None)
        if liveness is not None:
            for row in liveness():
                labels = {"shard": str(row.get("shard"))}
                yield Sample("gc_worker_alive", GAUGE,
                             1.0 if row.get("alive") else 0.0,
                             help="1 when the shard's worker is live",
                             labels=dict(labels))
                yield Sample("gc_worker_respawns_total", COUNTER,
                             float(row.get("respawns", 0)),
                             help="Times the shard's worker was respawned",
                             labels=dict(labels))
        backend = getattr(self.system, "_process_backend", None)
        if backend is not None:
            for stats in backend.pool_stats():
                yield from pool_samples(stats)

    def health(self) -> dict:
        """The ``/health`` payload: liveness plus per-worker detail.

        ``status`` stays ``"ok"`` on a healthy system (probes key on it);
        it degrades to ``"degraded"`` only when a shard worker is down.
        """
        payload: dict = {"status": "ok", "draining": self.batcher.closed}
        liveness = getattr(self.system, "worker_liveness", None)
        if liveness is not None:
            rows = liveness()
            payload["workers"] = rows
            if any(not row.get("alive", True) for row in rows):
                payload["status"] = "degraded"
        self._forward_worker_logs()
        return payload

    def metrics_text(self) -> str:
        """Prometheus-style text exposition (``GET /metrics?format=text``).

        The coordinator's registry plus — for process-backed shards — each
        worker's registry snapshot fanned in as ``shard="i"`` series.
        """
        fetch = getattr(self.system, "worker_registry_snapshots", None)
        extra = fetch() if fetch is not None else []
        return self.registry.render_text(extra=extra)

    def debug_traces(self, params: dict) -> tuple[int, dict]:
        """The ``/debug/traces`` payload: recent/slowest trees + exemplars.

        ``?trace_id=`` fetches one tree; ``?sort=recent|slowest`` and
        ``?count=N`` page the listing; slow-query exemplars always ride
        along so a threshold breach is one GET away from its span tree.
        """
        recorder = self.span_recorder
        trace_id = params.get("trace_id", [None])[0]
        if trace_id:
            tree = recorder.tree(trace_id)
            if tree is None:
                return 404, {"error": f"unknown trace_id {trace_id!r}"}
            return 200, {"trace": tree}
        sort = params.get("sort", ["recent"])[0]
        if sort not in ("recent", "slowest"):
            return 400, {"error": f"unknown sort {sort!r} (recent|slowest)"}
        try:
            count = int(params.get("count", ["10"])[0])
        except ValueError:
            return 400, {"error": "'count' must be an integer"}
        count = max(1, min(count, 100))
        traces = (recorder.recent(count) if sort == "recent"
                  else recorder.slowest(count))
        return 200, {
            "sort": sort,
            "traces": traces,
            "exemplars": recorder.exemplars(),
            "stats": recorder.stats(),
        }

    def _forward_worker_logs(self) -> None:
        """Replay buffered worker warnings into the coordinator log stream."""
        forward = getattr(self.system, "forward_worker_logs", None)
        if forward is not None:
            try:
                forward()
            except Exception as exc:  # a dying worker must not fail /health
                logger.warning("worker log drain failed: %s", exc)


def _make_handler(server: QueryServer) -> type[BaseHTTPRequestHandler]:
    """Build the request handler class bound to one :class:`QueryServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"  # keep-alive: load generators reuse connections
        server_version = f"GraphCacheServer/{__version__}"
        # headers and body flush as separate small writes; without NODELAY,
        # Nagle + delayed ACK can stall responses ~40ms even on loopback
        disable_nagle_algorithm = True

        def do_POST(self) -> None:
            # always consume the body: keep-alive framing breaks otherwise
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length)
            except ValueError:
                self._reply(400, {"error": "bad Content-Length header"})
                return
            try:
                payload = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                self._reply(400, {"error": f"malformed JSON body: {exc}"})
                return
            if self.path == "/query":
                status, body = server.serve_query(payload)
            elif self.path == "/batch":
                try:
                    lines = server.batch_stream(payload)
                except ProtocolError as exc:
                    status, body = server._error(exc, PROTOCOL_VERSION)
                    self._reply(status, body)
                    return
                self._reply_stream(lines)
                return
            elif self.path == "/record/start":
                status, body = server.record_start(
                    payload if isinstance(payload, dict) else {}
                )
            elif self.path == "/record/stop":
                status, body = server.record_stop()
            else:
                status, body = 404, {"error": f"unknown path {self.path!r}"}
            self._reply(status, body)

        def do_GET(self) -> None:
            parsed = urlsplit(self.path)
            params = parse_qs(parsed.query)
            if parsed.path == "/metrics":
                if params.get("format", [""])[0] == "text":
                    self._reply_text(200, server.metrics_text())
                else:
                    self._reply(200, server.metrics())
            elif parsed.path == "/stats":
                self._reply(200, server.stats())
            elif parsed.path == "/health":
                self._reply(200, server.health())
            elif parsed.path == "/protocol":
                self._reply(200, server.protocol())
            elif parsed.path == "/debug/traces":
                status, body = server.debug_traces(params)
                self._reply(status, body)
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _reply_stream(self, lines) -> None:
            """Stream NDJSON result lines as they complete (``POST /batch``).

            Results arrive in completion order, so Content-Length is unknown
            up front: the response is framed by connection close instead —
            the one framing every HTTP/1.x client understands without
            chunked-decoding support.
            """
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Connection", "close")
            self.end_headers()
            self.close_connection = True
            for item in lines:
                self.wfile.write(json.dumps(item).encode("utf-8") + b"\n")
                self.wfile.flush()

        def _reply_text(self, status: int, text: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # requests are accounted in BatcherStats, not on stderr

    return Handler
