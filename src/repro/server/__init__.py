"""Query serving subsystem: HTTP boundary, request batching, backpressure.

The paper's GC is a *system* fronting subgraph/supergraph query processing
for many concurrent clients; this package is that serving boundary for the
reproduction — stdlib-only, embeddable, observable.
"""

from repro.server.app import QueryServer
from repro.server.batcher import BatcherStats, RequestBatcher, ServedQuery
from repro.server.protocol import (
    answer_from_payload,
    query_from_payload,
    query_to_payload,
    report_to_payload,
)

__all__ = [
    "QueryServer",
    "RequestBatcher",
    "BatcherStats",
    "ServedQuery",
    "query_to_payload",
    "query_from_payload",
    "report_to_payload",
    "answer_from_payload",
]
