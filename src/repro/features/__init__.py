"""Feature extraction for FTV filtering (paths, stars, cycles, fingerprints)."""

from repro.features.base import CompositeExtractor, FeatureExtractor, FeatureKey
from repro.features.cycles import CycleFeatureExtractor, canonical_cycle_key
from repro.features.fingerprint import Fingerprint
from repro.features.paths import EdgeFeatureExtractor, PathFeatureExtractor, canonical_path_key
from repro.features.trees import StarFeatureExtractor

__all__ = [
    "FeatureExtractor",
    "FeatureKey",
    "CompositeExtractor",
    "PathFeatureExtractor",
    "EdgeFeatureExtractor",
    "canonical_path_key",
    "StarFeatureExtractor",
    "CycleFeatureExtractor",
    "canonical_cycle_key",
    "Fingerprint",
]
