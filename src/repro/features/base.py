"""Feature abstraction for FTV ("filter-then-verify") indexing.

A *feature* is a small substructure of a graph — the paper names paths, trees
and subgraphs as the typical choices.  FTV methods index the dataset graphs
by the multiset of features they contain; at query time the same extractor is
applied to the query and containment reasoning over feature multisets yields
a candidate set.

Every extractor maps a graph to a ``Counter`` keyed by a hashable canonical
feature key, so the index layer never needs to know what kind of feature it
is storing.
"""

from __future__ import annotations

import abc
import functools
import operator
from collections import Counter
from collections.abc import Hashable

from repro.graph.graph import Graph

FeatureKey = Hashable


class FeatureExtractor(abc.ABC):
    """Maps a graph to a multiset (Counter) of canonical feature keys."""

    #: Short name used in registries and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def extract(self, graph: Graph) -> Counter[FeatureKey]:
        """Return the feature multiset of ``graph``."""

    def describe(self) -> dict[str, object]:
        """Return the extractor's parameters (for reports and DESIGN docs)."""
        return {"name": self.name}

    # ------------------------------------------------------------------ #
    # containment reasoning shared by the index layer
    # ------------------------------------------------------------------ #
    @staticmethod
    def multiset_contains(container: Counter[FeatureKey], contained: Counter[FeatureKey]) -> bool:
        """True iff ``contained`` is a sub-multiset of ``container``.

        If graph ``a`` is a subgraph of graph ``b`` then (for any sound
        feature definition) ``features(a) ⊆ features(b)`` as multisets; the
        contrapositive is what filtering uses.
        """
        return all(container.get(key, 0) >= count for key, count in contained.items())

    @staticmethod
    def missing_features(
        container: Counter[FeatureKey], contained: Counter[FeatureKey]
    ) -> list[FeatureKey]:
        """Feature keys of ``contained`` whose multiplicity exceeds ``container``."""
        return [key for key, count in contained.items() if container.get(key, 0) < count]

    # ------------------------------------------------------------------ #
    # partition summaries (shard pruning)
    # ------------------------------------------------------------------ #
    @staticmethod
    def multiset_union(multisets: list[Counter[FeatureKey]]) -> Counter[FeatureKey]:
        """Pointwise *maximum* over the multisets (the partition's ceiling).

        If a query needs more of some feature than this union supplies, then
        no member graph can contain the query — the screen shard pruning
        applies to subgraph queries.
        """
        return functools.reduce(operator.or_, multisets, Counter())

    @staticmethod
    def multiset_common(multisets: list[Counter[FeatureKey]]) -> Counter[FeatureKey]:
        """Pointwise *minimum* over the multisets (the partition's floor).

        Every member graph carries at least these feature counts, so a
        supergraph query providing fewer of some floor feature cannot contain
        *any* member — the dual screen for supergraph-query shard pruning.
        An empty input yields an empty floor.
        """
        if not multisets:
            return Counter()
        return functools.reduce(operator.and_, multisets[1:], Counter(multisets[0]))


class CompositeExtractor(FeatureExtractor):
    """Union of several extractors (keys are namespaced per extractor)."""

    name = "composite"

    def __init__(self, extractors: list[FeatureExtractor]) -> None:
        if not extractors:
            raise ValueError("CompositeExtractor needs at least one extractor")
        self.extractors = list(extractors)

    def extract(self, graph: Graph) -> Counter[FeatureKey]:
        """Extract with every sub-extractor, namespacing keys by extractor name."""
        combined: Counter[FeatureKey] = Counter()
        for extractor in self.extractors:
            for key, count in extractor.extract(graph).items():
                combined[(extractor.name, key)] += count
        return combined

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "extractors": [extractor.describe() for extractor in self.extractors],
        }
