"""Feature abstraction for FTV ("filter-then-verify") indexing.

A *feature* is a small substructure of a graph — the paper names paths, trees
and subgraphs as the typical choices.  FTV methods index the dataset graphs
by the multiset of features they contain; at query time the same extractor is
applied to the query and containment reasoning over feature multisets yields
a candidate set.

Every extractor maps a graph to a ``Counter`` keyed by a hashable canonical
feature key, so the index layer never needs to know what kind of feature it
is storing.
"""

from __future__ import annotations

import abc
from collections import Counter
from collections.abc import Hashable

from repro.graph.graph import Graph

FeatureKey = Hashable


class FeatureExtractor(abc.ABC):
    """Maps a graph to a multiset (Counter) of canonical feature keys."""

    #: Short name used in registries and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def extract(self, graph: Graph) -> Counter[FeatureKey]:
        """Return the feature multiset of ``graph``."""

    def describe(self) -> dict[str, object]:
        """Return the extractor's parameters (for reports and DESIGN docs)."""
        return {"name": self.name}

    # ------------------------------------------------------------------ #
    # containment reasoning shared by the index layer
    # ------------------------------------------------------------------ #
    @staticmethod
    def multiset_contains(container: Counter[FeatureKey], contained: Counter[FeatureKey]) -> bool:
        """True iff ``contained`` is a sub-multiset of ``container``.

        If graph ``a`` is a subgraph of graph ``b`` then (for any sound
        feature definition) ``features(a) ⊆ features(b)`` as multisets; the
        contrapositive is what filtering uses.
        """
        return all(container.get(key, 0) >= count for key, count in contained.items())

    @staticmethod
    def missing_features(
        container: Counter[FeatureKey], contained: Counter[FeatureKey]
    ) -> list[FeatureKey]:
        """Feature keys of ``contained`` whose multiplicity exceeds ``container``."""
        return [key for key, count in contained.items() if container.get(key, 0) < count]


class CompositeExtractor(FeatureExtractor):
    """Union of several extractors (keys are namespaced per extractor)."""

    name = "composite"

    def __init__(self, extractors: list[FeatureExtractor]) -> None:
        if not extractors:
            raise ValueError("CompositeExtractor needs at least one extractor")
        self.extractors = list(extractors)

    def extract(self, graph: Graph) -> Counter[FeatureKey]:
        """Extract with every sub-extractor, namespacing keys by extractor name."""
        combined: Counter[FeatureKey] = Counter()
        for extractor in self.extractors:
            for key, count in extractor.extract(graph).items():
                combined[(extractor.name, key)] += count
        return combined

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "extractors": [extractor.describe() for extractor in self.extractors],
        }
