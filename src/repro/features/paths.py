"""Label-path features (the GraphGrepSX / Grapes family).

A path feature of length *k* is the sequence of vertex labels along a simple
path with *k* edges.  Because the graphs are undirected, a path and its
reverse are the same feature; the lexicographically smaller of the two label
sequences is used as the canonical key.

Path features are the feature family used by Method M in the demo (Bonnici et
al.'s suffix-tree index, reference [1]); the ``max_length`` knob is exactly
the "feature size" dial of experiment II (§3.1), where increasing it by one
roughly doubles index space for ≈10 % query-time gain.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import IndexError_
from repro.features.base import FeatureExtractor, FeatureKey
from repro.graph.graph import Graph, VertexId


def canonical_path_key(labels: list[str]) -> tuple[str, ...]:
    """Canonical (direction-independent) key for a label path."""
    forward = tuple(labels)
    backward = tuple(reversed(labels))
    return forward if forward <= backward else backward


class PathFeatureExtractor(FeatureExtractor):
    """Enumerate all simple label paths with 0..max_length edges.

    Length-0 paths are single vertex labels, so even a one-vertex query has a
    non-empty feature multiset.  Enumeration is DFS with an on-path visited
    set (simple paths only); each undirected path is counted once.
    """

    name = "paths"

    def __init__(self, max_length: int = 3) -> None:
        if max_length < 0:
            raise IndexError_("max_length must be non-negative")
        self.max_length = max_length

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "max_length": self.max_length}

    def extract(self, graph: Graph) -> Counter[FeatureKey]:
        """Return the multiset of canonical label-path keys of ``graph``."""
        features: Counter[FeatureKey] = Counter()
        for vertex in graph.vertices():
            features[(graph.label(vertex),)] += 1
            self._extend(graph, [vertex], {vertex}, features)
        # every path of length >= 1 is discovered twice (once from each end);
        # halve those counts so the multiset is well defined
        normalised: Counter[FeatureKey] = Counter()
        for key, count in features.items():
            if len(key) == 1:
                normalised[key] = count
            else:
                normalised[key] = count // 2
        return normalised

    def _extend(
        self,
        graph: Graph,
        path: list[VertexId],
        on_path: set[VertexId],
        features: Counter[FeatureKey],
    ) -> None:
        if len(path) - 1 >= self.max_length:
            return
        tail = path[-1]
        for neighbor in graph.neighbors(tail):
            if neighbor in on_path:
                continue
            path.append(neighbor)
            on_path.add(neighbor)
            labels = [graph.label(v) for v in path]
            features[canonical_path_key(labels)] += 1
            self._extend(graph, path, on_path, features)
            on_path.discard(neighbor)
            path.pop()


class EdgeFeatureExtractor(FeatureExtractor):
    """Degenerate path extractor with only vertex labels and single edges.

    Equivalent to ``PathFeatureExtractor(max_length=1)`` but cheaper; useful
    as the weakest (smallest-index) FTV configuration in the overhead sweep.
    """

    name = "edges"

    def extract(self, graph: Graph) -> Counter[FeatureKey]:
        """Return vertex-label and edge-label-pair features."""
        features: Counter[FeatureKey] = Counter()
        for vertex in graph.vertices():
            features[(graph.label(vertex),)] += 1
        for u, v in graph.edges():
            features[canonical_path_key([graph.label(u), graph.label(v)])] += 1
        return features
