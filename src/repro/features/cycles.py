"""Simple-cycle features (the "C" of CT-Index style indexing).

A simple cycle of the query maps, under any monomorphism, onto a simple cycle
of the target with the same label sequence, occurrence by occurrence — so
cycle features are monotone under subgraph containment and safe for FTV
filtering, exactly like path and star features.

Cycles are enumerated up to a bounded length with a rooted DFS (each cycle is
discovered once by forcing its smallest vertex, in a fixed vertex order, to
be the root and its second vertex to precede its last).  The canonical key of
a cycle is the lexicographically smallest rotation/reflection of its label
sequence.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import IndexError_
from repro.features.base import FeatureExtractor, FeatureKey
from repro.graph.graph import Graph, VertexId


def canonical_cycle_key(labels: list[str]) -> tuple[str, ...]:
    """Smallest rotation/reflection of a cyclic label sequence."""
    best: tuple[str, ...] | None = None
    n = len(labels)
    for sequence in (labels, list(reversed(labels))):
        for shift in range(n):
            rotated = tuple(sequence[shift:] + sequence[:shift])
            if best is None or rotated < best:
                best = rotated
    return best if best is not None else tuple()


class CycleFeatureExtractor(FeatureExtractor):
    """Enumerate simple cycles with 3..max_length vertices."""

    name = "cycles"

    def __init__(self, max_length: int = 6) -> None:
        if max_length < 3:
            raise IndexError_("max_length must be at least 3")
        self.max_length = max_length

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "max_length": self.max_length}

    def extract(self, graph: Graph) -> Counter[FeatureKey]:
        """Return the multiset of canonical cycle label sequences."""
        features: Counter[FeatureKey] = Counter()
        order = {vertex: index for index, vertex in enumerate(graph.vertices())}
        for root in graph.vertices():
            self._search(graph, order, root, [root], {root}, features)
        return features

    def _search(
        self,
        graph: Graph,
        order: dict[VertexId, int],
        root: VertexId,
        path: list[VertexId],
        on_path: set[VertexId],
        features: Counter[FeatureKey],
    ) -> None:
        tail = path[-1]
        for neighbor in graph.neighbors(tail):
            if neighbor == root and len(path) >= 3:
                # close a cycle; count it once by requiring the second vertex
                # to be smaller (in the fixed order) than the last vertex
                if order[path[1]] < order[path[-1]]:
                    labels = [graph.label(v) for v in path]
                    features[("C", canonical_cycle_key(labels))] += 1
                continue
            if neighbor in on_path:
                continue
            # every cycle is rooted at its minimum vertex in the fixed order
            if order[neighbor] < order[root]:
                continue
            if len(path) >= self.max_length:
                continue
            path.append(neighbor)
            on_path.add(neighbor)
            self._search(graph, order, root, path, on_path, features)
            on_path.discard(neighbor)
            path.pop()
