"""Tree-shaped (star) features, in the style of CT-Index / TreePi.

The key requirement on any FTV feature family is *monotonicity under
subgraph containment*: if ``q ⊆ G`` then every feature occurrence of ``q``
must map to a distinct feature occurrence of ``G``, so feature-multiset
containment is a necessary condition and filtering never produces false
dismissals.

Star features satisfy this: a star is a centre vertex plus a set of ``k``
distinct neighbours, encoded as ``(centre label, sorted leaf labels)``.  Any
monomorphism maps a star of the query onto a star of the target injectively,
occurrence by occurrence.  Enumeration is complete (all neighbour subsets up
to ``max_leaves``), which keeps the multiset argument exact.

Maximal-BFS-tree encodings (as used for graph *identity* hashing) are **not**
monotone and are deliberately not offered here; see ``graph.canonical`` for
those.
"""

from __future__ import annotations

import itertools
from collections import Counter

from repro.errors import IndexError_
from repro.features.base import FeatureExtractor, FeatureKey
from repro.graph.graph import Graph


class StarFeatureExtractor(FeatureExtractor):
    """Complete enumeration of star features with 1..max_leaves leaves.

    ``max_leaves`` plays the same "feature size" role as path length does for
    path features: one more leaf means a more discriminative but much larger
    index (experiment II's trade-off).
    """

    name = "stars"

    def __init__(self, max_leaves: int = 3) -> None:
        if max_leaves < 1:
            raise IndexError_("max_leaves must be at least 1")
        self.max_leaves = max_leaves

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "max_leaves": self.max_leaves}

    def extract(self, graph: Graph) -> Counter[FeatureKey]:
        """Return the multiset of star features of ``graph``."""
        features: Counter[FeatureKey] = Counter()
        for vertex in graph.vertices():
            neighbor_labels = sorted(graph.label(n) for n in graph.neighbors(vertex))
            center = graph.label(vertex)
            features[("S", center, ())] += 1
            for size in range(1, min(self.max_leaves, len(neighbor_labels)) + 1):
                for combo in itertools.combinations(neighbor_labels, size):
                    features[("S", center, combo)] += 1
        return features
