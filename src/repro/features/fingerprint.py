"""Hashed bit-vector fingerprints over feature multisets.

CT-Index style methods do not store the feature multiset per graph; they hash
the feature *set* into a fixed-width bit vector.  Filtering then becomes a
bitwise containment test (``query_bits & ~graph_bits == 0``), which is very
fast and very small, at the cost of (a) losing multiplicities and (b) hash
collisions — both of which only ever *weaken* filtering, never make it
unsound, because a bit set by the query that is also set by the graph can be
a false sharing but a bit missing from the graph is a guaranteed missing
feature.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from collections.abc import Iterable

from repro.errors import IndexError_
from repro.features.base import FeatureKey


class Fingerprint:
    """A fixed-width bitset over hashed features."""

    __slots__ = ("num_bits", "bits")

    def __init__(self, num_bits: int = 1024, bits: int = 0) -> None:
        if num_bits <= 0:
            raise IndexError_("num_bits must be positive")
        self.num_bits = num_bits
        self.bits = bits

    @classmethod
    def from_features(
        cls, features: Iterable[FeatureKey] | Counter[FeatureKey], num_bits: int = 1024
    ) -> "Fingerprint":
        """Hash every feature key into the bitset."""
        fingerprint = cls(num_bits=num_bits)
        keys = features.keys() if isinstance(features, Counter) else features
        for key in keys:
            fingerprint.add(key)
        return fingerprint

    def add(self, key: FeatureKey) -> None:
        """Set the bit for one feature key."""
        self.bits |= 1 << self._position(key)

    def _position(self, key: FeatureKey) -> int:
        digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.num_bits

    def contains_all(self, other: "Fingerprint") -> bool:
        """True iff every bit of ``other`` is set in ``self``."""
        if self.num_bits != other.num_bits:
            raise IndexError_("fingerprints have different widths")
        return (other.bits & ~self.bits) == 0

    def popcount(self) -> int:
        """Number of set bits."""
        return bin(self.bits).count("1")

    def size_bytes(self) -> int:
        """Nominal storage size of the fingerprint in bytes."""
        return self.num_bits // 8

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fingerprint):
            return NotImplemented
        return self.num_bits == other.num_bits and self.bits == other.bits

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((self.num_bits, self.bits))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Fingerprint bits={self.popcount()}/{self.num_bits}>"
