"""Exception hierarchy for the GC (GraphCache) reproduction library.

Every error raised intentionally by the library derives from
:class:`GraphCacheError`, so callers can catch a single base class.  More
specific subclasses exist for the major subsystems (graph model, isomorphism
engines, indexing/Method M, the cache kernel and workload handling).
"""

from __future__ import annotations


class GraphCacheError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GraphError(GraphCacheError):
    """Errors in the graph data model (bad vertices, edges, labels...)."""


class VertexNotFoundError(GraphError):
    """A vertex id was referenced that is not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """An edge was referenced that is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class DuplicateVertexError(GraphError):
    """A vertex id was added twice."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} already exists in the graph")
        self.vertex = vertex


class GraphFormatError(GraphCacheError):
    """A serialized graph (file or string) could not be parsed."""


class IsomorphismError(GraphCacheError):
    """Errors raised by the subgraph isomorphism engines."""


class BudgetExceededError(IsomorphismError):
    """A matcher exceeded its configured search budget (node visits/time)."""

    def __init__(self, budget: int) -> None:
        super().__init__(f"subgraph isomorphism search exceeded budget of {budget} states")
        self.budget = budget


class IndexError_(GraphCacheError):
    """Errors raised while building or querying a dataset/feature index."""


class MethodError(GraphCacheError):
    """Errors raised by Method M implementations (filter-then-verify)."""


class UnknownMethodError(MethodError):
    """A Method M name was requested that is not registered."""

    def __init__(self, name: str, available: list[str] | None = None) -> None:
        msg = f"unknown Method M {name!r}"
        if available:
            msg += f"; available: {', '.join(sorted(available))}"
        super().__init__(msg)
        self.name = name


class CacheError(GraphCacheError):
    """Errors raised by the cache kernel (policies, window, admission)."""


class UnknownPolicyError(CacheError):
    """A replacement policy name was requested that is not registered."""

    def __init__(self, name: str, available: list[str] | None = None) -> None:
        msg = f"unknown replacement policy {name!r}"
        if available:
            msg += f"; available: {', '.join(sorted(available))}"
        super().__init__(msg)
        self.name = name


class CacheCapacityError(CacheError):
    """The cache was configured with an invalid capacity."""


class WorkloadError(GraphCacheError):
    """Errors raised by the workload model and generators."""


class ConfigurationError(GraphCacheError):
    """Invalid configuration supplied to the runtime or its components."""


class ServerError(GraphCacheError):
    """Errors raised by the query serving subsystem."""


class AdmissionRejectedError(ServerError):
    """The server rejected a request up front (backpressure; HTTP 429).

    Two admission strategies raise it: the bounded request queue filling up
    (``shard is None``), and cost-based shard-aware admission deciding that
    one *specific* shard's outstanding estimated cost budget is exhausted
    (``shard`` names the hot shard; queries not touching it keep flowing).
    """

    def __init__(self, queue_depth: int, shard: int | None = None,
                 estimated_cost_seconds: float | None = None) -> None:
        if estimated_cost_seconds is None:
            message = f"request rejected: admission queue is full ({queue_depth} queued)"
        else:
            # an unsharded system prices itself as one pool: don't name a
            # shard that doesn't exist in the operator-facing message
            subject = f"shard {shard}" if shard is not None else "system"
            message = (
                f"request rejected: {subject} cost budget exhausted "
                f"(~{estimated_cost_seconds * 1000.0:.1f}ms estimated, "
                f"{queue_depth} queued)"
            )
        super().__init__(message)
        self.queue_depth = queue_depth
        self.shard = shard
        self.estimated_cost_seconds = estimated_cost_seconds


class ShardWorkerError(ServerError):
    """A shard worker process died (or went unreachable) and stayed down.

    Raised by the process shard backend once a worker cannot be reached *and*
    the bounded respawn budget is exhausted (or the replacement failed to
    start).  Retryable on the wire: a fresh request may land after an
    operator restores capacity, and the answers already returned are
    unaffected — a respawned worker re-executes only the failed queries.
    """

    def __init__(self, shard: int, reason: str, respawns: int = 0) -> None:
        super().__init__(
            f"shard {shard} worker process failed ({respawns} respawn(s) used): {reason}"
        )
        self.shard = shard
        self.respawns = respawns


class DeadlineExceededError(ServerError):
    """A query's deadline expired before (or while) the pipeline served it.

    Raised by the request batcher when it sheds an expired entry at
    batch-build time instead of executing dead work, and reconstructed on
    the client from the wire ``timeout`` code (HTTP 504) — the same code the
    server's request-timeout path has always spoken, so pre-deadline clients
    need no changes.  Retryable: a fresh attempt with a fresh deadline may
    well succeed once the queue drains.
    """

    def __init__(self, message: str = "query deadline exceeded",
                 deadline_seconds: float | None = None) -> None:
        super().__init__(message)
        self.deadline_seconds = deadline_seconds


class ServerClosedError(ServerError):
    """A request arrived while the server/batcher was draining or stopped."""


class RecordingStateError(ServerError):
    """Trace recording started while active, or stopped while idle (409)."""


class ProtocolError(ServerError):
    """A request or response payload violated the JSON wire protocol."""
