"""Workload model: an ordered sequence of queries plus its provenance.

The demo lets end-users pick or create workloads ("queries are uniformly
selected from a pattern pool"); this module provides the corresponding
first-class object, including JSON round-tripping so workloads can be saved,
shared and replayed exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import WorkloadError
from repro.graph.graph import Graph
from repro.query_model import Query, QueryType


@dataclass
class Workload:
    """An ordered list of queries with a name and generation metadata."""

    name: str
    queries: list[Query] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, index: int) -> Query:
        return self.queries[index]

    @property
    def query_types(self) -> set[QueryType]:
        """The set of query semantics appearing in the workload."""
        return {query.query_type for query in self.queries}

    def summary(self) -> dict[str, object]:
        """Size and shape summary of the workload."""
        if not self.queries:
            return {"name": self.name, "num_queries": 0}
        sizes = [query.num_vertices for query in self.queries]
        return {
            "name": self.name,
            "num_queries": len(self.queries),
            "min_vertices": min(sizes),
            "max_vertices": max(sizes),
            "avg_vertices": sum(sizes) / len(sizes),
            "query_types": sorted(t.value for t in self.query_types),
            "metadata": dict(self.metadata),
        }

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Serialise the workload (queries keep their pattern graphs)."""
        return {
            "name": self.name,
            "metadata": self.metadata,
            "queries": [
                {
                    "query_type": query.query_type.value,
                    "graph": query.graph.to_dict(),
                    "metadata": query.metadata,
                }
                for query in self.queries
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Workload":
        """Rebuild a workload serialised by :meth:`to_dict`."""
        if "queries" not in payload:
            raise WorkloadError("workload payload has no 'queries' field")
        queries = [
            Query(
                graph=Graph.from_dict(item["graph"]),
                query_type=QueryType.parse(item.get("query_type", "subgraph")),
                metadata=item.get("metadata", {}),
            )
            for item in payload["queries"]
        ]
        return cls(name=payload.get("name", "workload"), queries=queries, metadata=payload.get("metadata", {}))

    def save(self, path: str | Path) -> None:
        """Write the workload to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Workload":
        """Load a workload from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
