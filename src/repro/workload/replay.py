"""Trace-replay load generation for the query server (plus the v1 client).

Two halves:

* :class:`QueryServerClient` — the original client class, now a thin
  v1-pinned facade over :class:`repro.api.remote.RemoteGraphService` for
  callers that want raw payload dicts.  New code should use
  :class:`~repro.api.remote.RemoteGraphService` (typed envelopes, negotiated
  protocol) or :class:`~repro.api.aio.AsyncRemoteGraphService` directly.
* :func:`replay_trace` — replays a recorded trace (a :class:`Workload`, which
  already JSON round-trips via ``save``/``load``) against a server from
  ``num_threads`` concurrent clients, either *closed-loop* (send as fast as
  responses return) or *open-loop* at a target QPS (each query has a fixed
  send deadline — queue buildup then shows up as latency, the way real
  traffic behaves).  The result records per-query status/latency so tail
  percentiles and rejection (429) rates fall out directly.  The client may
  speak either wire version; payload reads are version-agnostic.  The
  asyncio counterpart (thousands of connections in one process) is
  :func:`repro.api.aio.replay_trace_async`, which returns the same
  :class:`ReplayResult`.

Trace *generation* reuses the workload generators: :func:`generate_trace`
maps the three canonical skews the paper's experiments vary — ``uniform``,
``zipfian``, ``drifting`` — onto :class:`WorkloadMix` settings, and can
interleave subgraph/supergraph semantics (``query_type="mixed"``).
Everything is deterministic under a fixed seed.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass, field

from repro.api.envelopes import as_request, wire_error_message, wire_result
from repro.api.remote import RemoteGraphService
from repro.errors import ServerError, WorkloadError
from repro.graph.graph import Graph
from repro.query_model import Query, QueryType
from repro.workload.generator import WorkloadGenerator, WorkloadMix
from repro.workload.workload import Workload

#: The skew names ``generate_trace`` accepts, mapped to mix settings.
TRACE_SKEWS = ("uniform", "zipfian", "drifting")


def parse_priority_mix(spec: str) -> list[tuple[int, float]]:
    """Parse ``"0:0.8,10:0.2"`` into ``[(priority, weight), ...]``.

    The CLI's ``--priority-mix`` format: comma-separated ``priority:weight``
    pairs.  Weights need not sum to 1 — they are relative.
    """
    mix: list[tuple[int, float]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        priority_text, _, weight_text = part.partition(":")
        try:
            priority = int(priority_text)
            weight = float(weight_text) if weight_text else 1.0
        except ValueError:
            raise WorkloadError(
                f"malformed priority mix entry {part!r}; "
                "expected 'priority:weight' pairs like '0:0.8,10:0.2'"
            ) from None
        if weight <= 0:
            raise WorkloadError(f"priority mix weight must be positive: {part!r}")
        mix.append((priority, weight))
    if not mix:
        raise WorkloadError(f"empty priority mix {spec!r}")
    return mix


def with_serving_fields(
    queries: list,
    deadline_seconds: float | None = None,
    priority_mix: str | list[tuple[int, float]] | None = None,
    seed: int = 2018,
) -> list:
    """Stamp deadline/priority onto a trace's queries as request envelopes.

    With neither knob set the queries pass through untouched.  A priority
    mix draws each query's band from the weighted choices deterministically
    under ``seed``, so two replays of the same trace (e.g. a deadline arm
    and its no-deadline reference) agree on which query got which priority.
    """
    if deadline_seconds is None and not priority_mix:
        return list(queries)
    priorities = None
    if priority_mix:
        mix = (parse_priority_mix(priority_mix)
               if isinstance(priority_mix, str) else list(priority_mix))
        rng = random.Random(seed)
        priorities = rng.choices(
            [priority for priority, _ in mix],
            weights=[weight for _, weight in mix],
            k=len(queries),
        )
    requests = []
    for index, query in enumerate(queries):
        request = as_request(query)
        if deadline_seconds is not None:
            request.deadline_seconds = deadline_seconds
        if priorities is not None:
            request.priority = priorities[index]
        requests.append(request)
    return requests


class QueryServerClient(RemoteGraphService):
    """Legacy JSON-protocol client: v1 wire, raw payload dicts.

    Kept for compatibility (and for exercising the v1 auto-upgrade path end
    to end); everything it did is now provided by its base class.  Migration:
    ``run_query``/``metrics`` return typed envelopes on
    :class:`RemoteGraphService` (``QueryResponse`` / ``MetricsSnapshot``)
    instead of the raw dicts returned here.
    """

    backend = "remote-sync-v1"

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        super().__init__(host, port, timeout=timeout, protocol_version=1)

    def run_query(
        self, query: Query | Graph, query_type: QueryType | str = QueryType.SUBGRAPH
    ) -> dict:
        """Execute one query, raising :class:`ServerError` on any non-200."""
        status, payload = self.send(query, query_type)
        if status != 200:
            raise ServerError(
                f"server replied {status}: {payload.get('error', payload)}"
            )
        return payload

    def metrics(self) -> dict:
        """The server's raw ``/metrics`` snapshot (a plain dict)."""
        return self._ok("GET", "/metrics")


# ---------------------------------------------------------------------- #
# trace replay
# ---------------------------------------------------------------------- #
@dataclass
class ReplayEvent:
    """Outcome of one replayed query."""

    index: int
    status: int
    latency_seconds: float
    answer: frozenset | None = None
    batch_size: int | None = None
    queue_seconds: float | None = None
    error: str | None = None
    #: Priority band the replayed request carried (None when unset).
    priority: int | None = None


@dataclass
class ReplayResult:
    """Everything one trace replay observed, in trace order."""

    trace_name: str
    events: list[ReplayEvent] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    target_qps: float | None = None
    num_threads: int = 1
    #: Peak open connections of an async replay (None for thread-based runs,
    #: where connections == threads).
    num_connections: int | None = None

    @property
    def served(self) -> int:
        return sum(1 for event in self.events if event.status == 200)

    @property
    def rejected(self) -> int:
        return sum(1 for event in self.events if event.status == 429)

    @property
    def timeouts(self) -> int:
        """Requests answered 504: request timeout or deadline shed."""
        return sum(1 for event in self.events if event.status == 504)

    @property
    def errors(self) -> int:
        return sum(1 for e in self.events if e.status not in (200, 429, 504))

    @property
    def achieved_qps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.served / self.elapsed_seconds

    def answers(self) -> list[frozenset | None]:
        """Answer set per trace position (``None`` for non-200 responses)."""
        return [event.answer for event in self.events]

    def latency_percentiles(self, percentiles: tuple[int, ...] = (50, 95, 99)) -> dict[str, float]:
        """Nearest-rank latency percentiles (seconds) over served queries.

        Nearest-rank: the p-th percentile of n samples is the value at sorted
        rank ``ceil(p/100 * n)`` (1-based), so p50 of [1, 2, 3, 4] is 2.
        """
        latencies = sorted(
            event.latency_seconds for event in self.events if event.status == 200
        )
        if not latencies:
            return {f"p{p}": 0.0 for p in percentiles}
        return {
            f"p{p}": latencies[
                min(len(latencies), max(1, math.ceil(len(latencies) * p / 100))) - 1
            ]
            for p in percentiles
        }

    def summary(self) -> dict[str, object]:
        """One-row summary for tables and BENCH reports."""
        tails = self.latency_percentiles()
        return {
            "trace": self.trace_name,
            "queries": len(self.events),
            "served": self.served,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "achieved_qps": round(self.achieved_qps, 1),
            "target_qps": self.target_qps,
            "num_threads": self.num_threads,
            "num_connections": (
                self.num_connections if self.num_connections is not None
                else self.num_threads
            ),
            "p50_ms": round(tails["p50"] * 1000.0, 3),
            "p95_ms": round(tails["p95"] * 1000.0, 3),
            "p99_ms": round(tails["p99"] * 1000.0, 3),
        }


def replay_trace(
    client: RemoteGraphService,
    trace: Workload,
    target_qps: float | None = None,
    num_threads: int = 4,
    deadline_seconds: float | None = None,
    priority_mix: str | list[tuple[int, float]] | None = None,
) -> ReplayResult:
    """Replay ``trace`` against the server from concurrent client threads.

    ``client`` is any sync service client with the ``send``/``close``
    transport surface — a :class:`~repro.api.remote.RemoteGraphService`
    (negotiated v2 envelopes) or the legacy v1-pinned
    :class:`QueryServerClient`; responses are read version-agnostically.

    ``target_qps=None`` runs closed-loop (each thread sends its next query as
    soon as the previous answer returns); a positive value runs open-loop:
    query *i* is released at ``i / target_qps`` seconds after the start, so a
    server slower than the offered load accumulates queue delay (and 429s)
    instead of silently throttling the generator.

    ``deadline_seconds`` stamps a per-query deadline on every request (the
    server sheds work it cannot start in time: 504 lines show up under
    ``timeouts``, never as errors); ``priority_mix`` — ``"0:0.8,10:0.2"`` or
    ``[(priority, weight), ...]`` — assigns priority bands deterministically
    (v2 envelope fields; a v1-pinned client drops them on the wire).
    """
    if target_qps is not None and target_qps <= 0:
        raise WorkloadError("target_qps must be positive (or None for closed-loop)")
    if num_threads < 1:
        raise WorkloadError("num_threads must be at least 1")
    queries = with_serving_fields(list(trace), deadline_seconds=deadline_seconds,
                                  priority_mix=priority_mix)
    events: list[ReplayEvent | None] = [None] * len(queries)
    cursor = iter(range(len(queries)))
    cursor_lock = threading.Lock()
    start = time.perf_counter()

    def worker() -> None:
        while True:
            with cursor_lock:
                index = next(cursor, None)
            if index is None:
                client.close()
                return
            if target_qps is not None:
                release = start + index / target_qps
                delay = release - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            sent = time.perf_counter()
            priority = getattr(queries[index], "priority", None)
            try:
                status, payload = client.send(queries[index])
            except Exception as exc:  # transport failure, not a server verdict
                events[index] = ReplayEvent(
                    index=index, status=-1,
                    latency_seconds=time.perf_counter() - sent,
                    error=f"{type(exc).__name__}: {exc}",
                    priority=priority,
                )
                continue
            latency = time.perf_counter() - sent
            body = wire_result(payload) if status == 200 else {}
            server_meta = body.get("server", {})
            events[index] = ReplayEvent(
                index=index,
                status=status,
                latency_seconds=latency,
                answer=frozenset(body["answer"]) if status == 200 else None,
                batch_size=server_meta.get("batch_size"),
                queue_seconds=server_meta.get("queue_seconds"),
                error=None if status == 200 else wire_error_message(payload),
                priority=priority,
            )

    threads = [
        threading.Thread(target=worker, name=f"gc-loadgen-{i}", daemon=True)
        for i in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return ReplayResult(
        trace_name=trace.name,
        events=[event for event in events if event is not None],
        elapsed_seconds=time.perf_counter() - start,
        target_qps=target_qps,
        num_threads=num_threads,
    )


# ---------------------------------------------------------------------- #
# trace generation
# ---------------------------------------------------------------------- #
def _skew_mix(skew: str, query_type: QueryType) -> WorkloadMix:
    if skew == "uniform":
        return WorkloadMix(zipf_alpha=0.0, query_type=query_type)
    if skew == "zipfian":
        return WorkloadMix(zipf_alpha=1.2, repeat_fraction=0.4, fresh_fraction=0.1,
                           shrink_fraction=0.25, extend_fraction=0.25,
                           query_type=query_type)
    if skew == "drifting":
        return WorkloadMix(zipf_alpha=1.2, drift=True, repeat_fraction=0.35,
                           shrink_fraction=0.25, extend_fraction=0.25,
                           fresh_fraction=0.15, query_type=query_type)
    raise WorkloadError(
        f"unknown trace skew {skew!r}; available: {', '.join(TRACE_SKEWS)}"
    )


def generate_trace(
    dataset: list[Graph],
    num_queries: int,
    skew: str = "uniform",
    query_type: QueryType | str = "subgraph",
    seed: int | None = 2018,
    name: str | None = None,
) -> Workload:
    """Generate a replayable trace with one of the canonical skews.

    ``query_type`` may be ``"subgraph"``, ``"supergraph"`` or ``"mixed"``
    (alternating semantics drawn from two independent pattern pools, the
    shape the equivalence tests use).  Traces are plain workloads: save with
    :meth:`Workload.save`, reload with :meth:`Workload.load`, replay with
    :func:`replay_trace` — bit-identical under the same seed.
    """
    trace_name = name or f"trace-{skew}-{num_queries}q"
    if isinstance(query_type, str) and query_type.lower() == "mixed":
        half = num_queries // 2
        sub = generate_trace(dataset, num_queries - half, skew=skew,
                             query_type=QueryType.SUBGRAPH, seed=seed)
        sup = generate_trace(dataset, half, skew=skew,
                             query_type=QueryType.SUPERGRAPH,
                             seed=None if seed is None else seed + 1)
        queries: list[Query] = []
        for position in range(num_queries):
            source = sub.queries if position % 2 == 0 else sup.queries
            queries.append(source[position // 2])
        metadata = {"skew": skew, "query_type": "mixed", "seed": seed}
        return Workload(name=trace_name, queries=queries, metadata=metadata)
    mix = _skew_mix(skew, QueryType.parse(query_type))
    generator = WorkloadGenerator(dataset, rng=seed)
    trace = generator.generate(num_queries, mix=mix, name=trace_name)
    trace.metadata.update({"skew": skew, "seed": seed})
    return trace
