"""Workload generators.

Queries are generated "from graphs in dataset following established
principles": base patterns are connected subgraphs extracted from dataset
graphs; a workload then draws from a *pattern pool* with a popularity
distribution, and derives related queries that exhibit the sub/super
relationships GC exploits:

* **repeat** — re-issue a pool pattern verbatim (exact-match hits);
* **shrink** — take a connected subgraph of a pool pattern (sub-case hits:
  the new query is a subgraph of a previously seen one);
* **extend** — grow a pool pattern with extra vertices (super-case hits);
* **fresh**  — extract a brand new pattern from the dataset (no relationship).

The mix of these four, the popularity skew (Zipf) and an optional popularity
*drift* halfway through the workload are the workload characteristics the
paper's experiment I varies across ("different cache replacement policies
take the lead depending on the workload and dataset characteristics").
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.graph.graph import Graph
from repro.graph.operations import extend_graph, random_connected_subgraph, shrink_graph
from repro.query_model import Query, QueryType
from repro.workload.workload import Workload


@dataclass
class WorkloadMix:
    """Declarative description of a workload's characteristics."""

    #: Fractions of the four derivation modes (normalised if they don't sum to 1).
    repeat_fraction: float = 0.25
    shrink_fraction: float = 0.25
    extend_fraction: float = 0.25
    fresh_fraction: float = 0.25
    #: Zipf exponent over the pattern pool; 0 means uniform selection.
    zipf_alpha: float = 0.0
    #: Number of base patterns in the pool.
    pool_size: int = 20
    #: Pattern sizes (vertices) for pool patterns and fresh queries.
    min_pattern_vertices: int = 6
    max_pattern_vertices: int = 14
    #: How many vertices shrink/extend remove/add (at least 1).
    resize_vertices: int = 3
    #: Query semantics of the workload.
    query_type: QueryType = QueryType.SUBGRAPH
    #: When True, the popular end of the pool flips halfway through the
    #: workload (popularity drift — stresses adaptive policies).
    drift: bool = False
    #: Free-form extra metadata copied into the workload.
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.query_type = QueryType.parse(self.query_type)

    def normalised_fractions(self) -> tuple[float, float, float, float]:
        """The four mode fractions, normalised to sum to 1."""
        parts = (
            max(0.0, self.repeat_fraction),
            max(0.0, self.shrink_fraction),
            max(0.0, self.extend_fraction),
            max(0.0, self.fresh_fraction),
        )
        total = sum(parts)
        if total <= 0:
            raise WorkloadError("at least one workload fraction must be positive")
        return tuple(part / total for part in parts)  # type: ignore[return-value]


#: Ready-made mixes used by the benchmarks (E1) and the examples.
STANDARD_MIXES: dict[str, WorkloadMix] = {
    "uniform": WorkloadMix(zipf_alpha=0.0),
    "popular": WorkloadMix(zipf_alpha=1.2, repeat_fraction=0.4, fresh_fraction=0.1,
                           shrink_fraction=0.25, extend_fraction=0.25),
    "sub-heavy": WorkloadMix(shrink_fraction=0.6, repeat_fraction=0.1,
                             extend_fraction=0.1, fresh_fraction=0.2),
    "super-heavy": WorkloadMix(extend_fraction=0.6, repeat_fraction=0.1,
                               shrink_fraction=0.1, fresh_fraction=0.2),
    "drift": WorkloadMix(zipf_alpha=1.2, drift=True, repeat_fraction=0.35,
                         shrink_fraction=0.25, extend_fraction=0.25, fresh_fraction=0.15),
    "fresh": WorkloadMix(fresh_fraction=0.9, repeat_fraction=0.1,
                         shrink_fraction=0.0, extend_fraction=0.0),
}


class WorkloadGenerator:
    """Generates workloads from a dataset according to a :class:`WorkloadMix`."""

    def __init__(self, dataset: list[Graph], rng: _random.Random | int | None = None) -> None:
        if not dataset:
            raise WorkloadError("a non-empty dataset is required to generate workloads")
        self.dataset = list(dataset)
        self.rng = rng if isinstance(rng, _random.Random) else _random.Random(rng)
        self._label_pool = sorted({label for graph in self.dataset for label in graph.label_set()})

    # ------------------------------------------------------------------ #
    # pattern pool
    # ------------------------------------------------------------------ #
    def build_pattern_pool(self, mix: WorkloadMix) -> list[Graph]:
        """Extract ``mix.pool_size`` base patterns from the dataset."""
        pool: list[Graph] = []
        for _ in range(mix.pool_size):
            pool.append(self._fresh_pattern(mix))
        return pool

    def _fresh_pattern(self, mix: WorkloadMix) -> Graph:
        source = self.dataset[self.rng.randrange(len(self.dataset))]
        size = self.rng.randint(
            min(mix.min_pattern_vertices, source.num_vertices),
            min(mix.max_pattern_vertices, source.num_vertices),
        )
        return random_connected_subgraph(source, size, rng=self.rng)

    def _pick_from_pool(self, pool_size: int, mix: WorkloadMix, flipped: bool) -> int:
        if mix.zipf_alpha <= 0:
            return self.rng.randrange(pool_size)
        weights = [1.0 / (rank + 1) ** mix.zipf_alpha for rank in range(pool_size)]
        index = self.rng.choices(range(pool_size), weights=weights, k=1)[0]
        if flipped:
            index = pool_size - 1 - index
        return index

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def generate(
        self,
        num_queries: int,
        mix: WorkloadMix | str | None = None,
        name: str | None = None,
        pattern_pool: list[Graph] | None = None,
    ) -> Workload:
        """Generate a workload of ``num_queries`` queries."""
        if num_queries < 0:
            raise WorkloadError("num_queries must be non-negative")
        if isinstance(mix, str):
            try:
                mix = STANDARD_MIXES[mix]
            except KeyError:
                raise WorkloadError(
                    f"unknown standard mix {mix!r}; available: {', '.join(sorted(STANDARD_MIXES))}"
                ) from None
        mix = mix or WorkloadMix()
        pool = list(pattern_pool) if pattern_pool is not None else self.build_pattern_pool(mix)
        fractions = mix.normalised_fractions()
        modes = ("repeat", "shrink", "extend", "fresh")

        queries: list[Query] = []
        for position in range(num_queries):
            flipped = mix.drift and position >= num_queries // 2
            mode = self.rng.choices(modes, weights=fractions, k=1)[0]
            base_index = self._pick_from_pool(len(pool), mix, flipped)
            base = pool[base_index]
            graph = self._derive(base, mode, mix)
            queries.append(
                Query(
                    graph=graph,
                    query_type=mix.query_type,
                    metadata={"mode": mode, "pool_index": base_index},
                )
            )
        workload_name = name or f"workload-{len(queries)}q"
        metadata = {
            "mix": {
                "repeat": fractions[0],
                "shrink": fractions[1],
                "extend": fractions[2],
                "fresh": fractions[3],
                "zipf_alpha": mix.zipf_alpha,
                "drift": mix.drift,
            },
            "pool_size": len(pool),
            "query_type": mix.query_type.value,
            **mix.metadata,
        }
        return Workload(name=workload_name, queries=queries, metadata=metadata)

    def _derive(self, base: Graph, mode: str, mix: WorkloadMix) -> Graph:
        if mode == "repeat":
            return base.copy()
        if mode == "shrink":
            target = max(2, base.num_vertices - max(1, mix.resize_vertices))
            if target >= base.num_vertices:
                return base.copy()
            return shrink_graph(base, target, rng=self.rng)
        if mode == "extend":
            return extend_graph(
                base, max(1, mix.resize_vertices), labels=self._label_pool, rng=self.rng
            )
        # fresh
        return self._fresh_pattern(mix)


def generate_standard_workloads(
    dataset: list[Graph],
    num_queries: int,
    rng: _random.Random | int | None = None,
    names: list[str] | None = None,
) -> dict[str, Workload]:
    """Generate one workload per standard mix (used by experiment E1)."""
    generator = WorkloadGenerator(dataset, rng=rng)
    selected = names or list(STANDARD_MIXES)
    workloads: dict[str, Workload] = {}
    for name in selected:
        workloads[name] = generator.generate(num_queries, mix=name, name=name)
    return workloads
