"""Workload model, generators and runners."""

from repro.workload.generator import (
    STANDARD_MIXES,
    WorkloadGenerator,
    WorkloadMix,
    generate_standard_workloads,
)
from repro.workload.runner import (
    WorkloadRunResult,
    compare_methods,
    compare_policies,
    run_with_policy,
    run_workload,
)
from repro.workload.workload import Workload

__all__ = [
    "Workload",
    "WorkloadMix",
    "WorkloadGenerator",
    "STANDARD_MIXES",
    "generate_standard_workloads",
    "WorkloadRunResult",
    "run_workload",
    "run_with_policy",
    "compare_policies",
    "compare_methods",
]
