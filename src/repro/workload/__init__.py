"""Workload model, generators, runners and server trace replay."""

from repro.workload.generator import (
    STANDARD_MIXES,
    WorkloadGenerator,
    WorkloadMix,
    generate_standard_workloads,
)
from repro.workload.replay import (
    TRACE_SKEWS,
    QueryServerClient,
    ReplayEvent,
    ReplayResult,
    generate_trace,
    parse_priority_mix,
    replay_trace,
    with_serving_fields,
)
from repro.workload.runner import (
    WorkloadRunResult,
    compare_methods,
    compare_policies,
    run_with_policy,
    run_workload,
)
from repro.workload.workload import Workload

__all__ = [
    "Workload",
    "WorkloadMix",
    "WorkloadGenerator",
    "STANDARD_MIXES",
    "generate_standard_workloads",
    "WorkloadRunResult",
    "run_workload",
    "run_with_policy",
    "compare_policies",
    "compare_methods",
    "QueryServerClient",
    "ReplayEvent",
    "ReplayResult",
    "replay_trace",
    "generate_trace",
    "parse_priority_mix",
    "with_serving_fields",
    "TRACE_SKEWS",
]
