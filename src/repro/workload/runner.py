"""Workload runner: execute a workload over GC and over baselines, compare.

This is the programmatic counterpart of the demo's "Workload Run" scenario
and the engine behind the benchmark harnesses: it runs a workload against a
:class:`~repro.runtime.system.GraphCacheSystem`, collects per-query reports,
and offers convenience functions that compare replacement policies
(experiment E1) or Methods M (experiment E7) on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.statistics import AggregateStatistics
from repro.graph.graph import Graph
from repro.methods.registry import make_method
from repro.isomorphism import make_matcher
from repro.runtime.config import GCConfig
from repro.runtime.report import QueryReport
from repro.runtime.system import GraphCacheSystem
from repro.workload.workload import Workload


@dataclass
class WorkloadRunResult:
    """Outcome of running one workload on one system configuration."""

    workload_name: str
    policy: str
    method: str
    reports: list[QueryReport] = field(default_factory=list)
    aggregate: AggregateStatistics = field(default_factory=AggregateStatistics)
    hit_percentages: list[float] = field(default_factory=list)
    evicted_entry_ids: list[int] = field(default_factory=list)
    cache_memory_bytes: int = 0
    index_memory_bytes: int = 0
    #: Concurrent query streams the workload ran with (1 = sequential).
    max_workers: int = 1
    #: Per-pipeline-stage latency rows (stage, total/mean seconds, share).
    stage_breakdown: list[dict[str, float]] = field(default_factory=list)
    #: Scatter planning metrics of a sharded system (mean fan-out, skip
    #: rates, summary health); ``None`` for a single-system run.
    scatter: dict | None = None

    @property
    def test_speedup(self) -> float:
        """Workload-level speedup in number of dataset sub-iso tests."""
        return self.aggregate.test_speedup

    @property
    def time_speedup(self) -> float:
        """Workload-level speedup in query time."""
        return self.aggregate.time_speedup

    def summary(self) -> dict[str, object]:
        """One-row summary used by comparison tables."""
        row: dict[str, object] = {
            "workload": self.workload_name,
            "policy": self.policy,
            "method": self.method,
            "queries": self.aggregate.num_queries,
            "hit_ratio": round(self.aggregate.hit_ratio, 3),
            "test_speedup": round(self.test_speedup, 3),
            "time_speedup": round(self.time_speedup, 3),
            "dataset_tests": self.aggregate.total_dataset_tests,
            "baseline_tests": self.aggregate.total_baseline_tests,
            "probe_tests": self.aggregate.total_probe_tests,
            "max_workers": self.max_workers,
        }
        if self.scatter is not None:
            row["scatter_mode"] = self.scatter["mode"]
            row["mean_fanout"] = self.scatter["stats"]["mean_fanout"]
        return row


def run_workload(
    system: GraphCacheSystem, workload: Workload, max_workers: int | None = None
) -> WorkloadRunResult:
    """Run every query of ``workload`` through ``system`` and summarise.

    ``max_workers`` (default: the system's ``config.max_workers``) selects
    the number of concurrent query streams; reports keep workload order
    either way.  ``system`` may equally be a
    :class:`~repro.sharding.system.ShardedGraphCacheSystem` — eviction and
    memory accounting then aggregate over every shard's cache — or a
    :class:`~repro.api.service.LocalGraphService` facade, which is unwrapped
    to the system it fronts (full per-query reports need the engine, not
    just the service envelope surface).
    """
    from repro.api.service import LocalGraphService

    if isinstance(system, LocalGraphService):
        system = system.system
    workers = system.config.max_workers if max_workers is None else max_workers
    if workers > 1:
        reports = system.run_queries_concurrent(list(workload), max_workers=workers)
    else:
        reports = [system.run_query(query) for query in workload]
    evicted: list[int] = []
    caches = system.all_caches()
    for cache in caches:
        cache.drain_maintenance()
        for report in cache.eviction_reports():
            evicted.extend(report.evicted)
    scatter_metrics = getattr(system, "scatter_metrics", None)
    return WorkloadRunResult(
        workload_name=workload.name,
        policy=system.config.replacement_policy if caches else "none",
        method=system.method.name,
        reports=reports,
        aggregate=system.aggregate(),
        hit_percentages=system.hit_percentages(),
        evicted_entry_ids=evicted,
        cache_memory_bytes=system.cache_memory_bytes(),
        index_memory_bytes=system.index_memory_bytes(),
        max_workers=workers,
        stage_breakdown=system.stage_breakdown(),
        scatter=scatter_metrics() if scatter_metrics is not None else None,
    )


def run_with_policy(
    dataset: list[Graph],
    workload: Workload,
    policy: str,
    config: GCConfig | None = None,
    warmup: Workload | None = None,
) -> WorkloadRunResult:
    """Build a fresh system with ``policy`` and run the workload on it.

    Honours ``config.num_shards``: with more than one shard the policy runs
    independently inside every shard's cache.
    """
    from repro.sharding import make_system

    base = config.to_dict() if config is not None else GCConfig().to_dict()
    base["replacement_policy"] = policy
    with make_system(dataset, GCConfig.from_dict(base)) as system:
        if warmup is not None:
            system.warm_cache(list(warmup))
        return run_workload(system, workload)


def compare_policies(
    dataset: list[Graph],
    workload: Workload,
    policies: list[str],
    config: GCConfig | None = None,
    warmup: Workload | None = None,
) -> dict[str, WorkloadRunResult]:
    """Run the same workload under each policy on identical fresh systems."""
    return {
        policy: run_with_policy(dataset, workload, policy, config=config, warmup=warmup)
        for policy in policies
    }


def compare_methods(
    dataset: list[Graph],
    workload: Workload,
    methods: list[str],
    config: GCConfig | None = None,
    method_options: dict[str, dict] | None = None,
) -> dict[str, dict[str, WorkloadRunResult]]:
    """For each Method M, run the workload with and without GC (experiment E7)."""
    results: dict[str, dict[str, WorkloadRunResult]] = {}
    method_options = method_options or {}
    base_config = config or GCConfig()
    for method_name in methods:
        per_method: dict[str, WorkloadRunResult] = {}
        for cache_enabled, label in ((False, "baseline"), (True, "gc")):
            payload = base_config.to_dict()
            payload["cache_enabled"] = cache_enabled
            payload["method"] = method_name
            payload["method_options"] = method_options.get(method_name, {})
            cfg = GCConfig.from_dict(payload)
            verifier = make_matcher(cfg.verifier)
            method = make_method(method_name, verifier=verifier, **cfg.method_options)
            with GraphCacheSystem(dataset, cfg, method=method) as system:
                per_method[label] = run_workload(system, workload)
        results[method_name] = per_method
    return results
