"""The Cache Manager: the graph cache proper.

:class:`GraphCache` ties together the store of cached queries, the cached
query index (screening), the sub/super case processors (probing), the window
manager (admission) and the replacement policy (eviction).  It knows nothing
about Method M or the dataset — the Query Processing Runtime
(:mod:`repro.runtime`) orchestrates both sides.

The public operations, in the order the runtime calls them per query:

1. :meth:`lookup`  — find exact/sub/super hits for a new query;
2. :meth:`credit`  — after the query completes, credit the contributing
   cached entries with the savings they produced (``update_cache_sta_info``);
3. :meth:`offer`   — offer the executed query for admission; when the window
   fills up the replacement policy runs (``update_cache_items``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.cache.entry import CacheEntry
from repro.cache.locks import ReadWriteLock
from repro.cache.maintenance import CacheMaintenanceWorker
from repro.cache.policies.base import (
    EvictionReport,
    HitContribution,
    HitKind,
    ReplacementPolicy,
)
from repro.cache.policies.registry import make_policy
from repro.cache.query_index import CachedQueryIndex
from repro.cache.store import CacheStore
from repro.cache.subcase import SubCaseProcessor
from repro.cache.supercase import SuperCaseProcessor
from repro.cache.window import WindowManager
from repro.errors import CacheCapacityError
from repro.features.base import FeatureExtractor
from repro.features.paths import PathFeatureExtractor
from repro.graph.canonical import definitely_isomorphic
from repro.graph.graph import Graph
from repro.index.base import GraphId
from repro.isomorphism.base import SubgraphMatcher
from repro.isomorphism.vf2 import VF2Matcher
from repro.query_model import Query, QueryType


@dataclass
class CacheLookup:
    """Everything the cache found out about a new query."""

    query_id: int
    exact_entry: CacheEntry | None = None
    sub_hits: list[CacheEntry] = field(default_factory=list)
    super_hits: list[CacheEntry] = field(default_factory=list)
    probe_tests: int = 0
    probe_seconds: float = 0.0
    screened_sub_candidates: int = 0
    screened_super_candidates: int = 0

    @property
    def any_hit(self) -> bool:
        """True when the lookup produced at least one usable hit."""
        return bool(self.exact_entry or self.sub_hits or self.super_hits)


class GraphCache:
    """The GC cache kernel (Cache Manager + Query Processing helpers)."""

    def __init__(
        self,
        capacity: int = 50,
        policy: ReplacementPolicy | str = "HD",
        window_size: int = 10,
        min_tests_to_admit: int = 0,
        probe_matcher: SubgraphMatcher | None = None,
        feature_extractor: FeatureExtractor | None = None,
        max_sub_hits: int | None = None,
        max_super_hits: int | None = None,
        enable_sub_case: bool = True,
        enable_super_case: bool = True,
        memory_budget_bytes: int | None = None,
        async_maintenance: bool = False,
    ) -> None:
        if capacity < 1:
            raise CacheCapacityError("cache capacity must be at least 1")
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise CacheCapacityError("memory_budget_bytes must be positive when set")
        self.capacity = capacity
        #: Disabling sub/super cases degrades GC to a traditional
        #: exact-match-only cache — the baseline the paper contrasts with.
        self.enable_sub_case = enable_sub_case
        self.enable_super_case = enable_super_case
        #: Optional byte budget: admission shrinks the effective capacity so
        #: the resident entries stay within this many (approximate) bytes.
        self.memory_budget_bytes = memory_budget_bytes
        self.policy = policy if isinstance(policy, ReplacementPolicy) else make_policy(policy)
        self.store = CacheStore()
        self.window = WindowManager(window_size=window_size, min_tests_to_admit=min_tests_to_admit)
        extractor = feature_extractor or PathFeatureExtractor(max_length=2)
        self.query_index = CachedQueryIndex(extractor)
        matcher = probe_matcher or VF2Matcher()
        self.sub_processor = SubCaseProcessor(matcher, max_hits=max_sub_hits)
        self.super_processor = SuperCaseProcessor(matcher, max_hits=max_super_hits)
        self._probe_matcher = matcher
        self._clock = 0
        self._eviction_reports: list[EvictionReport] = []
        #: Reader-writer lock guarding every cache structure: lookups share
        #: it, crediting/admission/replacement take it exclusively.
        self._lock = ReadWriteLock()
        self._clock_lock = threading.Lock()
        #: Optional cache-manager thread applying admissions off the query
        #: critical path (the paper's concurrent maintenance design).
        self.maintenance: CacheMaintenanceWorker | None = (
            CacheMaintenanceWorker(self) if async_maintenance else None
        )
        #: Callbacks invoked (outside the cache locks) whenever the resident
        #: entry set changed — admission, eviction, warm.  A sharded system
        #: hangs its shard-summary refresh here; callbacks must be cheap and
        #: must not mutate the cache.
        self._content_listeners: list = []

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def clock(self) -> int:
        """Logical clock: number of lookups performed so far."""
        return self._clock

    def tick(self) -> int:
        """Advance the logical clock (one tick per processed query)."""
        with self._clock_lock:
            self._clock += 1
            return self._clock

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def lookup(self, query: Query) -> CacheLookup:
        """Find exact, sub-case and super-case hits for a new query.

        Only cached entries with the *same query semantics* are considered:
        a cached subgraph query's answer set says nothing directly about a
        supergraph query, and vice versa.  Lookups hold the read lock, so
        any number of concurrent queries can probe the cache at once.
        """
        with self._lock.read_locked():
            return self._lookup_unlocked(query)

    def _lookup_unlocked(self, query: Query) -> CacheLookup:
        lookup = CacheLookup(query_id=query.query_id)
        if len(self.store) == 0:
            return lookup
        graph = query.graph
        same_type_ids = {
            entry.entry_id for entry in self.store if entry.query_type is query.query_type
        }
        if not same_type_ids:
            return lookup

        # exact match first: a confirmed exact hit answers the query outright
        for entry in self.query_index.exact_candidates(graph):
            if entry.entry_id not in same_type_ids:
                continue
            decided = definitely_isomorphic(graph, entry.graph)
            if decided is None:
                lookup.probe_tests += 1
                decided = self._probe_matcher.is_subgraph(graph, entry.graph) and (
                    graph.num_vertices == entry.graph.num_vertices
                    and graph.num_edges == entry.graph.num_edges
                )
            if decided:
                lookup.exact_entry = entry
                return lookup

        if not (self.enable_sub_case or self.enable_super_case):
            return lookup
        features = self.query_index.query_features(graph)
        sub_candidates = (
            [
                entry
                for entry in self.query_index.sub_case_candidates(graph, features)
                if entry.entry_id in same_type_ids
            ]
            if self.enable_sub_case
            else []
        )
        super_candidates = (
            [
                entry
                for entry in self.query_index.super_case_candidates(graph, features)
                if entry.entry_id in same_type_ids
            ]
            if self.enable_super_case
            else []
        )
        lookup.screened_sub_candidates = len(sub_candidates)
        lookup.screened_super_candidates = len(super_candidates)

        sub_outcome = self.sub_processor.find_hits(graph, sub_candidates)
        super_outcome = self.super_processor.find_hits(graph, super_candidates)
        lookup.sub_hits = sub_outcome.hits
        lookup.super_hits = super_outcome.hits
        lookup.probe_tests += sub_outcome.probe_tests + super_outcome.probe_tests
        lookup.probe_seconds += sub_outcome.probe_seconds + super_outcome.probe_seconds
        return lookup

    # ------------------------------------------------------------------ #
    # crediting
    # ------------------------------------------------------------------ #
    def credit(
        self,
        lookup: CacheLookup,
        per_hit_savings: dict[int, int],
        average_test_seconds: float,
        clock: int | None = None,
    ) -> None:
        """Credit every contributing entry with its savings.

        ``per_hit_savings`` maps entry id → dataset tests that hit saved on
        its own; the seconds credited are derived from the average cost of a
        dataset sub-iso test observed for this query (or, if no test ran,
        from the cost observed when the cached entry was originally created).
        """
        clock = self._clock if clock is None else clock
        contributions: list[tuple[CacheEntry, HitKind]] = []
        if lookup.exact_entry is not None:
            contributions.append((lookup.exact_entry, HitKind.EXACT))
        contributions.extend((entry, HitKind.SUB) for entry in lookup.sub_hits)
        contributions.extend((entry, HitKind.SUPER) for entry in lookup.super_hits)
        if not contributions:
            return
        with self._lock.write_locked():
            for entry, kind in contributions:
                tests_saved = per_hit_savings.get(entry.entry_id, 0)
                per_test_cost = average_test_seconds or entry.observed_test_cost
                contribution = HitContribution(
                    kind=kind,
                    clock=clock,
                    tests_saved=tests_saved,
                    seconds_saved=tests_saved * per_test_cost,
                )
                self.policy.update_cache_sta_info(entry, contribution)

    # ------------------------------------------------------------------ #
    # admission / replacement
    # ------------------------------------------------------------------ #
    def offer(
        self,
        query: Query,
        answer: set[GraphId],
        tests_performed: int,
        observed_test_cost: float,
        clock: int | None = None,
    ) -> EvictionReport | None:
        """Offer an executed query for admission through the window manager.

        In synchronous mode, returns the eviction report when the admission
        window flushed (i.e. the replacement policy actually ran), otherwise
        ``None``.  With async maintenance enabled the offer is enqueued for
        the maintenance worker and the return value is always ``None`` —
        admission happens off the query critical path.
        """
        clock = self._clock if clock is None else clock
        entry = CacheEntry(
            graph=query.graph,
            query_type=query.query_type,
            answer=frozenset(answer),
            admitted_clock=clock,
            observed_test_cost=observed_test_cost,
        )
        entry.stats.last_used_clock = clock
        worker = self.maintenance  # snapshot: close() may null the attribute
        if worker is not None:
            worker.submit(entry, tests_performed)
            return None
        return self.apply_offer(entry, tests_performed)

    def apply_offer(self, entry: CacheEntry, tests_performed: int) -> EvictionReport | None:
        """Apply one admission offer (window + replacement) under the write lock.

        This is the synchronous half of :meth:`offer`; the maintenance worker
        calls it from its own thread when async maintenance is enabled (so
        content listeners then also fire off the query critical path).
        """
        with self._lock.write_locked():
            batch = self.window.offer(entry, tests_performed)
            report = self._apply_replacement(batch) if batch is not None else None
        if report is not None:
            self._notify_content_changed()
        return report

    def flush_window(self) -> EvictionReport | None:
        """Force the pending window into the cache (end of a workload)."""
        self.drain_maintenance()
        with self._lock.write_locked():
            batch = self.window.flush()
            report = self._apply_replacement(batch) if batch else None
        if report is not None:
            self._notify_content_changed()
        return report

    def add_content_listener(self, listener) -> None:
        """Register a zero-argument callback fired after resident changes.

        Listeners run *outside* the cache locks, on whichever thread applied
        the change — the maintenance worker's thread under async
        maintenance, the query thread otherwise — so they may read the cache
        but must stay cheap on the synchronous path.
        """
        self._content_listeners.append(listener)

    def _notify_content_changed(self) -> None:
        for listener in self._content_listeners:
            listener()

    def drain_maintenance(self) -> None:
        """Wait for the maintenance worker to apply every pending offer."""
        worker = self.maintenance
        if worker is not None:
            worker.drain()

    def close(self) -> None:
        """Stop the maintenance worker (draining pending offers first)."""
        worker = self.maintenance
        self.maintenance = None
        if worker is not None:
            worker.stop(drain=True)

    def _apply_replacement(self, batch: list[CacheEntry]) -> EvictionReport:
        report = self.policy.update_cache_items(self.store, batch, self.capacity)
        # Reconcile the query index with the store: an entry admitted earlier
        # in this batch may have been evicted again by a later incoming entry,
        # so the report's admitted/evicted lists are not a reliable delta.
        self._reconcile_query_index()
        # The byte budget is checked after the index features are computed
        # (they are part of an entry's footprint).
        self._enforce_memory_budget(report)
        self._eviction_reports.append(report)
        return report

    def _reconcile_query_index(self) -> None:
        resident_ids = set(self.store.entry_ids())
        for entry in list(self.query_index.entries()):
            if entry.entry_id not in resident_ids:
                self.query_index.remove(entry.entry_id)
        for entry in self.store:
            if entry.entry_id not in self.query_index:
                self.query_index.add(entry)

    def _enforce_memory_budget(self, report: EvictionReport) -> None:
        """Evict least-useful residents until the byte budget is respected."""
        if self.memory_budget_bytes is None:
            return
        while len(self.store) > 1 and self.store.memory_bytes() > self.memory_budget_bytes:
            residents = self.store.entries()
            victim_positions = self.policy.get_replaced_content(residents, 1)
            if not victim_positions:
                break
            victim = residents[victim_positions[0]]
            self.store.remove(victim.entry_id)
            if victim.entry_id in self.query_index:
                self.query_index.remove(victim.entry_id)
            report.evicted.append(victim.entry_id)

    def warm(self, entries: list[CacheEntry]) -> None:
        """Pre-populate the cache (used to reproduce the demo's warm cache).

        Entries are inserted directly (bypassing the window) up to capacity.
        """
        added = 0
        with self._lock.write_locked():
            for entry in entries:
                if len(self.store) >= self.capacity:
                    break
                if entry.entry_id in self.store:
                    continue
                self.store.add(entry)
                self.query_index.add(entry)
                added += 1
        if added:
            self._notify_content_changed()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock.read_locked():
            return len(self.store)

    def entries(self) -> list[CacheEntry]:
        """All cached entries in insertion order."""
        with self._lock.read_locked():
            return self.store.entries()

    def eviction_reports(self) -> list[EvictionReport]:
        """Every replacement round performed so far."""
        with self._lock.read_locked():
            return list(self._eviction_reports)

    def memory_bytes(self) -> int:
        """Approximate footprint of the cache (entries + query index)."""
        with self._lock.read_locked():
            return self._memory_bytes_unlocked()

    def _memory_bytes_unlocked(self) -> int:
        return self.store.memory_bytes() + self.query_index.memory_bytes()

    def describe(self) -> dict[str, object]:
        """Configuration and population summary."""
        worker = self.maintenance  # snapshot: close() may null the attribute
        with self._lock.read_locked():
            description: dict[str, object] = {
                "capacity": self.capacity,
                "policy": self.policy.name,
                "window_size": self.window.window_size,
                "population": len(self.store),
                "memory_bytes": self._memory_bytes_unlocked(),
                "async_maintenance": worker is not None,
            }
        if worker is not None:
            stats = worker.stats()
            description["maintenance"] = {
                "submitted": stats.submitted,
                "processed": stats.processed,
                "errors": stats.errors,
                "last_error": stats.last_error,
            }
        return description
