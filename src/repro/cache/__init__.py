"""The GC cache kernel: entries, store, policies, window, hit processors."""

from repro.cache.entry import CacheEntry, EntryStatistics
from repro.cache.graph_cache import CacheLookup, GraphCache
from repro.cache.locks import ReadWriteLock
from repro.cache.maintenance import CacheMaintenanceWorker, MaintenanceStats
from repro.cache.policies import (
    EvictionReport,
    FIFOPolicy,
    HDPolicy,
    HitContribution,
    HitKind,
    LRUPolicy,
    PINCPolicy,
    PINPolicy,
    POPPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SizePolicy,
    available_policies,
    make_policy,
    register_policy,
)
from repro.cache.persistence import (
    entry_from_dict,
    entry_to_dict,
    load_cache_entries,
    restore_cache,
    save_cache,
)
from repro.cache.pruner import CandidateSetPruner, PruningResult
from repro.cache.query_index import CachedQueryIndex
from repro.cache.statistics import AggregateStatistics, QueryRecord, StatisticsManager
from repro.cache.store import CacheStore
from repro.cache.subcase import ProbeOutcome, SubCaseProcessor
from repro.cache.supercase import SuperCaseProcessor
from repro.cache.window import WindowManager, WindowSnapshot

__all__ = [
    "CacheEntry",
    "EntryStatistics",
    "CacheStore",
    "GraphCache",
    "CacheLookup",
    "ReadWriteLock",
    "CacheMaintenanceWorker",
    "MaintenanceStats",
    "CachedQueryIndex",
    "SubCaseProcessor",
    "SuperCaseProcessor",
    "ProbeOutcome",
    "CandidateSetPruner",
    "PruningResult",
    "WindowManager",
    "WindowSnapshot",
    "StatisticsManager",
    "QueryRecord",
    "AggregateStatistics",
    "ReplacementPolicy",
    "HitKind",
    "HitContribution",
    "EvictionReport",
    "LRUPolicy",
    "POPPolicy",
    "PINPolicy",
    "PINCPolicy",
    "HDPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "SizePolicy",
    "register_policy",
    "available_policies",
    "make_policy",
    "save_cache",
    "restore_cache",
    "load_cache_entries",
    "entry_to_dict",
    "entry_from_dict",
]
