"""Super Case Processor: detect cached queries *contained in* the new query.

A "super case" hit is a cached query ``h`` with ``h ⊆ g`` (the new query is a
supergraph of the cached one).  As with the sub case, candidates arrive
pre-screened and are confirmed here with sub-iso probe tests.
"""

from __future__ import annotations

import time

from repro.cache.entry import CacheEntry
from repro.cache.subcase import ProbeOutcome
from repro.graph.graph import Graph
from repro.isomorphism.base import SubgraphMatcher


class SuperCaseProcessor:
    """Confirms super-case hits (cached query ⊆ new query)."""

    def __init__(self, matcher: SubgraphMatcher, max_hits: int | None = None) -> None:
        self.matcher = matcher
        self.max_hits = max_hits

    def find_hits(self, query_graph: Graph, candidates: list[CacheEntry]) -> ProbeOutcome:
        """Probe each candidate with a ``cached ⊆ query`` sub-iso test.

        Candidates are probed largest-first: a larger contained cached query
        has a smaller answer set (for subgraph semantics), i.e. it prunes the
        candidate set harder, so confirming those first maximises the benefit
        when ``max_hits`` caps probing.
        """
        outcome = ProbeOutcome()
        start = time.perf_counter()
        for entry in sorted(
            candidates, key=lambda e: (-e.num_vertices, -e.num_edges, e.entry_id)
        ):
            outcome.probe_tests += 1
            if self.matcher.is_subgraph(entry.graph, query_graph):
                outcome.hits.append(entry)
                if self.max_hits is not None and len(outcome.hits) >= self.max_hits:
                    break
        outcome.probe_seconds = time.perf_counter() - start
        return outcome
