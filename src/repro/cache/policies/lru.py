"""LRU replacement: evict the least recently *useful* cached query.

"Recently used" for a graph cache means the last logical time the entry
produced a cache hit (or was admitted) — the well-established baseline the
paper bundles for comparison.
"""

from __future__ import annotations

from repro.cache.entry import CacheEntry
from repro.cache.policies.base import ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used graph replacement."""

    name = "LRU"

    def utility(self, entry: CacheEntry) -> float:
        """Utility is simply the last hit/admission clock (newer = keep)."""
        return float(max(entry.stats.last_used_clock, entry.admitted_clock))
