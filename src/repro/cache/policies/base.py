"""Replacement policy interface (the developer "Cache class" of Fig. 2(d)).

The paper's developer dashboard asks extension authors to override three
abstract methods; this class mirrors them with Pythonic names:

* ``update_cache_sta_info``  — update a cached graph's utility statistics when
  it contributes to accelerating another query;
* ``get_replaced_content``   — return the positions of the top-*x* cached
  graphs with the least utility (eviction candidates);
* ``update_cache_items``     — perform the actual replacement: evict the
  least-useful entries so newly executed queries fit.

Concrete policies normally only implement :meth:`utility`; the three methods
above have sensible default implementations driven by it.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.cache.entry import CacheEntry
from repro.cache.store import CacheStore
from repro.errors import CacheError


class HitKind(enum.Enum):
    """How a cached entry contributed to a new query."""

    SUB = "sub"        # the new query is a subgraph of the cached query
    SUPER = "super"    # the new query is a supergraph of the cached query
    EXACT = "exact"    # the new query is isomorphic to the cached query


@dataclass
class HitContribution:
    """The benefit one cached entry delivered to one new query."""

    kind: HitKind
    clock: int
    tests_saved: int = 0
    seconds_saved: float = 0.0


@dataclass
class EvictionReport:
    """Outcome of one replacement round (consumed by dashboards/tests)."""

    admitted: list[int] = field(default_factory=list)
    evicted: list[int] = field(default_factory=list)
    capacity: int = 0

    @property
    def num_admitted(self) -> int:
        return len(self.admitted)

    @property
    def num_evicted(self) -> int:
        return len(self.evicted)


class ReplacementPolicy(abc.ABC):
    """Base class for graph-cache replacement policies."""

    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # statistics maintenance
    # ------------------------------------------------------------------ #
    def update_cache_sta_info(self, entry: CacheEntry, contribution: HitContribution) -> None:
        """Fold one hit's benefit into the entry's statistics.

        The default bookkeeping is shared by every built-in policy; policies
        that need extra state can override and call ``super()``.
        """
        stats = entry.stats
        stats.last_used_clock = max(stats.last_used_clock, contribution.clock)
        stats.hit_count += 1
        if contribution.kind is HitKind.SUB:
            stats.sub_hits += 1
        elif contribution.kind is HitKind.SUPER:
            stats.super_hits += 1
        else:
            stats.exact_hits += 1
        stats.tests_saved += contribution.tests_saved
        stats.seconds_saved += contribution.seconds_saved

    # ------------------------------------------------------------------ #
    # ranking
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def utility(self, entry: CacheEntry) -> float:
        """Utility score of a cached entry: higher means more worth keeping."""

    def get_replaced_content(self, entries: Sequence[CacheEntry], count: int) -> list[int]:
        """Positions (indices into ``entries``) of the ``count`` least useful entries.

        Ties are broken towards evicting the least recently used, then the
        oldest admission, so every policy is deterministic.
        """
        if count <= 0:
            return []
        ranked = sorted(
            range(len(entries)),
            key=lambda position: (
                self.utility(entries[position]),
                entries[position].stats.last_used_clock,
                entries[position].admitted_clock,
                entries[position].entry_id,
            ),
        )
        return ranked[: min(count, len(entries))]

    # ------------------------------------------------------------------ #
    # replacement
    # ------------------------------------------------------------------ #
    def update_cache_items(
        self, store: CacheStore, incoming: Sequence[CacheEntry], capacity: int
    ) -> EvictionReport:
        """Admit ``incoming`` entries into ``store``, evicting as necessary.

        Admission is *utility aware*: when the cache is full, an incoming
        entry only displaces a resident entry whose utility is lower than the
        incoming entry's utility — otherwise the incoming entry is rejected.
        (A brand-new entry has whatever utility the policy assigns to its
        fresh statistics; for the built-in policies that makes new entries
        win against never-hit residents via recency tie-breaks.)
        """
        if capacity <= 0:
            raise CacheError("cache capacity must be positive")
        report = EvictionReport(capacity=capacity)
        for entry in incoming:
            if entry.entry_id in store:
                continue
            if len(store) < capacity:
                store.add(entry)
                report.admitted.append(entry.entry_id)
                continue
            residents = store.entries()
            victim_positions = self.get_replaced_content(residents, 1)
            if not victim_positions:
                continue
            victim = residents[victim_positions[0]]
            incoming_utility = self.utility(entry)
            victim_utility = self.utility(victim)
            should_replace = incoming_utility > victim_utility or (
                incoming_utility == victim_utility
                and entry.admitted_clock >= victim.admitted_clock
            )
            if should_replace:
                store.remove(victim.entry_id)
                store.add(entry)
                report.evicted.append(victim.entry_id)
                report.admitted.append(entry.entry_id)
        return report

    def describe(self) -> dict[str, object]:
        """Describe the policy for reports."""
        return {"name": self.name}
