"""HD replacement: the hybrid policy that coalesces PIN and PINC.

The paper's takeaway message: "When in doubt, use the HD replacement policy,
as it is attested performing better or on par with the best alternative."

Interpretation used here (documented substitution — the demo paper does not
spell out the formula): every resident entry is ranked once by PIN utility
(tests saved) and once by PINC utility (seconds saved); its HD score is the
sum of the two normalised ranks, with a small recency bonus so completely
stale entries lose ties.  Coalescing ranks rather than raw values makes the
policy robust to the very different magnitudes of the two utility signals,
which is exactly the "workload adaptive" behaviour the paper advertises.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cache.entry import CacheEntry
from repro.cache.policies.base import ReplacementPolicy


class HDPolicy(ReplacementPolicy):
    """Hybrid (PIN ⊕ PINC) graph replacement."""

    name = "HD"

    #: Weight of the recency component in the coalesced score.
    recency_weight: float = 0.1

    def utility(self, entry: CacheEntry) -> float:
        """Standalone utility (used for admission decisions).

        Combines the two raw signals; the rank-coalesced score is used when a
        full resident population is available (see
        :meth:`get_replaced_content`).
        """
        return (
            float(entry.stats.tests_saved)
            + entry.stats.seconds_saved
            + self.recency_weight * entry.stats.last_used_clock
        )

    def get_replaced_content(self, entries: Sequence[CacheEntry], count: int) -> list[int]:
        """Rank-coalesce PIN and PINC over the resident population."""
        if count <= 0 or not entries:
            return []
        n = len(entries)
        by_pin = sorted(range(n), key=lambda p: (entries[p].stats.tests_saved, entries[p].entry_id))
        by_pinc = sorted(
            range(n), key=lambda p: (entries[p].stats.seconds_saved, entries[p].entry_id)
        )
        pin_rank = {position: rank for rank, position in enumerate(by_pin)}
        pinc_rank = {position: rank for rank, position in enumerate(by_pinc)}
        max_clock = max((entry.stats.last_used_clock for entry in entries), default=0) or 1

        def coalesced(position: int) -> float:
            recency = entries[position].stats.last_used_clock / max_clock
            return pin_rank[position] + pinc_rank[position] + self.recency_weight * recency

        ranked = sorted(
            range(n),
            key=lambda position: (coalesced(position), entries[position].entry_id),
        )
        return ranked[: min(count, n)]
