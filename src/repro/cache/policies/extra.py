"""Additional baseline replacement policies (FIFO, RANDOM, SIZE).

These are not part of the five policies the paper bundles; they exist as the
kind of drop-in extensions §3.3 invites ("alternative graph cache replacement
strategies could be swiftly incorporated") and as extra baselines for the
policy-competition experiment.  All three reuse the default
``update_cache_sta_info`` / ``get_replaced_content`` / ``update_cache_items``
machinery of :class:`ReplacementPolicy` and only define a utility.
"""

from __future__ import annotations

import hashlib

from repro.cache.entry import CacheEntry
from repro.cache.policies.base import ReplacementPolicy


class FIFOPolicy(ReplacementPolicy):
    """Evict the cached query that was admitted first."""

    name = "FIFO"

    def utility(self, entry: CacheEntry) -> float:
        """Utility is simply the admission clock (older = evict first)."""
        return float(entry.admitted_clock)


class RandomPolicy(ReplacementPolicy):
    """Evict a pseudo-random cached query (deterministic per entry).

    The "randomness" is a hash of the entry id and a seed, so runs are
    reproducible and the ranking is stable across calls — which is all a
    baseline needs.
    """

    name = "RANDOM"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def utility(self, entry: CacheEntry) -> float:
        digest = hashlib.blake2b(
            f"{self.seed}:{entry.entry_id}".encode("utf-8"), digest_size=8
        ).digest()
        return float(int.from_bytes(digest, "big"))

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "seed": self.seed}


class SizePolicy(ReplacementPolicy):
    """Keep the largest cached query graphs (a crude PIN proxy).

    Larger cached queries are more selective containers: when they produce a
    sub-case hit their answer sets are tight, and as super-case hits they
    prune aggressively.  Useful as a statistics-free baseline.
    """

    name = "SIZE"

    def utility(self, entry: CacheEntry) -> float:
        return float(entry.num_vertices * 1000 + entry.num_edges)
