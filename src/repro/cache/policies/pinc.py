"""PINC replacement: utility measured in *sub-iso testing time saved*.

Each skipped sub-iso test can have a wildly different cost (the paper: "each
cache hit shall evoke various numbers of savings in sub-iso testing, which
could in turn render quite different query times").  PINC therefore accounts
utility in seconds of verification time saved rather than test counts.
"""

from __future__ import annotations

from repro.cache.entry import CacheEntry
from repro.cache.policies.base import ReplacementPolicy


class PINCPolicy(ReplacementPolicy):
    """Sub-iso-cost-savings based graph replacement."""

    name = "PINC"

    def utility(self, entry: CacheEntry) -> float:
        """Utility is the cumulative verification time (seconds) saved."""
        return entry.stats.seconds_saved
