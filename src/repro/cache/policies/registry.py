"""Registry of replacement policies (the pluggable "Cache class" mechanism).

New policies — e.g. one written by a developer following §3.3 of the paper —
register a factory here and immediately become available to the runtime
configuration, the workload runner and the benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.extra import FIFOPolicy, RandomPolicy, SizePolicy
from repro.cache.policies.hd import HDPolicy
from repro.cache.policies.lru import LRUPolicy
from repro.cache.policies.pin import PINPolicy
from repro.cache.policies.pinc import PINCPolicy
from repro.cache.policies.pop import POPPolicy
from repro.errors import UnknownPolicyError

PolicyFactory = Callable[..., ReplacementPolicy]

_REGISTRY: dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory, overwrite: bool = False) -> None:
    """Register a replacement-policy factory under a name."""
    key = name.upper()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"policy {name!r} is already registered")
    _REGISTRY[key] = factory


def available_policies() -> list[str]:
    """Names of all registered policies."""
    return sorted(_REGISTRY)


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a registered policy by name (case-insensitive)."""
    factory = _REGISTRY.get(name.upper())
    if factory is None:
        raise UnknownPolicyError(name, available_policies())
    return factory(**kwargs)


# the five policies bundled with GC
register_policy(LRUPolicy.name, LRUPolicy)
register_policy(POPPolicy.name, POPPolicy)
register_policy(PINPolicy.name, PINPolicy)
register_policy(PINCPolicy.name, PINCPolicy)
register_policy(HDPolicy.name, HDPolicy)

# extra baselines (see repro.cache.policies.extra)
register_policy(FIFOPolicy.name, FIFOPolicy)
register_policy(RandomPolicy.name, RandomPolicy)
register_policy(SizePolicy.name, SizePolicy)
