"""PIN replacement: utility measured in *sub-iso tests saved*.

The paper: "PIN and PINC where graph utilities go down to the level of
sub-iso test numbers and sub-iso testing costs, respectively".  PIN credits a
cached query with the number of dataset sub-iso tests it allowed later
queries to skip, so entries whose answer sets keep pruning many candidates
survive.
"""

from __future__ import annotations

from repro.cache.entry import CacheEntry
from repro.cache.policies.base import ReplacementPolicy


class PINPolicy(ReplacementPolicy):
    """Sub-iso-test-savings based graph replacement."""

    name = "PIN"

    def utility(self, entry: CacheEntry) -> float:
        """Utility is the cumulative number of dataset sub-iso tests saved."""
        return float(entry.stats.tests_saved)
