"""POP replacement: popularity-based eviction.

A cached query's utility is the number of times it has contributed a hit
(sub, super or exact) to later queries.  Popular patterns — the "broad then
narrow" query sequences the paper's introduction motivates — stay cached.
"""

from __future__ import annotations

from repro.cache.entry import CacheEntry
from repro.cache.policies.base import ReplacementPolicy


class POPPolicy(ReplacementPolicy):
    """Popularity (hit-count) based graph replacement."""

    name = "POP"

    def utility(self, entry: CacheEntry) -> float:
        """Utility is the total number of hits the entry has produced."""
        return float(entry.stats.hit_count)
