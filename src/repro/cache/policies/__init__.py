"""Graph-cache replacement policies: LRU, POP, PIN, PINC and HD."""

from repro.cache.policies.base import (
    EvictionReport,
    HitContribution,
    HitKind,
    ReplacementPolicy,
)
from repro.cache.policies.extra import FIFOPolicy, RandomPolicy, SizePolicy
from repro.cache.policies.hd import HDPolicy
from repro.cache.policies.lru import LRUPolicy
from repro.cache.policies.pin import PINPolicy
from repro.cache.policies.pinc import PINCPolicy
from repro.cache.policies.pop import POPPolicy
from repro.cache.policies.registry import (
    available_policies,
    make_policy,
    register_policy,
)

__all__ = [
    "ReplacementPolicy",
    "HitKind",
    "HitContribution",
    "EvictionReport",
    "LRUPolicy",
    "POPPolicy",
    "PINPolicy",
    "PINCPolicy",
    "HDPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "SizePolicy",
    "register_policy",
    "available_policies",
    "make_policy",
]
