"""Sub Case Processor: detect cached queries that *contain* the new query.

A "sub case" hit is a cached query ``h`` with ``g ⊆ h`` (the new query is a
subgraph of the cached one).  Candidates come pre-screened from the
:class:`~repro.cache.query_index.CachedQueryIndex`; this processor confirms
them with real sub-iso probe tests and reports the confirmed hits together
with the probing cost (GC's own overhead, which the statistics keep separate
from the dataset verification cost it saves).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cache.entry import CacheEntry
from repro.graph.graph import Graph
from repro.isomorphism.base import SubgraphMatcher


@dataclass
class ProbeOutcome:
    """Confirmed hits of one direction plus the probing cost."""

    hits: list[CacheEntry] = field(default_factory=list)
    probe_tests: int = 0
    probe_seconds: float = 0.0


class SubCaseProcessor:
    """Confirms sub-case hits (new query ⊆ cached query)."""

    def __init__(self, matcher: SubgraphMatcher, max_hits: int | None = None) -> None:
        self.matcher = matcher
        self.max_hits = max_hits

    def find_hits(self, query_graph: Graph, candidates: list[CacheEntry]) -> ProbeOutcome:
        """Probe each candidate with a ``query ⊆ cached`` sub-iso test.

        Candidates are probed smallest-first: smaller cached graphs are
        cheaper to test and (for the sub case) a smaller container is more
        selective, i.e. its answer set is a tighter guarantee.
        """
        outcome = ProbeOutcome()
        start = time.perf_counter()
        for entry in sorted(candidates, key=lambda e: (e.num_vertices, e.num_edges, e.entry_id)):
            outcome.probe_tests += 1
            if self.matcher.is_subgraph(query_graph, entry.graph):
                outcome.hits.append(entry)
                if self.max_hits is not None and len(outcome.hits) >= self.max_hits:
                    break
        outcome.probe_seconds = time.perf_counter() - start
        return outcome
