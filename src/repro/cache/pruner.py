"""Candidate Set Pruner: turn cache hits into candidate-set reductions.

Given Method M's candidate set ``C_M`` and the confirmed cache hits, the
pruner computes the quantities of the paper's Query Journey (Fig. 3):

* ``S``  — dataset graphs guaranteed to be answers (skip verification,
  include directly in the answer);
* ``S'`` — dataset graphs guaranteed NOT to be answers (skip verification,
  exclude);
* ``C``  — the remaining candidates that still require sub-iso verification.

Which hit direction produces guarantees versus exclusions depends on the
query semantics:

==============  =======================  ==========================
query type      sub case (g ⊆ h)         super case (h ⊆ g)
==============  =======================  ==========================
subgraph        answers(h) ⊆ answers(g)  answers(g) ⊆ answers(h)
                → guaranteed answers      → prune to answers(h)
supergraph      answers(g) ⊆ answers(h)  answers(h) ⊆ answers(g)
                → prune to answers(h)     → guaranteed answers
==============  =======================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.entry import CacheEntry
from repro.index.base import GraphId
from repro.query_model import QueryType


@dataclass
class PruningResult:
    """The Query Journey quantities for one query."""

    method_candidates: set[GraphId] = field(default_factory=set)   # C_M
    guaranteed_answers: set[GraphId] = field(default_factory=set)  # S
    guaranteed_non_answers: set[GraphId] = field(default_factory=set)  # S'
    remaining_candidates: set[GraphId] = field(default_factory=set)    # C
    #: Per-hit individual contribution (entry_id → number of dataset tests
    #: that hit would save on its own); used to credit utilities.
    per_hit_savings: dict[int, int] = field(default_factory=dict)

    @property
    def tests_saved(self) -> int:
        """Dataset sub-iso tests avoided thanks to the cache."""
        return len(self.method_candidates) - len(self.remaining_candidates)


class CandidateSetPruner:
    """Combines confirmed hits into the pruned candidate set."""

    def prune(
        self,
        query_type: QueryType | str,
        method_candidates: set[GraphId],
        sub_hits: list[CacheEntry],
        super_hits: list[CacheEntry],
    ) -> PruningResult:
        """Compute S, S' and C from Method M's candidates and the hits."""
        query_type = QueryType.parse(query_type)
        if query_type is QueryType.SUBGRAPH:
            guarantee_hits, prune_hits = sub_hits, super_hits
        else:
            guarantee_hits, prune_hits = super_hits, sub_hits

        result = PruningResult(method_candidates=set(method_candidates))

        # S: union of answer sets of the guarantee-direction hits
        for entry in guarantee_hits:
            result.guaranteed_answers |= set(entry.answer)

        # allowed: intersection of answer sets of the prune-direction hits
        allowed: set[GraphId] | None = None
        for entry in prune_hits:
            answer = set(entry.answer)
            allowed = answer if allowed is None else (allowed & answer)

        remaining = set(method_candidates) - result.guaranteed_answers
        if allowed is not None:
            excluded = remaining - allowed
            result.guaranteed_non_answers = excluded
            remaining -= excluded
        result.remaining_candidates = remaining

        # individual contribution of every hit (independent of the others)
        for entry in guarantee_hits:
            result.per_hit_savings[entry.entry_id] = len(
                set(entry.answer) & set(method_candidates)
            )
        for entry in prune_hits:
            result.per_hit_savings[entry.entry_id] = len(
                set(method_candidates) - set(entry.answer)
            )
        return result

    def exact_hit_result(
        self, method_candidates: set[GraphId], entry: CacheEntry
    ) -> PruningResult:
        """Pruning result for an exact-match hit: nothing is verified."""
        answer = set(entry.answer)
        result = PruningResult(
            method_candidates=set(method_candidates),
            guaranteed_answers=answer,
            guaranteed_non_answers=set(method_candidates) - answer,
            remaining_candidates=set(),
        )
        result.per_hit_savings[entry.entry_id] = len(method_candidates)
        return result
