"""Reader-writer lock used to make the cache safe under concurrent queries.

The query hot path only *reads* cache structures (:meth:`GraphCache.lookup`),
while crediting, admission and replacement *write* them.  A reader-writer
lock lets many concurrent queries probe the cache simultaneously and only
serialises the (rare, and — with the maintenance worker — off-critical-path)
mutations, mirroring the paper's claim that cache management runs
concurrently with query processing.

Writers are preferred: once a writer is waiting, new readers queue behind it
so maintenance cannot be starved by a steady stream of lookups.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """A writer-preference reader-writer lock.

    Not reentrant: a thread must not acquire the write lock while holding
    the read lock (or vice versa).  The cache's internal helpers are layered
    so that locked public methods only call unlocked private ones.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._waiting_writers = 0
        self._writer_active = False

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._waiting_writers > 0:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # write side
    # ------------------------------------------------------------------ #
    def acquire_write(self) -> None:
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers > 0:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # context managers
    # ------------------------------------------------------------------ #
    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
