"""Statistics Manager / Statistics Monitor: per-query and global metrics.

Everything the Demonstrator reports — numbers of sub-iso tests, query times,
hit counts, speedups — is accumulated here.  One :class:`QueryRecord` is
appended per processed query; aggregate views are derived on demand.

Speedup follows the paper's definition: *the ratio of the average performance
(query time or number of sub-iso tests) of the base Method M over the average
performance of GC deployed over Method M*; values above 1 are improvements.
"""

from __future__ import annotations

import math
import threading
from dataclasses import asdict, dataclass, field

from repro.query_model import QueryType


def json_safe(value):
    """Recursively replace values JSON cannot carry (inf/nan, enums).

    ``float("inf")`` (a legal speedup when the cache eliminates every
    dataset test) and ``QueryType`` members both appear in statistics
    snapshots; JSON has neither, so infinities/NaNs become ``None`` and
    enums collapse to their ``value``.
    """
    if isinstance(value, QueryType):
        return value.value
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


@dataclass
class QueryRecord:
    """Metrics for one processed query."""

    query_id: int
    query_type: QueryType
    num_vertices: int = 0
    num_edges: int = 0
    # cache interaction
    exact_hit: bool = False
    sub_hits: int = 0
    super_hits: int = 0
    #: Cache population observed just before this query ran (hit-% denominator
    #: — recorded per query so concurrent completion order cannot misalign it).
    cache_population: int = 0
    # candidate set sizes (the Query Journey quantities)
    method_candidates: int = 0      # |C_M|
    guaranteed_answers: int = 0     # |S|
    guaranteed_non_answers: int = 0  # |S'|
    verified_candidates: int = 0    # |C|
    answer_size: int = 0            # |A|
    # cost accounting
    dataset_tests: int = 0          # sub-iso tests actually run against data graphs
    probe_tests: int = 0            # sub-iso tests against cached queries (GC overhead)
    filter_seconds: float = 0.0
    probe_seconds: float = 0.0
    verify_seconds: float = 0.0
    total_seconds: float = 0.0
    # what Method M alone would have done (for speedup accounting)
    baseline_tests: int = 0         # == |C_M|
    baseline_seconds: float | None = None
    #: Wall-clock seconds per pipeline stage (filter/probe/prune/verify/...).
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_report(cls, report) -> "QueryRecord":
        """The record for one :class:`~repro.runtime.report.QueryReport`.

        Shared by the scatter-gather merge and the process shard proxies, so
        every execution backend books identical per-query accounting.
        """
        query = report.query
        return cls(
            query_id=query.query_id,
            query_type=query.query_type,
            num_vertices=query.num_vertices,
            num_edges=query.num_edges,
            exact_hit=report.exact_hit_entry is not None,
            sub_hits=len(report.sub_hit_entries),
            super_hits=len(report.super_hit_entries),
            cache_population=report.cache_population,
            method_candidates=len(report.method_candidates),
            guaranteed_answers=len(report.guaranteed_answers),
            guaranteed_non_answers=len(report.guaranteed_non_answers),
            verified_candidates=len(report.verified_candidates),
            answer_size=len(report.answer),
            dataset_tests=report.dataset_tests,
            probe_tests=report.probe_tests,
            filter_seconds=report.filter_seconds,
            probe_seconds=report.probe_seconds,
            verify_seconds=report.verify_seconds,
            total_seconds=report.total_seconds,
            baseline_tests=report.baseline_tests,
            baseline_seconds=report.baseline_seconds,
            stage_seconds=dict(report.stage_seconds),
        )

    @property
    def tests_saved(self) -> int:
        """Dataset sub-iso tests avoided for this query."""
        return max(0, self.baseline_tests - self.dataset_tests)

    @property
    def any_hit(self) -> bool:
        """True when the cache contributed anything to this query."""
        return self.exact_hit or self.sub_hits > 0 or self.super_hits > 0

    def to_dict(self) -> dict:
        """JSON-safe snapshot of this record (enum → value, inf → None)."""
        return json_safe(asdict(self))


@dataclass
class AggregateStatistics:
    """Aggregated view over many query records."""

    num_queries: int = 0
    num_hits: int = 0
    num_exact_hits: int = 0
    num_sub_hits: int = 0
    num_super_hits: int = 0
    total_dataset_tests: int = 0
    total_baseline_tests: int = 0
    total_probe_tests: int = 0
    total_seconds: float = 0.0
    total_baseline_seconds: float = 0.0
    hit_ratio: float = 0.0
    test_speedup: float = 1.0
    time_speedup: float = 1.0


class StatisticsManager:
    """Accumulates query records and derives aggregates.

    Thread-safe: concurrent queries may :meth:`record` simultaneously.
    """

    def __init__(self) -> None:
        self._records: list[QueryRecord] = []
        self._lock = threading.Lock()
        #: Per-shard managers attached by a sharded system (name → manager);
        #: insertion-ordered, so snapshots list shards deterministically.
        self._shards: dict[str, "StatisticsManager"] = {}

    # ------------------------------------------------------------------ #
    # shard attachment (sharded scatter-gather systems)
    # ------------------------------------------------------------------ #
    def attach_shard(self, name: str, manager: "StatisticsManager") -> None:
        """Attach a per-shard manager so snapshots report per-shard keys.

        The sharded system records *merged* records here and attaches each
        shard's own manager; :meth:`to_dict` then carries a ``shards``
        section with every shard's aggregate and stage breakdown.
        """
        if manager is self:
            raise ValueError("a statistics manager cannot be its own shard")
        self._shards[name] = manager

    def shard_names(self) -> list[str]:
        """Names of the attached per-shard managers, in attachment order."""
        return list(self._shards)

    def record(self, record: QueryRecord) -> None:
        """Append one query record."""
        with self._lock:
            self._records.append(record)

    def records(self) -> list[QueryRecord]:
        """All records in processing order."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        """A manager is always truthy, even while it holds no records.

        Callers can therefore write ``statistics or StatisticsManager()``
        without accidentally discarding an empty (but shared) manager.
        """
        return True

    def reset(self) -> None:
        """Drop every record (e.g. between benchmark phases)."""
        with self._lock:
            self._records.clear()

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    def aggregate(self) -> AggregateStatistics:
        """Compute the aggregate statistics over every recorded query."""
        records = self.records()
        aggregate = AggregateStatistics(num_queries=len(records))
        if not records:
            return aggregate
        for record in records:
            if record.any_hit:
                aggregate.num_hits += 1
            if record.exact_hit:
                aggregate.num_exact_hits += 1
            aggregate.num_sub_hits += record.sub_hits
            aggregate.num_super_hits += record.super_hits
            aggregate.total_dataset_tests += record.dataset_tests
            aggregate.total_baseline_tests += record.baseline_tests
            aggregate.total_probe_tests += record.probe_tests
            aggregate.total_seconds += record.total_seconds
            if record.baseline_seconds is not None:
                aggregate.total_baseline_seconds += record.baseline_seconds
        aggregate.hit_ratio = aggregate.num_hits / aggregate.num_queries
        gc_tests = aggregate.total_dataset_tests
        aggregate.test_speedup = (
            aggregate.total_baseline_tests / gc_tests if gc_tests > 0 else float("inf")
        )
        if aggregate.total_baseline_seconds > 0 and aggregate.total_seconds > 0:
            aggregate.time_speedup = aggregate.total_baseline_seconds / aggregate.total_seconds
        return aggregate

    def observed_test_cost(self, default: float = 0.0) -> float:
        """Mean seconds per dataset sub-iso test over every recorded query.

        The price signal cost-based shard-aware admission multiplies planned
        candidate counts by; ``default`` is returned until the manager has
        seen at least one actual dataset test (cold start).
        """
        records = self.records()
        tests = sum(record.dataset_tests for record in records)
        if tests <= 0:
            return default
        return sum(record.verify_seconds for record in records) / tests

    def mean_dataset_tests(self, default: float = 0.0) -> float:
        """Mean dataset sub-iso tests per recorded query (``default`` when empty).

        Used as the planned candidate count of an already-observed shard —
        it reflects how much work the shard's cache actually leaves over,
        unlike the raw partition size.
        """
        records = self.records()
        if not records:
            return default
        return sum(record.dataset_tests for record in records) / len(records)

    def stage_breakdown(self) -> list[dict[str, float]]:
        """Per-pipeline-stage latency summary over every recorded query.

        One row per stage (in first-seen order): total and mean seconds plus
        the stage's share of the summed stage time — the view the developer
        dashboard and the CLI print to show where query time goes.
        """
        records = self.records()
        totals: dict[str, float] = {}
        counts: dict[str, int] = {}
        for record in records:
            for stage, seconds in record.stage_seconds.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
                counts[stage] = counts.get(stage, 0) + 1
        grand_total = sum(totals.values())
        return [
            {
                "stage": stage,
                "total_seconds": totals[stage],
                "mean_seconds": totals[stage] / counts[stage],
                "share": (totals[stage] / grand_total) if grand_total > 0 else 0.0,
            }
            for stage in totals
        ]

    def window_summaries(self, window_size: int) -> list[dict[str, float]]:
        """Aggregate the records in consecutive windows of ``window_size`` queries.

        This is the Statistics Manager view of how the cache's usefulness
        evolves over a workload (hit ratio and tests saved per window), used
        by the developer dashboard's timeline.
        """
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        records = self.records()
        summaries: list[dict[str, float]] = []
        for start in range(0, len(records), window_size):
            chunk = records[start:start + window_size]
            hits = sum(1 for record in chunk if record.any_hit)
            baseline = sum(record.baseline_tests for record in chunk)
            actual = sum(record.dataset_tests for record in chunk)
            summaries.append(
                {
                    "window": len(summaries),
                    "queries": len(chunk),
                    "hit_ratio": hits / len(chunk),
                    "baseline_tests": baseline,
                    "dataset_tests": actual,
                    "tests_saved": baseline - actual,
                    "test_speedup": (baseline / actual) if actual else float("inf"),
                }
            )
        return summaries

    def per_record_hit_percentages(self) -> list[float]:
        """Hit percentage per query, as the Workload Run dashboard shows it.

        The paper defines it as "the number of cache-hits over the number of
        cached graphs"; each record carries the cache population it observed
        (``cache_population``, defaulting to 1 to avoid division by zero), so
        one snapshot of the records drives both numerator and denominator and
        the result stays consistent under concurrent completion order.
        """
        percentages: list[float] = []
        for record in self.records():
            hits = record.sub_hits + record.super_hits + (1 if record.exact_hit else 0)
            percentages.append(100.0 * hits / max(1, record.cache_population))
        return percentages

    def to_dict(self, include_records: bool = False) -> dict:
        """JSON-safe snapshot of everything the manager knows.

        This is the payload the query server's ``/metrics`` endpoint
        serialises: the aggregate view, the per-stage latency breakdown and
        the record count — plus (optionally) every per-query record.  All
        values survive ``json.dumps`` unchanged: enums are collapsed to their
        string values and infinite speedups become ``None``.

        When per-shard managers are attached (:meth:`attach_shard`), the
        snapshot additionally carries ``num_shards`` and a ``shards`` mapping
        of each shard's own snapshot, so one ``/metrics`` read shows both the
        merged view and how work and hits distribute across shards.
        """
        snapshot: dict = {
            "num_queries": len(self._records),
            "aggregate": json_safe(asdict(self.aggregate())),
            "stage_breakdown": json_safe(self.stage_breakdown()),
        }
        if self._shards:
            snapshot["num_shards"] = len(self._shards)
            snapshot["shards"] = {
                name: manager.to_dict(include_records=include_records)
                for name, manager in self._shards.items()
            }
        if include_records:
            snapshot["records"] = [record.to_dict() for record in self.records()]
        return snapshot

    def reorder(self, query_ids: list[int]) -> None:
        """Reorder the records matching ``query_ids`` into that exact order.

        Used after a concurrent run: records append in *completion* order,
        which is nondeterministic; reordering them to submission order keeps
        every per-position view (hit percentages, window summaries) aligned
        with the run's report list.  Records not in ``query_ids`` keep their
        position at the front.
        """
        positions = {query_id: position for position, query_id in enumerate(query_ids)}
        with self._lock:
            batch = [record for record in self._records if record.query_id in positions]
            rest = [record for record in self._records if record.query_id not in positions]
            batch.sort(key=lambda record: positions[record.query_id])
            self._records = rest + batch

