"""Statistics Manager / Statistics Monitor: per-query and global metrics.

Everything the Demonstrator reports — numbers of sub-iso tests, query times,
hit counts, speedups — is accumulated here.  One :class:`QueryRecord` is
appended per processed query; aggregate views are derived on demand.

Speedup follows the paper's definition: *the ratio of the average performance
(query time or number of sub-iso tests) of the base Method M over the average
performance of GC deployed over Method M*; values above 1 are improvements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query_model import QueryType


@dataclass
class QueryRecord:
    """Metrics for one processed query."""

    query_id: int
    query_type: QueryType
    num_vertices: int = 0
    num_edges: int = 0
    # cache interaction
    exact_hit: bool = False
    sub_hits: int = 0
    super_hits: int = 0
    # candidate set sizes (the Query Journey quantities)
    method_candidates: int = 0      # |C_M|
    guaranteed_answers: int = 0     # |S|
    guaranteed_non_answers: int = 0  # |S'|
    verified_candidates: int = 0    # |C|
    answer_size: int = 0            # |A|
    # cost accounting
    dataset_tests: int = 0          # sub-iso tests actually run against data graphs
    probe_tests: int = 0            # sub-iso tests against cached queries (GC overhead)
    filter_seconds: float = 0.0
    probe_seconds: float = 0.0
    verify_seconds: float = 0.0
    total_seconds: float = 0.0
    # what Method M alone would have done (for speedup accounting)
    baseline_tests: int = 0         # == |C_M|
    baseline_seconds: float | None = None

    @property
    def tests_saved(self) -> int:
        """Dataset sub-iso tests avoided for this query."""
        return max(0, self.baseline_tests - self.dataset_tests)

    @property
    def any_hit(self) -> bool:
        """True when the cache contributed anything to this query."""
        return self.exact_hit or self.sub_hits > 0 or self.super_hits > 0


@dataclass
class AggregateStatistics:
    """Aggregated view over many query records."""

    num_queries: int = 0
    num_hits: int = 0
    num_exact_hits: int = 0
    num_sub_hits: int = 0
    num_super_hits: int = 0
    total_dataset_tests: int = 0
    total_baseline_tests: int = 0
    total_probe_tests: int = 0
    total_seconds: float = 0.0
    total_baseline_seconds: float = 0.0
    hit_ratio: float = 0.0
    test_speedup: float = 1.0
    time_speedup: float = 1.0


class StatisticsManager:
    """Accumulates query records and derives aggregates."""

    def __init__(self) -> None:
        self._records: list[QueryRecord] = []

    def record(self, record: QueryRecord) -> None:
        """Append one query record."""
        self._records.append(record)

    def records(self) -> list[QueryRecord]:
        """All records in processing order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def reset(self) -> None:
        """Drop every record (e.g. between benchmark phases)."""
        self._records.clear()

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    def aggregate(self) -> AggregateStatistics:
        """Compute the aggregate statistics over every recorded query."""
        aggregate = AggregateStatistics(num_queries=len(self._records))
        if not self._records:
            return aggregate
        for record in self._records:
            if record.any_hit:
                aggregate.num_hits += 1
            if record.exact_hit:
                aggregate.num_exact_hits += 1
            aggregate.num_sub_hits += record.sub_hits
            aggregate.num_super_hits += record.super_hits
            aggregate.total_dataset_tests += record.dataset_tests
            aggregate.total_baseline_tests += record.baseline_tests
            aggregate.total_probe_tests += record.probe_tests
            aggregate.total_seconds += record.total_seconds
            if record.baseline_seconds is not None:
                aggregate.total_baseline_seconds += record.baseline_seconds
        aggregate.hit_ratio = aggregate.num_hits / aggregate.num_queries
        gc_tests = aggregate.total_dataset_tests
        aggregate.test_speedup = (
            aggregate.total_baseline_tests / gc_tests if gc_tests > 0 else float("inf")
        )
        if aggregate.total_baseline_seconds > 0 and aggregate.total_seconds > 0:
            aggregate.time_speedup = aggregate.total_baseline_seconds / aggregate.total_seconds
        return aggregate

    def window_summaries(self, window_size: int) -> list[dict[str, float]]:
        """Aggregate the records in consecutive windows of ``window_size`` queries.

        This is the Statistics Manager view of how the cache's usefulness
        evolves over a workload (hit ratio and tests saved per window), used
        by the developer dashboard's timeline.
        """
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        summaries: list[dict[str, float]] = []
        for start in range(0, len(self._records), window_size):
            chunk = self._records[start:start + window_size]
            hits = sum(1 for record in chunk if record.any_hit)
            baseline = sum(record.baseline_tests for record in chunk)
            actual = sum(record.dataset_tests for record in chunk)
            summaries.append(
                {
                    "window": len(summaries),
                    "queries": len(chunk),
                    "hit_ratio": hits / len(chunk),
                    "baseline_tests": baseline,
                    "dataset_tests": actual,
                    "tests_saved": baseline - actual,
                    "test_speedup": (baseline / actual) if actual else float("inf"),
                }
            )
        return summaries

    def per_query_hit_percentages(self, cache_sizes: list[int] | None = None) -> list[float]:
        """Hit percentage per query, as the Workload Run dashboard shows it.

        The paper defines it as "the number of cache-hits over the number of
        cached graphs"; ``cache_sizes`` supplies the cache population at the
        time of each query (defaults to 1 to avoid division by zero).
        """
        percentages: list[float] = []
        for position, record in enumerate(self._records):
            hits = record.sub_hits + record.super_hits + (1 if record.exact_hit else 0)
            population = 1
            if cache_sizes is not None and position < len(cache_sizes):
                population = max(1, cache_sizes[position])
            percentages.append(100.0 * hits / population)
        return percentages
