"""Index over the *cached queries* (the iGQ component underpinning GC).

GC must quickly find, among the cached queries, the ones that could be
subgraphs or supergraphs of a newly arrived query.  This index keeps, per
cached entry, its feature multiset and WL hash, plus an inverted
feature→entries table, and answers three screening questions:

* which cached entries might *contain* the new query (sub-case candidates),
* which cached entries might be *contained in* it (super-case candidates),
* which cached entries might be *isomorphic* to it (exact-match candidates).

Screening is by feature-multiset containment (plus cheap invariants); the
definitive answer is produced later with real sub-iso "probe" tests by the
sub/super case processors.  Screening must therefore never reject a true
hit — the same no-false-dismissal contract as the dataset indexes.
"""

from __future__ import annotations

from collections import Counter

from repro.cache.entry import CacheEntry
from repro.errors import CacheError
from repro.features.base import FeatureExtractor, FeatureKey
from repro.graph.canonical import quick_containment_screen
from repro.graph.graph import Graph


class CachedQueryIndex:
    """Dynamic feature index over the cached query graphs."""

    def __init__(self, extractor: FeatureExtractor) -> None:
        self.extractor = extractor
        self._entries: dict[int, CacheEntry] = {}
        self._postings: dict[FeatureKey, set[int]] = {}

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def add(self, entry: CacheEntry) -> None:
        """Add a cached entry (its features are computed if missing)."""
        if entry.entry_id in self._entries:
            raise CacheError(f"entry {entry.entry_id} is already indexed")
        if not entry.features:
            entry.features = self.extractor.extract(entry.graph)
        self._entries[entry.entry_id] = entry
        for key in entry.features:
            self._postings.setdefault(key, set()).add(entry.entry_id)

    def remove(self, entry_id: int) -> None:
        """Remove a cached entry from the index."""
        entry = self._entries.pop(entry_id, None)
        if entry is None:
            raise CacheError(f"entry {entry_id} is not indexed")
        for key in entry.features:
            bucket = self._postings.get(key)
            if bucket is not None:
                bucket.discard(entry_id)
                if not bucket:
                    del self._postings[key]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry_id: int) -> bool:
        return entry_id in self._entries

    def entries(self) -> list[CacheEntry]:
        """All indexed entries."""
        return list(self._entries.values())

    # ------------------------------------------------------------------ #
    # screening
    # ------------------------------------------------------------------ #
    def query_features(self, query_graph: Graph) -> Counter[FeatureKey]:
        """Extract the feature multiset of a new query graph."""
        return self.extractor.extract(query_graph)

    def sub_case_candidates(
        self, query_graph: Graph, query_features: Counter[FeatureKey]
    ) -> list[CacheEntry]:
        """Cached entries that might *contain* the new query (query ⊆ entry)."""
        candidates: list[CacheEntry] = []
        for entry in self._entries.values():
            if entry.num_vertices < query_graph.num_vertices:
                continue
            if not FeatureExtractor.multiset_contains(entry.features, query_features):
                continue
            if not quick_containment_screen(query_graph, entry.graph):
                continue
            candidates.append(entry)
        return candidates

    def super_case_candidates(
        self, query_graph: Graph, query_features: Counter[FeatureKey]
    ) -> list[CacheEntry]:
        """Cached entries that might be *contained in* the new query (entry ⊆ query)."""
        candidates: list[CacheEntry] = []
        for entry in self._entries.values():
            if entry.num_vertices > query_graph.num_vertices:
                continue
            if not FeatureExtractor.multiset_contains(query_features, entry.features):
                continue
            if not quick_containment_screen(entry.graph, query_graph):
                continue
            candidates.append(entry)
        return candidates

    def exact_candidates(self, query_graph: Graph) -> list[CacheEntry]:
        """Cached entries that might be isomorphic to the new query."""
        wl = query_graph.wl_hash()
        signature = query_graph.size_signature()
        return [
            entry
            for entry in self._entries.values()
            if entry.wl_hash == wl and entry.graph.size_signature() == signature
        ]

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def memory_bytes(self) -> int:
        """Approximate footprint of the postings (entries are owned by the store)."""
        total = 0
        for key, bucket in self._postings.items():
            total += len(repr(key)) + 60 + 8 * len(bucket)
        return total
