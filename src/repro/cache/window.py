"""Window Manager: cache admission control.

GC does not insert every executed query into the cache immediately.  Executed
queries accumulate in a *window*; when the window fills up, the whole batch
is handed to the replacement policy, which decides which of the incoming
queries displace which resident cached graphs (this batched behaviour is what
the demo's Workload Run visualises: "each graph cache is full of 50
previously executed queries, 10 of which are replaced by the newly coming
queries in the workload").

Admission control can additionally reject queries that are too cheap to be
worth caching (``min_tests_to_admit``) — caching a query whose candidate set
was tiny cannot save future queries much work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.entry import CacheEntry
from repro.errors import ConfigurationError


@dataclass
class WindowSnapshot:
    """State of the admission window (for dashboards and tests)."""

    pending: list[int] = field(default_factory=list)
    window_size: int = 0
    flushes: int = 0
    rejected: int = 0


class WindowManager:
    """Accumulates executed queries and releases them in batches."""

    def __init__(self, window_size: int = 10, min_tests_to_admit: int = 0) -> None:
        if window_size < 1:
            raise ConfigurationError("window_size must be at least 1")
        if min_tests_to_admit < 0:
            raise ConfigurationError("min_tests_to_admit must be non-negative")
        self.window_size = window_size
        self.min_tests_to_admit = min_tests_to_admit
        self._pending: list[CacheEntry] = []
        self._flushes = 0
        self._rejected = 0

    def offer(self, entry: CacheEntry, tests_performed: int) -> list[CacheEntry] | None:
        """Offer one executed query for admission.

        Returns the batch of pending entries when the window just filled up
        (the caller then runs the replacement policy), otherwise ``None``.
        """
        if tests_performed < self.min_tests_to_admit:
            self._rejected += 1
            return None
        self._pending.append(entry)
        if len(self._pending) >= self.window_size:
            return self.flush()
        return None

    def flush(self) -> list[CacheEntry]:
        """Release the pending entries (also used at end of a workload)."""
        batch = list(self._pending)
        self._pending.clear()
        if batch:
            self._flushes += 1
        return batch

    @property
    def pending_count(self) -> int:
        """Number of executed queries waiting in the window."""
        return len(self._pending)

    def snapshot(self) -> WindowSnapshot:
        """Window state for dashboards."""
        return WindowSnapshot(
            pending=[entry.entry_id for entry in self._pending],
            window_size=self.window_size,
            flushes=self._flushes,
            rejected=self._rejected,
        )
