"""Persisting the graph cache across sessions.

GC "per se could be plugged into general graph systems as a library"; a
library-grade cache should survive a process restart.  This module
serialises cached entries — pattern graph, query semantics, answer set,
utility statistics and the observed per-test cost — to JSON and back, so a
warm cache can be saved at shutdown and restored (via
:meth:`GraphCache.warm`) at startup.

Entry ids are not preserved: on load each entry receives a fresh id (ids are
only meaningful within one process), but everything the replacement policies
need is restored.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cache.entry import CacheEntry, EntryStatistics
from repro.cache.graph_cache import GraphCache
from repro.errors import CacheError
from repro.graph.graph import Graph
from repro.query_model import QueryType

FORMAT_VERSION = 1


def entry_to_dict(entry: CacheEntry) -> dict:
    """Serialise one cache entry to a JSON-compatible dictionary."""
    return {
        "graph": entry.graph.to_dict(),
        "query_type": entry.query_type.value,
        "answer": sorted(entry.answer, key=repr),
        "admitted_clock": entry.admitted_clock,
        "observed_test_cost": entry.observed_test_cost,
        "stats": entry.stats.snapshot(),
    }


def entry_from_dict(payload: dict) -> CacheEntry:
    """Rebuild a cache entry serialised by :func:`entry_to_dict`."""
    try:
        graph = Graph.from_dict(payload["graph"])
        query_type = QueryType.parse(payload["query_type"])
        answer = frozenset(payload["answer"])
    except (KeyError, TypeError) as exc:
        raise CacheError(f"malformed cache entry payload: {exc}") from exc
    entry = CacheEntry(
        graph=graph,
        query_type=query_type,
        answer=answer,
        admitted_clock=int(payload.get("admitted_clock", 0)),
        observed_test_cost=float(payload.get("observed_test_cost", 0.0)),
    )
    stats = payload.get("stats", {})
    entry.stats = EntryStatistics(
        last_used_clock=int(stats.get("last_used_clock", 0)),
        hit_count=int(stats.get("hit_count", 0)),
        sub_hits=int(stats.get("sub_hits", 0)),
        super_hits=int(stats.get("super_hits", 0)),
        exact_hits=int(stats.get("exact_hits", 0)),
        tests_saved=int(stats.get("tests_saved", 0)),
        seconds_saved=float(stats.get("seconds_saved", 0.0)),
    )
    return entry


def save_cache(cache: GraphCache, path: str | Path) -> int:
    """Write every resident entry of ``cache`` to ``path`` (JSON).

    Returns the number of entries written.
    """
    entries = cache.entries()
    payload = {
        "format_version": FORMAT_VERSION,
        "capacity": cache.capacity,
        "policy": cache.policy.name,
        "entries": [entry_to_dict(entry) for entry in entries],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return len(entries)


def entries_from_payload(payload: object) -> list[CacheEntry]:
    """Rebuild the entries of an already-parsed snapshot payload."""
    if not isinstance(payload, dict) or "entries" not in payload:
        raise CacheError("cache snapshot has no 'entries' field")
    version = payload.get("format_version", 0)
    if version > FORMAT_VERSION:
        raise CacheError(f"cache snapshot format {version} is newer than supported")
    return [entry_from_dict(item) for item in payload["entries"]]


def load_cache_entries(path: str | Path) -> list[CacheEntry]:
    """Load the entries saved by :func:`save_cache` (fresh entry ids)."""
    return entries_from_payload(json.loads(Path(path).read_text(encoding="utf-8")))


def restore_cache(cache: GraphCache, path: str | Path) -> int:
    """Warm ``cache`` from a snapshot file; returns entries restored."""
    entries = load_cache_entries(path)
    cache.warm(entries)
    return min(len(entries), len(cache))
