"""Asynchronous cache maintenance: admission and replacement off the hot path.

The paper's system runs cache management (window admission, statistics-driven
replacement) on its own cache-manager thread so query processing never waits
for it.  :class:`CacheMaintenanceWorker` reproduces that design: the query
runtime *offers* executed queries to the cache, the offer is enqueued, and a
dedicated daemon thread drains the queue and performs window admission plus
replacement under the cache's write lock.

The worker is strictly optional — with ``async_maintenance=False`` (the
default) the cache applies admissions synchronously and all existing
semantics (and tests) are unchanged.  :meth:`drain` provides a barrier so
workloads can wait for maintenance to quiesce before inspecting the cache.
"""

from __future__ import annotations

import logging
import queue
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

logger = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.entry import CacheEntry
    from repro.cache.graph_cache import GraphCache

#: Sentinel pushed onto the queue to stop the worker thread.
_STOP = object()


@dataclass
class MaintenanceStats:
    """Counters describing what the worker has done so far."""

    submitted: int = 0
    processed: int = 0
    #: Generic maintenance tasks (e.g. shard-summary refreshes) executed.
    tasks: int = 0
    errors: int = 0
    last_error: str | None = None

    @property
    def pending(self) -> int:
        """Offers submitted but not yet applied to the cache."""
        return self.submitted - self.processed


class CacheMaintenanceWorker:
    """Daemon thread that applies cache admissions asynchronously."""

    def __init__(self, cache: "GraphCache", name: str = "gc-cache-maintenance") -> None:
        self._cache = cache
        self._queue: queue.Queue = queue.Queue()
        self._stats = MaintenanceStats()
        self._stats_lock = threading.Lock()
        self._stopped = False
        #: Serialises submit() against stop() so no offer can be enqueued
        #: after the worker exits (it would never be processed and a later
        #: drain()/join() would block forever).
        self._lifecycle_lock = threading.Lock()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------ #
    # producer side (called from query threads)
    # ------------------------------------------------------------------ #
    def submit(self, entry: "CacheEntry", tests_performed: int) -> None:
        """Enqueue one executed query for admission (non-blocking).

        If the worker has already been stopped (a query racing ``close()``),
        the offer is applied synchronously instead of being lost.
        """
        with self._lifecycle_lock:
            if not self._stopped:
                with self._stats_lock:
                    self._stats.submitted += 1
                self._queue.put((entry, tests_performed))
                return
        self._cache.apply_offer(entry, tests_performed)

    def submit_task(self, task) -> None:
        """Enqueue a generic maintenance callable (non-blocking).

        The sharded system uses this to refresh shard summaries off the
        query critical path after cache content changes.  If the worker has
        stopped, the task runs synchronously instead of being lost.
        """
        with self._lifecycle_lock:
            if not self._stopped:
                with self._stats_lock:
                    self._stats.submitted += 1
                self._queue.put(task)
                return
        task()

    def drain(self) -> None:
        """Block until every submitted offer has been applied."""
        self._queue.join()

    def stop(self, drain: bool = True) -> None:
        """Stop the worker (optionally draining pending offers first)."""
        with self._lifecycle_lock:
            if self._stopped:
                return
            self._stopped = True
        if drain:
            self.drain()
        self._queue.put(_STOP)
        self._thread.join()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        """True while the worker thread is running."""
        return self._thread.is_alive()

    def stats(self) -> MaintenanceStats:
        """Snapshot of the worker's counters."""
        with self._stats_lock:
            return MaintenanceStats(
                submitted=self._stats.submitted,
                processed=self._stats.processed,
                tasks=self._stats.tasks,
                errors=self._stats.errors,
                last_error=self._stats.last_error,
            )

    # ------------------------------------------------------------------ #
    # worker loop
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            is_task = callable(item)
            try:
                if is_task:
                    item()
                else:
                    entry, tests_performed = item
                    self._cache.apply_offer(entry, tests_performed)
            except Exception as exc:  # noqa: BLE001 - the worker must survive
                # a failed admission/task may lose one cache entry or one
                # summary refresh but must never kill the thread:
                # drain()/join() would then block forever
                logger.warning("cache maintenance: %s failed: %s",
                               "task" if is_task else "admission", exc)
                with self._stats_lock:
                    self._stats.errors += 1
                    self._stats.last_error = f"{type(exc).__name__}: {exc}"
            finally:
                with self._stats_lock:
                    self._stats.processed += 1
                    if is_task:
                        self._stats.tasks += 1
                self._queue.task_done()
