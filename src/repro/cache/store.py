"""The cache store: an ordered collection of :class:`CacheEntry` objects.

Kept deliberately small — policies and the cache manager operate on it — so
that alternative storage layouts (e.g. a disk-backed store) could be swapped
in without touching replacement logic.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

from repro.cache.entry import CacheEntry
from repro.errors import CacheError


class CacheStore:
    """Insertion-ordered mapping entry_id → :class:`CacheEntry`."""

    def __init__(self) -> None:
        self._entries: OrderedDict[int, CacheEntry] = OrderedDict()

    def add(self, entry: CacheEntry) -> None:
        """Insert a new entry; duplicate entry ids are rejected."""
        if entry.entry_id in self._entries:
            raise CacheError(f"entry id {entry.entry_id} is already cached")
        self._entries[entry.entry_id] = entry

    def remove(self, entry_id: int) -> CacheEntry:
        """Remove and return an entry by id."""
        try:
            return self._entries.pop(entry_id)
        except KeyError:
            raise CacheError(f"entry id {entry_id} is not cached") from None

    def get(self, entry_id: int) -> CacheEntry:
        """Look up an entry by id."""
        try:
            return self._entries[entry_id]
        except KeyError:
            raise CacheError(f"entry id {entry_id} is not cached") from None

    def __contains__(self, entry_id: int) -> bool:
        return entry_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CacheEntry]:
        return iter(self._entries.values())

    def entries(self) -> list[CacheEntry]:
        """All entries in insertion order."""
        return list(self._entries.values())

    def entry_ids(self) -> list[int]:
        """All entry ids in insertion order."""
        return list(self._entries.keys())

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def memory_bytes(self) -> int:
        """Approximate total footprint of all cached entries."""
        return sum(entry.memory_bytes() for entry in self._entries.values())
