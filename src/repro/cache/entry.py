"""Cache entries: an executed query, its answer set, and its utility statistics.

Each entry corresponds to one "cached graph" in the paper's terminology: the
pattern graph of a previously executed query together with its answer set
(dataset graph ids) and the bookkeeping the replacement policies need (recency,
popularity, sub-iso tests saved, sub-iso time saved).
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field

from repro.features.base import FeatureKey
from repro.graph.graph import Graph
from repro.index.base import GraphId, estimate_object_bytes
from repro.query_model import QueryType

_entry_counter = itertools.count(1)


@dataclass
class EntryStatistics:
    """Per-entry utility statistics maintained by ``update_cache_sta_info``."""

    #: Logical clock of the last time this entry produced a hit (LRU).
    last_used_clock: int = 0
    #: Number of times the entry produced any hit (POP).
    hit_count: int = 0
    #: Number of sub-case hits and super-case hits separately (reporting).
    sub_hits: int = 0
    super_hits: int = 0
    exact_hits: int = 0
    #: Total dataset sub-iso tests this entry saved other queries (PIN).
    tests_saved: int = 0
    #: Total dataset sub-iso seconds this entry saved other queries (PINC).
    seconds_saved: float = 0.0

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view used by dashboards and tests."""
        return {
            "last_used_clock": self.last_used_clock,
            "hit_count": self.hit_count,
            "sub_hits": self.sub_hits,
            "super_hits": self.super_hits,
            "exact_hits": self.exact_hits,
            "tests_saved": self.tests_saved,
            "seconds_saved": self.seconds_saved,
        }


@dataclass
class CacheEntry:
    """One cached query: pattern graph, answer set and statistics."""

    graph: Graph
    query_type: QueryType
    answer: frozenset[GraphId]
    features: Counter[FeatureKey] = field(default_factory=Counter)
    wl_hash: str = ""
    entry_id: int = field(default_factory=lambda: next(_entry_counter))
    admitted_clock: int = 0
    #: Average cost (seconds) of one dataset sub-iso test observed when this
    #: query was originally executed; PINC uses it to translate saved tests
    #: into saved seconds for queries that were answered purely from cache.
    observed_test_cost: float = 0.0
    stats: EntryStatistics = field(default_factory=EntryStatistics)

    def __post_init__(self) -> None:
        self.query_type = QueryType.parse(self.query_type)
        if not self.wl_hash:
            self.wl_hash = self.graph.wl_hash()

    @property
    def num_vertices(self) -> int:
        """Vertex count of the cached pattern."""
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Edge count of the cached pattern."""
        return self.graph.num_edges

    def memory_bytes(self) -> int:
        """Approximate footprint: pattern graph + answer ids + statistics."""
        graph_bytes = 0
        for vertex in self.graph.vertices():
            graph_bytes += 56 + len(str(self.graph.label(vertex)))
        graph_bytes += 32 * self.graph.num_edges
        answer_bytes = estimate_object_bytes(set(self.answer))
        feature_bytes = estimate_object_bytes(dict(self.features))
        return graph_bytes + answer_bytes + feature_bytes + 200

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<CacheEntry id={self.entry_id} |V|={self.num_vertices}"
            f" answers={len(self.answer)} hits={self.stats.hit_count}>"
        )
