"""networkx-backed matcher, used mainly for cross-validation in tests.

The repository's own engines (:class:`VF2Matcher`, :class:`UllmannMatcher`)
are implemented from scratch; this wrapper around
:class:`networkx.algorithms.isomorphism.GraphMatcher` provides an independent
oracle so property-based tests can assert agreement on random graphs.  It is
also a legitimate Verifier for Method M (slower, but trusted).
"""

from __future__ import annotations

from repro.graph.graph import Graph, VertexId
from repro.isomorphism.base import MatchResult, MatchStats, SubgraphMatcher, timed, trivially_impossible


class NetworkXMatcher(SubgraphMatcher):
    """Subgraph monomorphism via networkx's GraphMatcher."""

    name = "networkx"

    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        """Find one embedding of ``query`` into ``target`` using networkx."""
        import networkx.algorithms.isomorphism as iso

        stats = MatchStats()
        with timed(stats):
            if query.num_vertices == 0:
                return MatchResult(found=True, mapping={}, stats=stats)
            if trivially_impossible(query, target):
                return MatchResult(found=False, mapping=None, stats=stats)
            matcher = iso.GraphMatcher(
                target.to_networkx(),
                query.to_networkx(),
                node_match=iso.categorical_node_match("label", ""),
            )
            # networkx's "monomorphism" is the paper's non-induced semantics
            found = matcher.subgraph_is_monomorphic()
            mapping: dict[VertexId, VertexId] | None = None
            if found:
                # networkx maps target -> query; invert to query -> target
                mapping = {q: t for t, q in matcher.mapping.items()}
        return MatchResult(found=found, mapping=mapping, stats=stats)

    def find_all_embeddings(
        self, query: Graph, target: Graph, limit: int | None = None
    ) -> list[dict[VertexId, VertexId]]:
        """Enumerate embeddings via networkx (used only in tests)."""
        import networkx.algorithms.isomorphism as iso

        if query.num_vertices == 0:
            return [{}]
        if trivially_impossible(query, target):
            return []
        matcher = iso.GraphMatcher(
            target.to_networkx(),
            query.to_networkx(),
            node_match=iso.categorical_node_match("label", ""),
        )
        results: list[dict[VertexId, VertexId]] = []
        for mapping in matcher.subgraph_monomorphisms_iter():
            results.append({q: t for t, q in mapping.items()})
            if limit is not None and len(results) >= limit:
                break
        return results
