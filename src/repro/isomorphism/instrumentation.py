"""Instrumented wrappers around sub-iso engines.

GC's whole value proposition is counted in *sub-iso tests saved*, and its
PINC policy additionally needs the *time* spent per test.  The
:class:`CountingMatcher` decorator accumulates those metrics for any
underlying engine, and is what the query runtime actually hands to Method M.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.graph.graph import Graph, VertexId
from repro.isomorphism.base import MatchResult, SubgraphMatcher


@dataclass
class VerifierTally:
    """Running totals across many sub-iso tests."""

    tests: int = 0
    positives: int = 0
    negatives: int = 0
    states_visited: int = 0
    total_seconds: float = 0.0
    per_test_seconds: list[float] = field(default_factory=list)

    def record(self, result: MatchResult) -> None:
        """Fold one test outcome into the tally."""
        self.tests += 1
        if result.found:
            self.positives += 1
        else:
            self.negatives += 1
        self.states_visited += result.stats.states_visited
        self.total_seconds += result.stats.elapsed_seconds
        self.per_test_seconds.append(result.stats.elapsed_seconds)

    @property
    def average_seconds(self) -> float:
        """Average wall-clock seconds per test (0.0 with no tests)."""
        if not self.tests:
            return 0.0
        return self.total_seconds / self.tests

    def reset(self) -> None:
        """Zero every counter."""
        self.tests = 0
        self.positives = 0
        self.negatives = 0
        self.states_visited = 0
        self.total_seconds = 0.0
        self.per_test_seconds.clear()

    def snapshot(self) -> dict[str, float]:
        """Return the tally as a plain dictionary (for dashboards/reports)."""
        return {
            "tests": self.tests,
            "positives": self.positives,
            "negatives": self.negatives,
            "states_visited": self.states_visited,
            "total_seconds": self.total_seconds,
            "average_seconds": self.average_seconds,
        }


class CountingMatcher(SubgraphMatcher):
    """Decorator that counts every test performed by an inner matcher."""

    def __init__(self, inner: SubgraphMatcher) -> None:
        self.inner = inner
        self.name = f"counting({inner.name})"
        self.tally = VerifierTally()
        # verification may run from a thread pool (Method M's verify_threads),
        # so tally updates are serialised
        self._lock = threading.Lock()

    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        """Run the inner matcher and record its statistics."""
        result = self.inner.find_embedding(query, target)
        with self._lock:
            self.tally.record(result)
        return result

    def find_all_embeddings(
        self, query: Graph, target: Graph, limit: int | None = None
    ) -> list[dict[VertexId, VertexId]]:
        """Delegate enumeration to the inner matcher (counted as one test)."""
        embeddings = self.inner.find_all_embeddings(query, target, limit=limit)
        self.tally.tests += 1
        if embeddings:
            self.tally.positives += 1
        else:
            self.tally.negatives += 1
        return embeddings

    def reset(self) -> None:
        """Reset the tally (e.g. between workload runs)."""
        self.tally.reset()
