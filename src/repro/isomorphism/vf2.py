"""VF2-style subgraph isomorphism engine.

This is a from-scratch implementation of the VF2 algorithm of Cordella et al.
(TPAMI 2004, reference [3] of the paper), adapted to *non-induced* matching
(subgraph monomorphism): every query edge must be mapped onto a target edge,
while extra target edges between mapped vertices are allowed.  Vertex labels
must match exactly; query edge labels, when present, must match the target
edge labels.

The engine records :class:`~repro.isomorphism.base.MatchStats` (states
visited, backtracks, wall-clock time); the PINC replacement policy and the
Demonstrator's cost accounting are driven by these counters.
"""

from __future__ import annotations

from repro.errors import BudgetExceededError
from repro.graph.graph import Graph, VertexId
from repro.isomorphism.base import (
    MatchResult,
    MatchStats,
    SubgraphMatcher,
    timed,
    trivially_impossible,
)


class VF2Matcher(SubgraphMatcher):
    """VF2 subgraph (monomorphism) matcher.

    Parameters
    ----------
    node_budget:
        Optional cap on the number of search states; exceeding it raises
        :class:`~repro.errors.BudgetExceededError`.  ``None`` disables the cap
        (queries in this domain are small, so unbounded is the default).
    induced:
        When True, matching is *induced*: non-adjacent query vertices must map
        to non-adjacent target vertices.  The paper's semantics (and the
        default) is non-induced.
    """

    name = "vf2"

    def __init__(self, node_budget: int | None = None, induced: bool = False) -> None:
        self.node_budget = node_budget
        self.induced = induced

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        """Find one embedding of ``query`` into ``target`` (or report none)."""
        stats = MatchStats()
        with timed(stats):
            if query.num_vertices == 0:
                return MatchResult(found=True, mapping={}, stats=stats)
            if trivially_impossible(query, target):
                return MatchResult(found=False, mapping=None, stats=stats)
            state = _SearchState(query, target, self.induced, self.node_budget, stats)
            mapping = state.search_one()
        return MatchResult(found=mapping is not None, mapping=mapping, stats=stats)

    def find_all_embeddings(
        self, query: Graph, target: Graph, limit: int | None = None
    ) -> list[dict[VertexId, VertexId]]:
        """Enumerate (up to ``limit``) embeddings of ``query`` into ``target``."""
        stats = MatchStats()
        if query.num_vertices == 0:
            return [{}]
        if trivially_impossible(query, target):
            return []
        state = _SearchState(query, target, self.induced, self.node_budget, stats)
        return state.search_all(limit)


class _SearchState:
    """Mutable VF2 search state for one (query, target) pair."""

    def __init__(
        self,
        query: Graph,
        target: Graph,
        induced: bool,
        node_budget: int | None,
        stats: MatchStats,
    ) -> None:
        self.query = query
        self.target = target
        self.induced = induced
        self.node_budget = node_budget
        self.stats = stats
        self.core_query: dict[VertexId, VertexId] = {}
        self.core_target: dict[VertexId, VertexId] = {}
        self.query_order = self._compute_query_order()
        # per-query-vertex candidate label sets precomputed for speed
        self.candidates_by_label: dict[str, list[VertexId]] = {}
        for t_vertex in target.vertices():
            self.candidates_by_label.setdefault(target.label(t_vertex), []).append(t_vertex)

    # ------------------------------------------------------------------ #
    # ordering heuristics
    # ------------------------------------------------------------------ #
    def _compute_query_order(self) -> list[VertexId]:
        """Order query vertices: rarest label & highest degree first, then by
        connectivity to already-ordered vertices (a connected expansion order
        dramatically reduces backtracking)."""
        query = self.query
        target_label_counts = self.target.label_counts()

        def rarity(vertex: VertexId) -> tuple[int, int]:
            return (
                target_label_counts.get(query.label(vertex), 0),
                -query.degree(vertex),
            )

        remaining = set(query.vertices())
        if not remaining:
            return []
        order: list[VertexId] = []
        start = min(remaining, key=rarity)
        order.append(start)
        remaining.discard(start)
        while remaining:
            frontier = [v for v in remaining if any(n in order for n in query.neighbors(v))]
            pool = frontier or list(remaining)
            nxt = min(
                pool,
                key=lambda v: (
                    -sum(1 for n in query.neighbors(v) if n in order),
                    rarity(v),
                ),
            )
            order.append(nxt)
            remaining.discard(nxt)
        return order

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #
    def search_one(self) -> dict[VertexId, VertexId] | None:
        return self._recurse(0, None)

    def search_all(self, limit: int | None) -> list[dict[VertexId, VertexId]]:
        found: list[dict[VertexId, VertexId]] = []
        self._recurse(0, found, limit=limit)
        return found

    def _recurse(
        self,
        depth: int,
        collector: list[dict[VertexId, VertexId]] | None,
        limit: int | None = None,
    ) -> dict[VertexId, VertexId] | None:
        if depth == len(self.query_order):
            mapping = dict(self.core_query)
            if collector is None:
                return mapping
            collector.append(mapping)
            return None
        q_vertex = self.query_order[depth]
        for t_vertex in self._candidate_targets(q_vertex):
            self.stats.states_visited += 1
            if self.node_budget is not None and self.stats.states_visited > self.node_budget:
                raise BudgetExceededError(self.node_budget)
            if not self._feasible(q_vertex, t_vertex):
                continue
            self.core_query[q_vertex] = t_vertex
            self.core_target[t_vertex] = q_vertex
            result = self._recurse(depth + 1, collector, limit)
            if collector is None and result is not None:
                return result
            del self.core_query[q_vertex]
            del self.core_target[t_vertex]
            self.stats.backtracks += 1
            if collector is not None and limit is not None and len(collector) >= limit:
                return None
        return None

    def _candidate_targets(self, q_vertex: VertexId) -> list[VertexId]:
        """Candidate target vertices for ``q_vertex``.

        If the query vertex has an already-mapped neighbour, candidates are
        restricted to the target neighbours of that neighbour's image —
        the core VF2 "connected extension" optimisation.
        """
        label = self.query.label(q_vertex)
        mapped_neighbors = [n for n in self.query.neighbors(q_vertex) if n in self.core_query]
        if mapped_neighbors:
            anchor = min(
                mapped_neighbors,
                key=lambda n: len(self.target.neighbors(self.core_query[n])),
            )
            pool = self.target.neighbors(self.core_query[anchor])
            return [t for t in pool if t not in self.core_target and self.target.label(t) == label]
        return [t for t in self.candidates_by_label.get(label, []) if t not in self.core_target]

    def _feasible(self, q_vertex: VertexId, t_vertex: VertexId) -> bool:
        query, target = self.query, self.target
        if target.degree(t_vertex) < query.degree(q_vertex):
            return False
        # consistency with already-mapped neighbours
        for q_neighbor in query.neighbors(q_vertex):
            if q_neighbor in self.core_query:
                t_neighbor = self.core_query[q_neighbor]
                if not target.has_edge(t_vertex, t_neighbor):
                    return False
                q_edge_label = query.edge_label(q_vertex, q_neighbor)
                if q_edge_label is not None:
                    if target.edge_label(t_vertex, t_neighbor) != q_edge_label:
                        return False
        if self.induced:
            # non-adjacent mapped query vertices must stay non-adjacent
            for q_other, t_other in self.core_query.items():
                if q_other == q_vertex:
                    continue
                if not query.has_edge(q_vertex, q_other) and target.has_edge(t_vertex, t_other):
                    return False
        # 1-look-ahead: unmapped query neighbours need enough unmapped,
        # label-compatible target neighbours
        unmapped_query_neighbors = [
            n for n in query.neighbors(q_vertex) if n not in self.core_query
        ]
        if unmapped_query_neighbors:
            unmapped_target_neighbors = [
                n for n in target.neighbors(t_vertex) if n not in self.core_target
            ]
            if len(unmapped_target_neighbors) < len(unmapped_query_neighbors):
                return False
            target_labels: dict[str, int] = {}
            for n in unmapped_target_neighbors:
                target_labels[target.label(n)] = target_labels.get(target.label(n), 0) + 1
            needed: dict[str, int] = {}
            for n in unmapped_query_neighbors:
                needed[query.label(n)] = needed.get(query.label(n), 0) + 1
            for label, count in needed.items():
                if target_labels.get(label, 0) < count:
                    return False
        return True
