"""Subgraph isomorphism engines (the pluggable "Verifier" of Method M)."""

from repro.isomorphism.base import (
    MatchResult,
    MatchStats,
    SubgraphMatcher,
    compatible_labels,
    trivially_impossible,
)
from repro.isomorphism.instrumentation import CountingMatcher, VerifierTally
from repro.isomorphism.networkx_backend import NetworkXMatcher
from repro.isomorphism.ullmann import UllmannMatcher
from repro.isomorphism.vf2 import VF2Matcher

#: Registry of verifier constructors by name (used by configuration).
MATCHERS = {
    "vf2": VF2Matcher,
    "ullmann": UllmannMatcher,
    "networkx": NetworkXMatcher,
}


def make_matcher(name: str, **kwargs) -> SubgraphMatcher:
    """Instantiate a verifier by registry name."""
    from repro.errors import ConfigurationError

    try:
        factory = MATCHERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown matcher {name!r}; available: {', '.join(sorted(MATCHERS))}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "MatchResult",
    "MatchStats",
    "SubgraphMatcher",
    "compatible_labels",
    "trivially_impossible",
    "VF2Matcher",
    "UllmannMatcher",
    "NetworkXMatcher",
    "CountingMatcher",
    "VerifierTally",
    "MATCHERS",
    "make_matcher",
]
