"""Ullmann's subgraph isomorphism algorithm (baseline verifier).

A classic matrix-refinement backtracking algorithm.  It is usually slower
than VF2 on the sparse labelled graphs GC targets, which makes it a useful
baseline: the GC speedups must hold regardless of the verifier plugged into
Method M, and the benchmark suite runs both engines.

The implementation follows the textbook formulation with the standard
refinement step: a candidate assignment ``q → t`` survives only if every
neighbour of ``q`` still has at least one candidate among the neighbours of
``t``.  Matching is non-induced, with exact vertex-label equality and
optional edge-label constraints, mirroring :class:`VF2Matcher`.
"""

from __future__ import annotations

from repro.errors import BudgetExceededError
from repro.graph.graph import Graph, VertexId
from repro.isomorphism.base import (
    MatchResult,
    MatchStats,
    SubgraphMatcher,
    timed,
    trivially_impossible,
)


class UllmannMatcher(SubgraphMatcher):
    """Ullmann-style matcher with candidate-set refinement."""

    name = "ullmann"

    def __init__(self, node_budget: int | None = None) -> None:
        self.node_budget = node_budget

    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        """Find one embedding of ``query`` into ``target`` (or report none)."""
        stats = MatchStats()
        with timed(stats):
            if query.num_vertices == 0:
                return MatchResult(found=True, mapping={}, stats=stats)
            if trivially_impossible(query, target):
                return MatchResult(found=False, mapping=None, stats=stats)
            candidates = self._initial_candidates(query, target)
            if candidates is None:
                return MatchResult(found=False, mapping=None, stats=stats)
            order = sorted(query.vertices(), key=lambda v: len(candidates[v]))
            mapping = self._search(query, target, order, 0, candidates, {}, stats)
        return MatchResult(found=mapping is not None, mapping=mapping, stats=stats)

    def find_all_embeddings(
        self, query: Graph, target: Graph, limit: int | None = None
    ) -> list[dict[VertexId, VertexId]]:
        """Enumerate (up to ``limit``) embeddings of ``query`` into ``target``."""
        stats = MatchStats()
        if query.num_vertices == 0:
            return [{}]
        if trivially_impossible(query, target):
            return []
        candidates = self._initial_candidates(query, target)
        if candidates is None:
            return []
        order = sorted(query.vertices(), key=lambda v: len(candidates[v]))
        results: list[dict[VertexId, VertexId]] = []
        self._search(query, target, order, 0, candidates, {}, stats, results, limit)
        return results

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _initial_candidates(
        self, query: Graph, target: Graph
    ) -> dict[VertexId, set[VertexId]] | None:
        """Label/degree-compatible candidate sets, refined to a fixed point."""
        candidates: dict[VertexId, set[VertexId]] = {}
        for q_vertex in query.vertices():
            pool = {
                t_vertex
                for t_vertex in target.vertices()
                if target.label(t_vertex) == query.label(q_vertex)
                and target.degree(t_vertex) >= query.degree(q_vertex)
            }
            if not pool:
                return None
            candidates[q_vertex] = pool
        if not self._refine(query, target, candidates):
            return None
        return candidates

    def _refine(
        self, query: Graph, target: Graph, candidates: dict[VertexId, set[VertexId]]
    ) -> bool:
        """Ullmann refinement to a fixed point; False when a set empties."""
        changed = True
        while changed:
            changed = False
            for q_vertex in query.vertices():
                doomed: list[VertexId] = []
                for t_vertex in candidates[q_vertex]:
                    for q_neighbor in query.neighbors(q_vertex):
                        t_neighbors = target.neighbors(t_vertex)
                        if not candidates[q_neighbor] & t_neighbors:
                            doomed.append(t_vertex)
                            break
                if doomed:
                    candidates[q_vertex] -= set(doomed)
                    changed = True
                    if not candidates[q_vertex]:
                        return False
        return True

    def _search(
        self,
        query: Graph,
        target: Graph,
        order: list[VertexId],
        depth: int,
        candidates: dict[VertexId, set[VertexId]],
        mapping: dict[VertexId, VertexId],
        stats: MatchStats,
        results: list[dict[VertexId, VertexId]] | None = None,
        limit: int | None = None,
    ) -> dict[VertexId, VertexId] | None:
        if depth == len(order):
            if results is None:
                return dict(mapping)
            results.append(dict(mapping))
            return None
        q_vertex = order[depth]
        used = set(mapping.values())
        for t_vertex in sorted(candidates[q_vertex], key=repr):
            stats.states_visited += 1
            if self.node_budget is not None and stats.states_visited > self.node_budget:
                raise BudgetExceededError(self.node_budget)
            if t_vertex in used:
                continue
            if not self._consistent(query, target, mapping, q_vertex, t_vertex):
                continue
            mapping[q_vertex] = t_vertex
            found = self._search(
                query, target, order, depth + 1, candidates, mapping, stats, results, limit
            )
            if results is None and found is not None:
                return found
            del mapping[q_vertex]
            stats.backtracks += 1
            if results is not None and limit is not None and len(results) >= limit:
                return None
        return None

    def _consistent(
        self,
        query: Graph,
        target: Graph,
        mapping: dict[VertexId, VertexId],
        q_vertex: VertexId,
        t_vertex: VertexId,
    ) -> bool:
        for q_neighbor in query.neighbors(q_vertex):
            if q_neighbor in mapping:
                t_neighbor = mapping[q_neighbor]
                if not target.has_edge(t_vertex, t_neighbor):
                    return False
                q_edge_label = query.edge_label(q_vertex, q_neighbor)
                if q_edge_label is not None and target.edge_label(t_vertex, t_neighbor) != q_edge_label:
                    return False
        return True
