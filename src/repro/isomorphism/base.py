"""Common interfaces for the subgraph isomorphism engines (the "Verifier").

GC treats the sub-iso implementation as a pluggable component of Method M.
Every engine implements :class:`SubgraphMatcher`; the cache and the query
runtime only depend on this interface, so alternative verifiers (including
the networkx cross-check backend) can be swapped in freely.

Matching semantics follow the paper: *non-induced* subgraph isomorphism on
undirected graphs with vertex labels (edge labels are honoured when present
on the query).  A query vertex may only be mapped to a target vertex with an
identical label; every query edge must map to a target edge.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.graph.graph import Graph, VertexId


@dataclass
class MatchStats:
    """Instrumentation collected during one sub-iso test.

    The PIN/PINC replacement policies need per-test costs, and the
    Demonstrator reports numbers of sub-iso tests — both come from here.
    """

    states_visited: int = 0
    backtracks: int = 0
    elapsed_seconds: float = 0.0

    def merge(self, other: "MatchStats") -> None:
        """Accumulate another test's counters into this one."""
        self.states_visited += other.states_visited
        self.backtracks += other.backtracks
        self.elapsed_seconds += other.elapsed_seconds


@dataclass
class MatchResult:
    """Outcome of one subgraph isomorphism test."""

    found: bool
    mapping: dict[VertexId, VertexId] | None = None
    stats: MatchStats = field(default_factory=MatchStats)

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.found


class SubgraphMatcher(abc.ABC):
    """Abstract subgraph isomorphism engine.

    Subclasses implement :meth:`find_embedding`; the convenience methods
    :meth:`is_subgraph` and :meth:`count_embeddings` are derived from it.
    """

    #: Human readable engine name (used in registries and reports).
    name: str = "abstract"

    @abc.abstractmethod
    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        """Search for one embedding of ``query`` into ``target``."""

    def is_subgraph(self, query: Graph, target: Graph) -> bool:
        """Return True iff ``query`` is subgraph-isomorphic to ``target``."""
        return self.find_embedding(query, target).found

    def find_all_embeddings(
        self, query: Graph, target: Graph, limit: int | None = None
    ) -> list[dict[VertexId, VertexId]]:
        """Enumerate embeddings (default implementation raises).

        Engines that support enumeration override this; GC itself only needs
        the boolean test, so enumeration is optional.
        """
        raise NotImplementedError(f"{self.name} does not support embedding enumeration")

    def count_embeddings(self, query: Graph, target: Graph, limit: int | None = None) -> int:
        """Count embeddings (delegates to :meth:`find_all_embeddings`)."""
        return len(self.find_all_embeddings(query, target, limit=limit))


def compatible_labels(query: Graph, target: Graph, q_vertex: VertexId, t_vertex: VertexId) -> bool:
    """Label compatibility rule shared by every engine."""
    return query.label(q_vertex) == target.label(t_vertex)


def trivially_impossible(query: Graph, target: Graph) -> bool:
    """Cheap necessary-condition screen shared by every engine.

    Returns True when the query certainly cannot embed into the target
    (size, label multiset, or degree bounds are violated).
    """
    if query.num_vertices > target.num_vertices or query.num_edges > target.num_edges:
        return True
    target_counts = target.label_counts()
    for label, count in query.label_counts().items():
        if target_counts.get(label, 0) < count:
            return True
    if query.num_vertices and max(query.degree_sequence(), default=0) > max(
        target.degree_sequence(), default=0
    ):
        return True
    return False


class timed:
    """Context manager measuring wall-clock time into a :class:`MatchStats`."""

    def __init__(self, stats: MatchStats) -> None:
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stats.elapsed_seconds += time.perf_counter() - self._start
