"""Command-line interface to the GC reproduction.

The demo exposes GC through web dashboards; this CLI is the terminal
equivalent, wrapping the library's public API:

* ``graphcache generate-dataset`` — write a synthetic dataset to disk
  (transaction text, JSON or SDF);
* ``graphcache run-workload``     — generate/run a workload over GC and print
  the Workload Run view plus the developer monitor summary;
* ``graphcache compare-policies`` — experiment I style policy competition;
* ``graphcache journey``          — Scenario I, the Query Journey, for one
  query over a warm cache;
* ``graphcache serve``            — the embedded query server (batching,
  admission control, ``/metrics``), optionally warm-started from a snapshot;
* ``graphcache loadgen``          — trace-replay load generation against a
  running server at a target QPS;
* ``graphcache trace``            — fetch span trees from a running server's
  ``/debug/traces`` and pretty-print them (one tree per traced query:
  client send → queue → batch → plan/scatter → per-shard pipeline → merge).

Every command accepts ``--seed`` so runs are reproducible.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro import __version__
from repro.api.remote import RemoteGraphService
from repro.cache.policies.registry import available_policies
from repro.dashboard import (
    DeveloperMonitor,
    QueryJourney,
    WorkloadRunView,
    format_table,
    policy_speedup_table,
)
from repro.graph import (
    load_dataset,
    load_sdf_file,
    molecule_dataset,
    save_json_file,
    save_sdf_file,
    save_transaction_file,
    synthetic_dataset,
)
from repro.graph.operations import random_connected_subgraph
from repro.methods.registry import available_methods
from repro.runtime import GCConfig
from repro.runtime.config import (
    ADMISSION_MODES,
    SCATTER_MODES,
    SHARD_BACKENDS,
    SHARD_POLICIES,
)
from repro.server import QueryServer
from repro.sharding import make_system
from repro.workload import (
    TRACE_SKEWS,
    Workload,
    WorkloadGenerator,
    compare_policies,
    generate_trace,
    replay_trace,
    run_workload,
)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="graphcache",
        description="GC: a semantic cache for subgraph/supergraph queries (VLDB 2018 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"graphcache {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate-dataset", help="write a synthetic dataset to disk")
    generate.add_argument("output", type=Path, help="output file (.txt, .json or .sdf)")
    generate.add_argument("--kind", default="molecule",
                          choices=["molecule", "random", "powerlaw", "protein"])
    generate.add_argument("--count", type=int, default=100, help="number of graphs")
    generate.add_argument("--seed", type=int, default=2018)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--dataset", type=Path, default=None,
                        help="dataset file; omitted = synthetic molecules")
    common.add_argument("--dataset-size", type=int, default=100,
                        help="synthetic dataset size when --dataset is omitted")
    common.add_argument("--seed", type=int, default=2018)
    common.add_argument("--method", default="graphgrep-sx", choices=available_methods())
    common.add_argument("--feature-size", type=int, default=2,
                        help="feature size for FTV methods")
    common.add_argument("--cache-capacity", type=int, default=50)
    common.add_argument("--window-size", type=int, default=10)
    common.add_argument("--workers", type=int, default=1,
                        help="concurrent query streams (1 = sequential)")
    common.add_argument("--async-maintenance", action="store_true",
                        help="run cache admission/replacement on a maintenance thread")
    common.add_argument("--shards", type=int, default=1,
                        help="partition the dataset across N scatter-gather shards "
                             "(1 = single system)")
    common.add_argument("--shard-policy", default="hash", choices=list(SHARD_POLICIES),
                        help="how graphs are routed to shards")
    common.add_argument("--shard-backend", default="thread",
                        choices=list(SHARD_BACKENDS),
                        help="shard hosting: 'thread' runs shards in-process, "
                             "'process' spawns one worker process per shard "
                             "(breaks the GIL for CPU-bound verification)")
    common.add_argument("--scatter", default="full", choices=list(SCATTER_MODES),
                        help="scatter strategy: 'full' sends every query to every "
                             "shard; 'short-circuit' skips shards whose feature "
                             "summary proves they cannot contribute answers")
    common.add_argument("--admission-mode", default="queue-depth",
                        choices=list(ADMISSION_MODES),
                        help="serving admission: bounded queue only, or cost-based "
                             "per-shard backpressure (serve command)")

    run = subparsers.add_parser("run-workload", parents=[common],
                                help="run a workload over GC and print the dashboards")
    run.add_argument("--queries", type=int, default=50)
    run.add_argument("--mix", default="popular")
    run.add_argument("--policy", default="HD", choices=available_policies())

    compare = subparsers.add_parser("compare-policies", parents=[common],
                                    help="run the same workload under several policies")
    compare.add_argument("--queries", type=int, default=50)
    compare.add_argument("--mix", default="popular")
    compare.add_argument("--policies", nargs="+", default=["LRU", "POP", "PIN", "PINC", "HD"])

    journey = subparsers.add_parser("journey", parents=[common],
                                    help="the Query Journey for one query over a warm cache")
    journey.add_argument("--warm-queries", type=int, default=50)
    journey.add_argument("--query-vertices", type=int, default=8)

    serve = subparsers.add_parser("serve", parents=[common],
                                  help="serve graph queries over HTTP (batching + backpressure)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 = ephemeral, printed at startup)")
    serve.add_argument("--policy", default="HD", choices=available_policies())
    serve.add_argument("--batch-size", type=int, default=4,
                       help="max queries coalesced into one concurrent batch")
    serve.add_argument("--batch-delay-ms", type=float, default=5.0,
                       help="max wait for stragglers once a batch is open")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission queue bound; full queue replies 429")
    serve.add_argument("--snapshot-path", type=Path, default=None,
                       help="cache snapshot: restored at startup, saved at shutdown")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for N seconds then drain (default: until Ctrl-C)")
    serve.add_argument("--trace-sample-rate", type=float, default=0.0,
                       help="fraction of requests the server traces end to end "
                            "(0 disables, 1 traces everything)")
    serve.add_argument("--slow-query-threshold", type=float, default=1.0,
                       help="seconds over which a traced query is kept as a "
                            "slow-query exemplar (full span tree + scatter plan)")
    serve.add_argument("--slow-query-log", action="store_true",
                       help="log slow-query exemplars to stderr as they happen "
                            "(implies structured logging setup)")

    loadgen = subparsers.add_parser("loadgen", parents=[common],
                                    help="replay a query trace against a running server")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--trace", type=Path, default=None,
                         help="saved trace (JSON workload) to replay; omitted = generate")
    loadgen.add_argument("--queries", type=int, default=100,
                         help="trace length when generating")
    loadgen.add_argument("--skew", default="zipfian", choices=list(TRACE_SKEWS),
                         help="popularity skew of the generated trace")
    loadgen.add_argument("--query-type", default="mixed",
                         choices=["subgraph", "supergraph", "mixed"])
    loadgen.add_argument("--save-trace", type=Path, default=None,
                         help="write the generated trace here before replaying")
    loadgen.add_argument("--qps", type=float, default=None,
                         help="open-loop target QPS (default: closed-loop)")
    loadgen.add_argument("--threads", type=int, default=4,
                         help="concurrent client threads (sync client)")
    loadgen.add_argument("--async-client", action="store_true",
                         help="use the asyncio client: thousands of pooled "
                              "connections in one process, no thread per "
                              "connection")
    loadgen.add_argument("--connections", type=int, default=512,
                         help="connection pool size of the async client "
                              "(pre-opened before the clock starts)")
    loadgen.add_argument("--deadline-ms", type=float, default=None,
                         help="per-query deadline in milliseconds; the server "
                              "sheds queries it cannot start in time (504s "
                              "count as timeouts, not errors)")
    loadgen.add_argument("--priority-mix", default=None,
                         help="weighted priority bands, e.g. '0:0.8,10:0.2' — "
                              "each query draws a band deterministically")

    trace = subparsers.add_parser(
        "trace", help="fetch and pretty-print span trees from /debug/traces")
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, required=True)
    trace.add_argument("--trace-id", default=None,
                       help="fetch one specific trace by id")
    trace.add_argument("--sort", default="recent", choices=["recent", "slowest"],
                       help="listing order when no --trace-id is given")
    trace.add_argument("--count", type=int, default=5,
                       help="number of trees to list")

    return parser


def _load_or_generate_dataset(args) -> list:
    if args.dataset is not None:
        path = Path(args.dataset)
        if path.suffix.lower() == ".sdf":
            return load_sdf_file(path)
        return load_dataset(path)
    return molecule_dataset(args.dataset_size, min_vertices=10, max_vertices=35, rng=args.seed)


def _config_from_args(args, policy: str | None = None) -> GCConfig:
    options = {}
    if args.method in ("graphgrep-sx", "grapes"):
        options["feature_size"] = args.feature_size
    return GCConfig(
        cache_capacity=args.cache_capacity,
        window_size=min(args.window_size, args.cache_capacity),
        replacement_policy=policy or getattr(args, "policy", "HD"),
        method=args.method,
        method_options=options,
        max_workers=getattr(args, "workers", 1),
        async_maintenance=getattr(args, "async_maintenance", False),
        num_shards=getattr(args, "shards", 1),
        shard_policy=getattr(args, "shard_policy", "hash"),
        shard_backend=getattr(args, "shard_backend", "thread"),
        scatter_mode=getattr(args, "scatter", "full"),
        admission_mode=getattr(args, "admission_mode", "queue-depth"),
        trace_sample_rate=getattr(args, "trace_sample_rate", 0.0),
        slow_query_threshold_s=getattr(args, "slow_query_threshold", 1.0),
    )


def cmd_generate_dataset(args) -> int:
    """Generate a synthetic dataset and write it in the requested format."""
    dataset = synthetic_dataset(args.count, kind=args.kind, rng=args.seed)
    suffix = args.output.suffix.lower()
    if suffix == ".json":
        save_json_file(dataset, args.output)
    elif suffix == ".sdf":
        save_sdf_file(dataset, args.output)
    else:
        save_transaction_file(dataset, args.output)
    print(f"wrote {len(dataset)} {args.kind} graphs to {args.output}")
    return 0


def cmd_run_workload(args) -> int:
    """Run one workload over GC and print the end-user and developer views."""
    dataset = _load_or_generate_dataset(args)
    workload = WorkloadGenerator(dataset, rng=args.seed + 1).generate(
        args.queries, mix=args.mix, name=args.mix
    )
    with make_system(dataset, _config_from_args(args)) as system:
        result = run_workload(system, workload)
        print(WorkloadRunView(result).render_text())
        print()
        print(DeveloperMonitor(system).render_text())
        if result.scatter is not None:
            stats = result.scatter["stats"]
            print()
            print(f"Scatter ({result.scatter['mode']}): "
                  f"mean fan-out {stats['mean_fanout']:.2f} of {args.shards} shards, "
                  f"skip rate {stats['skip_rate']:.1%}, "
                  f"summary fallbacks {stats['summary_fallbacks']}")
        if result.stage_breakdown:
            print()
            print("Pipeline stage latency")
            rows = [
                {
                    "stage": row["stage"],
                    "total_ms": round(row["total_seconds"] * 1000.0, 3),
                    "mean_ms": round(row["mean_seconds"] * 1000.0, 3),
                    "share_pct": round(row["share"] * 100.0, 1),
                }
                for row in result.stage_breakdown
            ]
            print(format_table(rows, columns=["stage", "total_ms", "mean_ms", "share_pct"]))
    return 0


def cmd_compare_policies(args) -> int:
    """Run the same workload under several policies and print the table."""
    dataset = _load_or_generate_dataset(args)
    workload = WorkloadGenerator(dataset, rng=args.seed + 1).generate(
        args.queries, mix=args.mix, name=args.mix
    )
    results = compare_policies(dataset, workload, args.policies,
                               config=_config_from_args(args, policy=args.policies[0]))
    print(policy_speedup_table(results))
    return 0


def cmd_journey(args) -> int:
    """Warm a cache and narrate the journey of one related query."""
    dataset = _load_or_generate_dataset(args)
    with make_system(dataset, _config_from_args(args)) as system:
        generator = WorkloadGenerator(dataset, rng=args.seed + 1)
        warmup = generator.generate(args.warm_queries, mix="popular", name="warmup")
        system.warm_cache(list(warmup))
        source = max(dataset, key=lambda graph: graph.num_vertices)
        query = random_connected_subgraph(source, min(args.query_vertices, source.num_vertices),
                                          rng=args.seed + 2)
        report = system.run_query(query, "subgraph")
        journey = QueryJourney(
            report,
            dataset_ids=[graph.graph_id for graph in dataset],
            cache_entry_ids=[entry.entry_id for cache in system.all_caches()
                             for entry in cache.entries()],
        )
        print(journey.render_text(columns=20))
    return 0


def cmd_serve(args) -> int:
    """Run the embedded query server until Ctrl-C (or for --duration)."""
    if args.slow_query_log:
        from repro.obs.logs import configure_logging

        # routes every repro.* logger — including repro.obs.slowquery, which
        # emits one WARNING per threshold breach — to stderr with trace ids
        configure_logging()
    dataset = _load_or_generate_dataset(args)
    server = QueryServer(
        dataset,
        _config_from_args(args),
        host=args.host,
        port=args.port,
        max_batch_size=args.batch_size,
        max_delay_seconds=args.batch_delay_ms / 1000.0,
        max_queue_depth=args.queue_depth,
        snapshot_path=args.snapshot_path,
    )
    server.start()
    shard_note = (
        f", shards={args.shards}/{args.shard_policy}"
        f"/{args.shard_backend}" if args.shards > 1 else ""
    )
    print(f"serving {len(dataset)} graphs at {server.address} "
          f"(batch={args.batch_size}, queue={args.queue_depth}{shard_note})")
    if args.trace_sample_rate > 0:
        print(f"tracing {args.trace_sample_rate:.0%} of requests "
              f"(slow-query threshold {args.slow_query_threshold:g}s); "
              f"inspect with: graphcache trace --port {server.port}")
    if server.restored_entries:
        print(f"cache warm-started with {server.restored_entries} entries "
              f"from {args.snapshot_path}")
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive mode
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        pass
    finally:
        server.stop()
    batcher = server.batcher.stats()
    print(f"drained: served={batcher.served} rejected={batcher.rejected} "
          f"batches={batcher.batches} mean_batch={batcher.mean_batch_size:.2f}")
    if args.snapshot_path is not None:
        print(f"cache snapshot saved to {args.snapshot_path}")
    return 0


def cmd_loadgen(args) -> int:
    """Replay a (loaded or generated) trace against a running server.

    Both replay modes go through the :mod:`repro.api` SDK: the sync client
    (`--threads` keep-alive connections, one thread each) or, with
    ``--async-client``, the asyncio client holding ``--connections`` pooled
    connections on one event loop.
    """
    if args.trace is not None:
        trace = Workload.load(args.trace)
    else:
        dataset = _load_or_generate_dataset(args)
        trace = generate_trace(dataset, args.queries, skew=args.skew,
                               query_type=args.query_type, seed=args.seed + 1)
        if args.save_trace is not None:
            trace.save(args.save_trace)
            print(f"trace saved to {args.save_trace}")
    deadline_seconds = (args.deadline_ms / 1000.0
                        if args.deadline_ms is not None else None)
    client = RemoteGraphService(args.host, args.port)
    client.health()  # fail fast when no server is listening
    if args.async_client:
        # the probe connection must not sit on a server slot while the
        # async pool — whose capacity this mode measures — does the work
        client.close()
        from repro.api.aio import replay_trace_async_blocking

        result = replay_trace_async_blocking(
            args.host, args.port, trace, target_qps=args.qps,
            max_connections=args.connections,
            warm_connections=min(args.connections, len(trace)),
            deadline_seconds=deadline_seconds,
            priority_mix=args.priority_mix,
        )
    else:
        result = replay_trace(client, trace, target_qps=args.qps,
                              num_threads=args.threads,
                              deadline_seconds=deadline_seconds,
                              priority_mix=args.priority_mix)
    print(format_table([result.summary()]))
    return 0 if result.errors == 0 else 1


def _print_span(span: dict, depth: int) -> None:
    duration_ms = span.get("duration_seconds", 0.0) * 1000.0
    attrs = span.get("attributes") or {}
    suffix = "".join(f" {key}={value}" for key, value in sorted(attrs.items()))
    print(f"  {'  ' * depth}{span.get('name', '?'):<{max(1, 30 - 2 * depth)}} "
          f"{duration_ms:9.3f}ms{suffix}")
    for child in span.get("children", []):
        _print_span(child, depth + 1)


def _print_tree(tree: dict) -> None:
    print(f"trace {tree.get('trace_id')} — {tree.get('num_spans')} spans, "
          f"{tree.get('duration_seconds', 0.0) * 1000.0:.3f}ms"
          f"{'' if tree.get('completed', True) else ' (incomplete)'}")
    for root in tree.get("roots", []):
        _print_span(root, 0)


def cmd_trace(args) -> int:
    """Fetch span trees from a server's ``/debug/traces`` and print them."""
    client = RemoteGraphService(args.host, args.port)
    if args.trace_id:
        payload = client.debug_traces(trace_id=args.trace_id)
        _print_tree(payload["trace"])
        return 0
    payload = client.debug_traces(sort=args.sort, count=args.count)
    trees = payload.get("traces", [])
    if not trees:
        print("no traces recorded yet (is the server tracing? "
              "serve --trace-sample-rate 1.0, or send v2 requests "
              "with a client-side sample rate)")
        return 1
    for tree in trees:
        _print_tree(tree)
        print()
    exemplars = payload.get("exemplars", [])
    if exemplars:
        print(f"{len(exemplars)} slow-query exemplar(s) over "
              f"{exemplars[0].get('threshold_seconds', 0.0):g}s — slowest: "
              f"trace {exemplars[0].get('trace_id')} at "
              f"{exemplars[0].get('duration_seconds', 0.0):.3f}s")
    return 0


_COMMANDS = {
    "generate-dataset": cmd_generate_dataset,
    "run-workload": cmd_run_workload,
    "compare-policies": cmd_compare_policies,
    "journey": cmd_journey,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
    "trace": cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
