"""GC / GraphCache: a semantic caching system for subgraph/supergraph queries.

Reproduction of Wang et al., "GC: A Graph Caching System for
Subgraph/Supergraph Queries" (PVLDB 11(12), 2018) and the underlying
GraphCache system.  See README.md for a quickstart and DESIGN.md for the
system inventory.

The most common entry points:

>>> from repro import GraphCacheSystem, GCConfig, molecule_dataset
>>> dataset = molecule_dataset(100, rng=7)
>>> system = GraphCacheSystem(dataset, GCConfig(cache_capacity=50))
>>> report = system.run_query(dataset[0].copy(), "subgraph")
>>> sorted(report.answer)[:3]          # doctest: +SKIP
[0, 17, 41]
"""

# Defined before the subpackage imports: repro.server reads it while this
# module is still initialising (repro.workload → replay → server chain).
__version__ = "1.1.0"

from repro.errors import (
    CacheError,
    ConfigurationError,
    GraphCacheError,
    GraphError,
    MethodError,
    WorkloadError,
)
from repro.graph import (
    Graph,
    molecule_dataset,
    molecule_graph,
    power_law_graph,
    random_labelled_graph,
    synthetic_dataset,
)
from repro.query_model import Query, QueryType
from repro.runtime import GCConfig, GraphCacheSystem, QueryReport
from repro.api import (
    ErrorEnvelope,
    LocalGraphService,
    MetricsSnapshot,
    QueryRequest,
    QueryResponse,
    RemoteGraphService,
)
from repro.server import QueryServer
from repro.workload import (
    QueryServerClient,
    Workload,
    WorkloadGenerator,
    WorkloadMix,
    compare_methods,
    compare_policies,
    generate_standard_workloads,
    generate_trace,
    replay_trace,
    run_workload,
)

__all__ = [
    "__version__",
    # errors
    "GraphCacheError",
    "GraphError",
    "MethodError",
    "CacheError",
    "WorkloadError",
    "ConfigurationError",
    # graph substrate
    "Graph",
    "molecule_graph",
    "molecule_dataset",
    "random_labelled_graph",
    "power_law_graph",
    "synthetic_dataset",
    # query model & runtime
    "Query",
    "QueryType",
    "GCConfig",
    "GraphCacheSystem",
    "QueryReport",
    # workloads
    "Workload",
    "WorkloadMix",
    "WorkloadGenerator",
    "generate_standard_workloads",
    "run_workload",
    "compare_policies",
    "compare_methods",
    # the service API (see repro.api for the full SDK surface)
    "QueryRequest",
    "QueryResponse",
    "ErrorEnvelope",
    "MetricsSnapshot",
    "LocalGraphService",
    "RemoteGraphService",
    # serving
    "QueryServer",
    "QueryServerClient",
    "replay_trace",
    "generate_trace",
]
