"""Plain SI method: no filtering, every dataset graph is a candidate.

The paper distinguishes "SI algorithms" (no index, one sub-iso test per
dataset graph) from "FTV methods".  GC is applicable over both; this class is
the SI end of that spectrum and the weakest baseline in the benchmarks.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.index.base import GraphId
from repro.methods.base import MethodM
from repro.query_model import QueryType


class DirectSIMethod(MethodM):
    """Verify the query against every dataset graph (no filter index)."""

    name = "direct-si"

    def _build_filter(self, dataset: list[Graph]) -> None:
        """Nothing to build: there is no index."""

    def _filter_candidates(self, query: Graph, query_type: QueryType) -> set[GraphId]:
        """Every dataset graph is a candidate."""
        return set(self._graph_order)
