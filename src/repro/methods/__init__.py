"""Method M implementations (filter-then-verify and plain SI)."""

from repro.methods.base import MethodM, MethodResult, VerificationOutcome
from repro.methods.ctindex import CTIndexMethod
from repro.methods.direct import DirectSIMethod
from repro.methods.grapes import GraphGrepSXMethod, GrapesMethod
from repro.methods.registry import available_methods, make_method, register_method
from repro.methods.verifier_pool import ParallelVerifier

__all__ = [
    "MethodM",
    "MethodResult",
    "VerificationOutcome",
    "ParallelVerifier",
    "DirectSIMethod",
    "GraphGrepSXMethod",
    "GrapesMethod",
    "CTIndexMethod",
    "register_method",
    "available_methods",
    "make_method",
]
