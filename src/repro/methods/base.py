"""Method M: the pluggable filter-then-verify query processor.

In the paper's architecture (Fig. 1) Method M is the component GC wraps: it
owns the dataset graphs, a Filter (a dataset index — possibly trivial) and a
Verifier (a sub-iso engine).  GC never re-implements query answering; it only
*reduces the candidate set* Method M would have verified.

:class:`MethodM` therefore exposes both the classic full execution
(:meth:`execute`) used by the no-cache baseline, and
:meth:`verify_candidates`, which GC calls with its pruned candidate set.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.errors import MethodError
from repro.graph.graph import Graph
from repro.index.base import DatasetIndex, GraphId, graph_id_sort_key
from repro.isomorphism.base import SubgraphMatcher
from repro.isomorphism.instrumentation import CountingMatcher
from repro.isomorphism.vf2 import VF2Matcher
from repro.query_model import QueryType


@dataclass
class VerificationOutcome:
    """Result of verifying one batch of candidates."""

    answers: set[GraphId] = field(default_factory=set)
    num_tests: int = 0
    verify_seconds: float = 0.0


@dataclass
class MethodResult:
    """Full outcome of processing one query with Method M (no cache)."""

    answer: set[GraphId] = field(default_factory=set)
    candidates: set[GraphId] = field(default_factory=set)
    num_subiso_tests: int = 0
    filter_seconds: float = 0.0
    verify_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Filtering plus verification time."""
        return self.filter_seconds + self.verify_seconds


class MethodM(abc.ABC):
    """Base class for filter-then-verify (and plain SI) methods."""

    name: str = "abstract"

    def __init__(self, verifier: SubgraphMatcher | None = None) -> None:
        # deferred import: verifier_pool depends on this module's dataclasses
        from repro.methods.verifier_pool import ParallelVerifier

        self.verifier = CountingMatcher(verifier or VF2Matcher())
        #: Shared batch verifier (GraphCache's thread resource management);
        #: candidate sub-iso tests of one query run through its worker pool.
        self.parallel_verifier = ParallelVerifier(threads=1)
        self._dataset: dict[GraphId, Graph] = {}
        self._graph_order: list[GraphId] = []
        self._built = False

    @property
    def verify_threads(self) -> int:
        """Worker threads used to verify one query's candidates (1 = sequential)."""
        return self.parallel_verifier.threads

    @verify_threads.setter
    def verify_threads(self, value: int) -> None:
        self.parallel_verifier.threads = value

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def build(self, dataset: Sequence[Graph] | Iterable[Graph]) -> None:
        """Register the dataset graphs and build the filter index."""
        if self._built:
            raise MethodError(f"{self.name} has already been built")
        graphs = list(dataset)
        for position, graph in enumerate(graphs):
            graph_id = graph.graph_id if graph.graph_id is not None else position
            if graph_id in self._dataset:
                raise MethodError(f"duplicate graph id {graph_id!r} in dataset")
            self._dataset[graph_id] = graph
            self._graph_order.append(graph_id)
        self._build_filter(graphs)
        self._built = True

    @abc.abstractmethod
    def _build_filter(self, dataset: list[Graph]) -> None:
        """Build the method-specific filter structure (may be a no-op)."""

    @abc.abstractmethod
    def _filter_candidates(self, query: Graph, query_type: QueryType) -> set[GraphId]:
        """Return the candidate ids produced by the method's filter."""

    # ------------------------------------------------------------------ #
    # dataset access
    # ------------------------------------------------------------------ #
    def graph_ids(self) -> list[GraphId]:
        """All dataset graph ids in dataset order."""
        self._require_built()
        return list(self._graph_order)

    def dataset_graph(self, graph_id: GraphId) -> Graph:
        """Look up one dataset graph by id."""
        self._require_built()
        try:
            return self._dataset[graph_id]
        except KeyError:
            raise MethodError(f"graph id {graph_id!r} is not part of the dataset") from None

    @property
    def dataset_size(self) -> int:
        """Number of dataset graphs."""
        return len(self._graph_order)

    # ------------------------------------------------------------------ #
    # query processing
    # ------------------------------------------------------------------ #
    def filter_candidates(self, query: Graph, query_type: QueryType | str) -> set[GraphId]:
        """Run only the filtering stage and return the candidate set."""
        self._require_built()
        return self._filter_candidates(query, QueryType.parse(query_type))

    def verify_one(self, query: Graph, graph_id: GraphId, query_type: QueryType | str) -> bool:
        """Run one sub-iso test between the query and a dataset graph.

        For subgraph queries the test is ``query ⊆ G``; for supergraph
        queries it is ``G ⊆ query``.
        """
        self._require_built()
        query_type = QueryType.parse(query_type)
        target = self.dataset_graph(graph_id)
        if query_type is QueryType.SUBGRAPH:
            return self.verifier.is_subgraph(query, target)
        return self.verifier.is_subgraph(target, query)

    def verify_candidates(
        self, query: Graph, candidates: Iterable[GraphId], query_type: QueryType | str
    ) -> VerificationOutcome:
        """Verify every candidate and return the confirmed answers.

        With ``verify_threads > 1`` the sub-iso tests of one query run on the
        shared :class:`~repro.methods.verifier_pool.ParallelVerifier` pool;
        results are identical to the sequential path.
        """
        self._require_built()
        query_type = QueryType.parse(query_type)
        candidate_list = list(candidates)
        return self.parallel_verifier.verify(
            candidate_list,
            lambda graph_id: self.verify_one(query, graph_id, query_type),
        )

    def execute(self, query: Graph, query_type: QueryType | str) -> MethodResult:
        """Classic filter-then-verify execution without any cache."""
        self._require_built()
        query_type = QueryType.parse(query_type)
        result = MethodResult()
        start = time.perf_counter()
        result.candidates = self._filter_candidates(query, query_type)
        result.filter_seconds = time.perf_counter() - start
        outcome = self.verify_candidates(
            query, sorted(result.candidates, key=graph_id_sort_key), query_type
        )
        result.answer = outcome.answers
        result.num_subiso_tests = outcome.num_tests
        result.verify_seconds = outcome.verify_seconds
        return result

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def index_memory_bytes(self) -> int:
        """Memory footprint of the method's filter index (0 if none)."""
        index = getattr(self, "index", None)
        if isinstance(index, DatasetIndex):
            return index.memory_bytes()
        return 0

    def describe(self) -> dict[str, object]:
        """Describe the method and its filter for reports."""
        description: dict[str, object] = {
            "name": self.name,
            "verifier": self.verifier.inner.name,
            "dataset_size": self.dataset_size,
        }
        index = getattr(self, "index", None)
        if isinstance(index, DatasetIndex):
            description["index"] = index.describe()
        return description

    def _require_built(self) -> None:
        if not self._built:
            raise MethodError(f"{self.name} has not been built over a dataset yet")
