"""Shared parallel candidate verification (GC's thread resource management).

Every Method M verifies candidate batches the same way: one boolean sub-iso
test per candidate, answers collected as a set.  :class:`ParallelVerifier`
centralises that loop — sequential when ``threads == 1``, batched over a
persistent worker pool otherwise — so methods no longer roll their own
ad-hoc thread handling and the pool is reused across queries instead of
being rebuilt per batch.

The verifier is safe to call from many query threads at once (a
``ThreadPoolExecutor`` accepts submissions from any thread); results are
identical to the sequential path regardless of thread count.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence

from repro.index.base import GraphId
from repro.methods.base import VerificationOutcome


class ParallelVerifier:
    """Runs one query's candidate sub-iso tests, optionally on a worker pool."""

    def __init__(self, threads: int = 1) -> None:
        self._threads = max(1, int(threads))
        self._pool = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    @property
    def threads(self) -> int:
        """Worker threads used per candidate batch (1 = sequential)."""
        return self._threads

    @threads.setter
    def threads(self, value: int) -> None:
        value = max(1, int(value))
        if value != self._threads:
            self._threads = value
            self.close()

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #
    def verify(
        self,
        candidates: Sequence[GraphId],
        test: Callable[[GraphId], bool],
    ) -> VerificationOutcome:
        """Apply ``test`` to every candidate and collect the answers.

        ``test`` is the method's per-candidate sub-iso check (e.g. ``query ⊆
        G``); it must be thread-safe when ``threads > 1``.
        """
        outcome = VerificationOutcome()
        start = time.perf_counter()
        if self._threads > 1 and len(candidates) > 1:
            pool = self._ensure_pool()
            try:
                verdicts = list(pool.map(test, candidates))
            except RuntimeError:
                if not getattr(pool, "_shutdown", False):
                    raise  # a genuine error from the test callable itself
                # the pool was shut down under us (threads reconfigured or
                # close() raced this batch) — the answers must not be lost.
                # Candidates already tested on the pool are re-tested here,
                # so instrumentation tallies may count that batch twice; the
                # answer set stays exact.
                verdicts = [test(graph_id) for graph_id in candidates]
        else:
            verdicts = [test(graph_id) for graph_id in candidates]
        for graph_id, matched in zip(candidates, verdicts):
            if matched:
                outcome.answers.add(graph_id)
            outcome.num_tests += 1
        outcome.verify_seconds = time.perf_counter() - start
        return outcome

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self._threads, thread_name_prefix="gc-verify"
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (it is lazily recreated on next use)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
