"""Registry of Method M implementations.

GC is "designed as a pluggable cache, allowing any future component to be
incorporated" — this registry is the programmatic face of that claim for
Method M: new methods register a factory under a name and become available
to the runtime configuration, the examples and the benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import UnknownMethodError
from repro.methods.base import MethodM
from repro.methods.ctindex import CTIndexMethod
from repro.methods.direct import DirectSIMethod
from repro.methods.grapes import GraphGrepSXMethod, GrapesMethod

MethodFactory = Callable[..., MethodM]

_REGISTRY: dict[str, MethodFactory] = {}


def register_method(name: str, factory: MethodFactory, overwrite: bool = False) -> None:
    """Register a Method M factory under a name."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"method {name!r} is already registered")
    _REGISTRY[key] = factory


def available_methods() -> list[str]:
    """Names of all registered methods."""
    return sorted(_REGISTRY)


def make_method(name: str, **kwargs) -> MethodM:
    """Instantiate a registered method by name."""
    key = name.lower()
    factory = _REGISTRY.get(key)
    if factory is None:
        raise UnknownMethodError(name, available_methods())
    return factory(**kwargs)


# built-in methods
register_method(DirectSIMethod.name, DirectSIMethod)
register_method(GraphGrepSXMethod.name, GraphGrepSXMethod)
register_method(GrapesMethod.name, GrapesMethod)
register_method(CTIndexMethod.name, CTIndexMethod)
