"""CT-Index style FTV method: tree (star) + cycle features, hashed fingerprints.

Represents the "different feature family, different space/filtering trade
off" point in the Method M spectrum.  Features are star and cycle patterns
(both monotone under subgraph containment) hashed into fixed-width
fingerprints, so the index is tiny but filtering is weaker than the exact
multiset indexes.
"""

from __future__ import annotations

from repro.errors import MethodError
from repro.features.base import CompositeExtractor
from repro.features.cycles import CycleFeatureExtractor
from repro.features.trees import StarFeatureExtractor
from repro.graph.graph import Graph
from repro.index.base import GraphId
from repro.index.bitmap import FingerprintIndex
from repro.isomorphism.base import SubgraphMatcher
from repro.methods.base import MethodM
from repro.query_model import QueryType


class CTIndexMethod(MethodM):
    """Fingerprint FTV method over star and cycle features."""

    name = "ct-index"

    def __init__(
        self,
        max_leaves: int = 3,
        max_cycle_length: int = 6,
        num_bits: int = 2048,
        verifier: SubgraphMatcher | None = None,
    ) -> None:
        if num_bits <= 0:
            raise MethodError("num_bits must be positive")
        super().__init__(verifier=verifier)
        self.max_leaves = max_leaves
        self.max_cycle_length = max_cycle_length
        self.num_bits = num_bits
        self.index: FingerprintIndex | None = None

    def _build_filter(self, dataset: list[Graph]) -> None:
        extractor = CompositeExtractor(
            [
                StarFeatureExtractor(max_leaves=self.max_leaves),
                CycleFeatureExtractor(max_length=self.max_cycle_length),
            ]
        )
        self.index = FingerprintIndex(extractor, num_bits=self.num_bits)
        self.index.build(dataset)

    def _filter_candidates(self, query: Graph, query_type: QueryType) -> set[GraphId]:
        assert self.index is not None
        return self.index.candidates(query, query_type)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["max_leaves"] = self.max_leaves
        description["max_cycle_length"] = self.max_cycle_length
        description["num_bits"] = self.num_bits
        return description
