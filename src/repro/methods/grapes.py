"""Path-feature FTV methods (GraphGrepSX and a plain inverted-index variant).

``GraphGrepSXMethod`` is the reproduction of the paper's Method M (Bonnici et
al., reference [1]): label paths up to a maximum length stored in a suffix
trie.  ``GrapesMethod`` keeps the same feature family in a flat inverted
index; both expose ``feature_size`` (the maximum path length), which is the
knob experiment II turns.
"""

from __future__ import annotations

from repro.errors import MethodError
from repro.features.paths import PathFeatureExtractor
from repro.graph.graph import Graph
from repro.index.base import GraphId
from repro.index.inverted import InvertedFeatureIndex
from repro.index.suffix_trie import SuffixTrieIndex
from repro.isomorphism.base import SubgraphMatcher
from repro.methods.base import MethodM
from repro.query_model import QueryType


class GraphGrepSXMethod(MethodM):
    """Suffix-trie FTV method over label paths (the demo's Method M)."""

    name = "graphgrep-sx"

    def __init__(
        self, feature_size: int = 3, verifier: SubgraphMatcher | None = None
    ) -> None:
        if feature_size < 1:
            raise MethodError("feature_size (maximum path length) must be at least 1")
        super().__init__(verifier=verifier)
        self.feature_size = feature_size
        self.index: SuffixTrieIndex | None = None

    def _build_filter(self, dataset: list[Graph]) -> None:
        self.index = SuffixTrieIndex(max_path_length=self.feature_size)
        self.index.build(dataset)

    def _filter_candidates(self, query: Graph, query_type: QueryType) -> set[GraphId]:
        assert self.index is not None
        return self.index.candidates(query, query_type)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["feature_size"] = self.feature_size
        return description


class GrapesMethod(MethodM):
    """Inverted-index FTV method over the same label-path features."""

    name = "grapes"

    def __init__(
        self, feature_size: int = 3, verifier: SubgraphMatcher | None = None
    ) -> None:
        if feature_size < 1:
            raise MethodError("feature_size (maximum path length) must be at least 1")
        super().__init__(verifier=verifier)
        self.feature_size = feature_size
        self.index: InvertedFeatureIndex | None = None

    def _build_filter(self, dataset: list[Graph]) -> None:
        self.index = InvertedFeatureIndex(PathFeatureExtractor(max_length=self.feature_size))
        self.index.build(dataset)

    def _filter_candidates(self, query: Graph, query_type: QueryType) -> set[GraphId]:
        assert self.index is not None
        return self.index.candidates(query, query_type)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["feature_size"] = self.feature_size
        return description
