"""AsyncRemoteGraphService: the asyncio backend + open-loop load generator.

The ROADMAP's "async client" item: the thread-per-connection sync replay
tops out around hundreds of connections (one OS thread each); this backend
holds *thousands* of concurrent keep-alive connections in one process on a
single event loop.  Stdlib only — the HTTP/1.1 client is hand-rolled over
``asyncio.open_connection`` (the server always frames responses with
``Content-Length``, so parsing is a status line + headers + exact read).

Connections live in a bounded pool: a request checks one out (opening lazily
up to ``max_connections``), sends, reads, and parks it back idle.  ``warm``
pre-opens a given number of connections so a load test measurably *holds*
them; ``pool_stats`` reports open/peak-open/in-flight/peak-in-flight
counters the benchmarks assert on.

:func:`replay_trace_async` mirrors :func:`repro.workload.replay.replay_trace`
(same :class:`ReplayResult`, same open-loop release schedule) but issues
every query as an asyncio task multiplexed over the pool — thousands of
in-flight queries cost coroutines, not threads.  :func:`replay_trace_async_blocking`
wraps it in ``asyncio.run`` for sync callers (the CLI's ``loadgen --async-client``).
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
import uuid

from repro.api.envelopes import (
    BatchResult,
    ErrorEnvelope,
    MetricsSnapshot,
    QueryResponse,
    as_request,
    parse_response,
    wire_error_message,
    wire_result,
)
from repro.api.remote import (
    negotiated_version_from,
    recording_start_body,
    trace_from_stop_payload,
    validate_pinned_version,
)
from repro.errors import ProtocolError, ServerError, WorkloadError
from repro.obs.recorder import get_recorder
from repro.obs.trace import Span, TraceContext, new_span_id, new_trace_id
from repro.query_model import QueryType
from repro.workload.replay import ReplayEvent, ReplayResult, with_serving_fields
from repro.workload.workload import Workload


class _Connection:
    """One keep-alive HTTP/1.1 connection (reader/writer pair)."""

    __slots__ = ("reader", "writer")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer

    async def request(self, method: str, path: str, host_header: str,
                      body: bytes | None = None) -> tuple[int, dict, bool]:
        """One request/response exchange; returns (status, payload, reusable)."""
        head = [f"{method} {path} HTTP/1.1", f"Host: {host_header}"]
        if body is not None:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        else:
            head.append("Content-Length: 0")
        raw = ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + (body or b"")
        self.writer.write(raw)
        await self.writer.drain()

        status_line = await self.reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
            raise ProtocolError(f"malformed HTTP status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("connection closed mid-headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await self.reader.readexactly(length) if length else b""
        payload = json.loads(data) if data else {}
        reusable = headers.get("connection", "keep-alive").lower() != "close"
        return status, payload, reusable

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:  # pragma: no cover - best-effort socket teardown
            pass


class AsyncRemoteGraphService:
    """Async HTTP :class:`GraphService` backend with a connection pool."""

    backend = "remote-async"

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        max_connections: int = 1024,
        protocol_version: int | None = None,
        trace_sample_rate: float = 0.0,
    ) -> None:
        if max_connections < 1:
            raise ServerError("max_connections must be at least 1")
        validate_pinned_version(protocol_version)
        if not (0.0 <= trace_sample_rate <= 1.0):
            raise ProtocolError("trace_sample_rate must be between 0 and 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_connections = max_connections
        #: Fraction of queries this client originates a trace for (v2 only).
        self.trace_sample_rate = trace_sample_rate
        # dedicated RNG: sampling must not perturb seeded workload streams
        self._sample_rng = random.Random(uuid.uuid4().int)
        self._version = protocol_version
        self._version_lock: asyncio.Lock | None = None  # bound to the running loop
        self._idle: list[_Connection] = []
        self._capacity: asyncio.Semaphore | None = None  # bound to the running loop
        self._closed = False
        # pool observability (asserted on by the S4 benchmark)
        self.open_connections = 0
        self.peak_open_connections = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        self.requests_sent = 0
        self.reconnects = 0

    @classmethod
    def for_server(cls, server, **kwargs) -> "AsyncRemoteGraphService":
        """Client bound to an in-process :class:`QueryServer`."""
        return cls(server.host, server.port, **kwargs)

    # ------------------------------------------------------------------ #
    # connection pool
    # ------------------------------------------------------------------ #
    def _semaphore(self) -> asyncio.Semaphore:
        if self._capacity is None:
            self._capacity = asyncio.Semaphore(self.max_connections)
        return self._capacity

    async def _open(self) -> _Connection:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), timeout=self.timeout
        )
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # request head and body go out as separate writes; without
            # NODELAY, Nagle holds the second one for the peer's delayed
            # ACK (~40ms per request, even on loopback)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.open_connections += 1
        self.peak_open_connections = max(self.peak_open_connections, self.open_connections)
        return _Connection(reader, writer)

    async def _acquire(self) -> _Connection:
        if self._closed:
            raise ServerError("async client is closed")
        await self._semaphore().acquire()
        if self._idle:
            return self._idle.pop()
        try:
            return await self._open()
        except BaseException:
            self._semaphore().release()
            raise

    def _release(self, connection: _Connection, reusable: bool) -> None:
        if reusable and not self._closed:
            self._idle.append(connection)
        else:
            connection.close()
            self.open_connections -= 1
        self._semaphore().release()

    def _discard(self, connection: _Connection) -> None:
        """Drop a broken connection; the capacity slot is NOT touched here —
        every caller releases (or re-acquires) the semaphore itself."""
        connection.close()
        self.open_connections -= 1

    async def warm(self, count: int, concurrency: int = 64) -> int:
        """Pre-open ``count`` keep-alive connections and park them idle.

        Opens in bounded waves so a large warm-up doesn't overflow the
        server's listen backlog.  Returns the number of connections open
        afterwards; this is how a load test *holds* N connections while the
        open-loop schedule multiplexes queries over them.
        """
        count = min(count, self.max_connections)
        gate = asyncio.Semaphore(concurrency)

        async def open_one() -> None:
            async with gate:
                self._idle.append(await self._open())

        need = count - self.open_connections
        if need > 0:
            await asyncio.gather(*(open_one() for _ in range(need)))
        return self.open_connections

    def pool_stats(self) -> dict:
        """Pool counters (open/peak/in-flight) for benchmarks and reports."""
        return {
            "open_connections": self.open_connections,
            "peak_open_connections": self.peak_open_connections,
            "idle_connections": len(self._idle),
            "in_flight": self.in_flight,
            "peak_in_flight": self.peak_in_flight,
            "requests_sent": self.requests_sent,
            "reconnects": self.reconnects,
            "max_connections": self.max_connections,
        }

    async def aclose(self) -> None:
        """Close every idle connection and refuse further requests."""
        self._closed = True
        while self._idle:
            connection = self._idle.pop()
            connection.close()
            self.open_connections -= 1

    async def __aenter__(self) -> "AsyncRemoteGraphService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    async def _request(self, method: str, path: str,
                       body: dict | None = None) -> tuple[int, dict]:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        host_header = f"{self.host}:{self.port}"
        for attempt in (0, 1):
            connection = await self._acquire()
            # counted only while a connection is held: waiters queued on the
            # pool semaphore are not "in flight" (peak stays <= pool size)
            self.in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
            try:
                status, response, reusable = await asyncio.wait_for(
                    connection.request(method, path, host_header, payload),
                    timeout=self.timeout,
                )
            except asyncio.TimeoutError:
                # the server may still be executing the request: retrying
                # would run the query twice, so timeouts always propagate
                self._discard(connection)
                self._semaphore().release()
                raise TimeoutError(f"{method} {path} timed out") from None
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                # stale keep-alive connection (server closed it between
                # requests, before processing anything): retry once
                self._discard(connection)
                self._semaphore().release()
                self.reconnects += 1
                if attempt:
                    raise
            except BaseException:
                # anything else (malformed response, cancellation): the
                # connection state is unknown — drop it, free the slot
                self._discard(connection)
                self._semaphore().release()
                raise
            else:
                self.requests_sent += 1
                self._release(connection, reusable)
                return status, response
            finally:
                self.in_flight -= 1
        raise ServerError("unreachable")  # pragma: no cover

    async def request(self, method: str, path: str,
                      body: dict | None = None) -> tuple[int, dict]:
        """One raw request/response exchange over the pool.

        The transport hook the process shard backend drives its workers
        through (queries *and* admin endpoints); same retry semantics as
        every other call — stale keep-alive connections are retried once,
        timeouts always propagate.
        """
        return await self._request(method, path, body)

    # ------------------------------------------------------------------ #
    # protocol negotiation
    # ------------------------------------------------------------------ #
    async def negotiate(self) -> int:
        """Pick the highest protocol version both sides speak (404 = v1)."""
        status, payload = await self._request("GET", "/protocol")
        return negotiated_version_from(status, payload)

    async def _protocol_version(self) -> int:
        if self._version is None:
            # serialise negotiation: a fan-out of first requests must not
            # each pay (and count) its own /protocol round trip
            if self._version_lock is None:
                self._version_lock = asyncio.Lock()
            async with self._version_lock:
                if self._version is None:
                    self._version = await self.negotiate()
        return self._version

    # ------------------------------------------------------------------ #
    # GraphService surface (await-shaped)
    # ------------------------------------------------------------------ #
    def _sampled(self) -> bool:
        rate = self.trace_sample_rate
        if rate <= 0.0:
            return False
        return rate >= 1.0 or self._sample_rng.random() < rate

    async def send(self, query,
                   query_type: QueryType | str = QueryType.SUBGRAPH) -> tuple[int, dict]:
        """POST one query; returns the raw ``(http_status, payload)``.

        Client-side sampling mirrors the sync backend: a sampled query
        originates a trace (``client.request`` root span in the local
        recorder) whose context rides the v2 envelope.
        """
        request = as_request(query, query_type)
        version = await self._protocol_version()
        context = None
        if request.trace is None and version >= 2 and self._sampled():
            context = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
            request.trace = context
        started_wall = time.time()
        started = time.perf_counter()
        try:
            return await self._request("POST", "/query", request.to_wire(version))
        finally:
            if context is not None:
                get_recorder().record(Span(
                    trace_id=context.trace_id, span_id=context.span_id,
                    name="client.request", start=started_wall,
                    duration_seconds=time.perf_counter() - started,
                    attributes={"request_id": request.request_id},
                ))

    async def run(self, query,
                  query_type: QueryType | str = QueryType.SUBGRAPH) -> QueryResponse:
        """Execute one query, raising the typed error on any failure."""
        status, payload = await self.send(query, query_type)
        outcome = parse_response(payload, http_status=status)
        if isinstance(outcome, ErrorEnvelope):
            raise outcome.to_exception()
        return outcome

    async def run_batch(self, queries, concurrency: int | None = None) -> BatchResult:
        """Execute queries concurrently over the pool; per-item outcomes."""
        requests = [as_request(query) for query in queries]
        limit = self.max_connections if concurrency is None else concurrency
        if limit < 1:
            raise ServerError("concurrency must be at least 1")
        gate = asyncio.Semaphore(limit)

        async def execute(request):
            async with gate:
                try:
                    return await self.run(request)
                except Exception as exc:
                    return ErrorEnvelope.from_exception(
                        exc, request_id=request.request_id)

        items = await asyncio.gather(*(execute(request) for request in requests))
        return BatchResult(items=list(items))

    async def stream_batch(self, queries, deadline_seconds: float | None = None,
                           priority: int | None = None):
        """Submit a whole batch over one ``POST /batch``; yield as they finish.

        The async twin of :meth:`RemoteGraphService.stream_batch`: one
        connection, one submission round-trip, per-query NDJSON lines back
        in the server's completion order, yielded as ``(index, outcome)``
        pairs.  The response is framed by connection close, so the
        connection is checked out of the pool for the whole stream and
        dropped (never re-parked) afterwards.
        """
        version = await self._protocol_version()
        if version < 2:
            raise ProtocolError(
                "streamed batch submission needs protocol v2; "
                "the server only speaks v1"
            )
        requests = []
        for query in queries:
            request = as_request(query)
            if deadline_seconds is not None and request.deadline_seconds is None:
                request.deadline_seconds = deadline_seconds
            if priority is not None and not request.priority:
                request.priority = priority
            requests.append(request)
        body = json.dumps({
            "version": version,
            "queries": [request.to_wire(version) for request in requests],
        }).encode("utf-8")
        connection = await self._acquire()
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        try:
            head = (
                f"POST /batch HTTP/1.1\r\nHost: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode("ascii")
            connection.writer.write(head + body)
            await connection.writer.drain()
            status_line = await asyncio.wait_for(
                connection.reader.readline(), timeout=self.timeout)
            parts = status_line.split(None, 2)
            if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
                raise ProtocolError(f"malformed HTTP status line: {status_line!r}")
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(
                    connection.reader.readline(), timeout=self.timeout)
                if line in (b"\r\n", b"\n"):
                    break
                if not line:
                    raise ConnectionError("connection closed mid-headers")
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            if status != 200:
                length = int(headers.get("content-length", "0"))
                data = (await connection.reader.readexactly(length)
                        if length else b"")
                payload = json.loads(data) if data else {}
                outcome = parse_response(payload, http_status=status)
                if isinstance(outcome, ErrorEnvelope):
                    raise outcome.to_exception()
                raise ServerError(f"/batch replied {status}: {payload}")
            self.requests_sent += 1
            while True:
                line = await asyncio.wait_for(
                    connection.reader.readline(), timeout=self.timeout)
                if not line:  # EOF: server closed — the batch is complete
                    break
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                index = payload.pop("index", None)
                if not isinstance(index, int):
                    raise ProtocolError(
                        f"batch result line without an index: {payload!r}")
                yield index, parse_response(payload)
        finally:
            self.in_flight -= 1
            self._discard(connection)  # close-framed: never reuse
            self._semaphore().release()

    async def run_batch_streamed(self, queries,
                                 deadline_seconds: float | None = None,
                                 priority: int | None = None) -> BatchResult:
        """:meth:`stream_batch`, gathered back into submission order."""
        queries = list(queries)
        items: list = [None] * len(queries)
        async for index, outcome in self.stream_batch(
                queries, deadline_seconds=deadline_seconds, priority=priority):
            if 0 <= index < len(items):
                items[index] = outcome
        for index, item in enumerate(items):
            if item is None:  # the server never answered this index
                items[index] = ErrorEnvelope.from_exception(
                    ServerError(f"no batch result line for index {index}"))
        return BatchResult(items=items)

    async def metrics(self) -> MetricsSnapshot:
        return MetricsSnapshot.from_wire(await self._ok("GET", "/metrics"))

    async def stats(self) -> dict:
        return await self._ok("GET", "/stats")

    async def health(self) -> dict:
        return await self._ok("GET", "/health")

    async def debug_traces(self, trace_id: str | None = None,
                           sort: str = "recent", count: int = 10) -> dict:
        """Fetch span trees from ``GET /debug/traces``."""
        if trace_id is not None:
            path = f"/debug/traces?trace_id={trace_id}"
        else:
            path = f"/debug/traces?sort={sort}&count={int(count)}"
        return await self._ok("GET", path)

    async def _ok(self, method: str, path: str, body: dict | None = None) -> dict:
        status, payload = await self._request(method, path, body)
        if status != 200:
            raise ServerError(f"{path} replied {status}: {payload}")
        return payload

    # ------------------------------------------------------------------ #
    # server-side trace recording
    # ------------------------------------------------------------------ #
    async def start_recording(self, name: str | None = None,
                              path: str | None = None) -> dict:
        return await self._ok("POST", "/record/start",
                              recording_start_body(name, path))

    async def stop_recording(self) -> Workload:
        return trace_from_stop_payload(await self._ok("POST", "/record/stop", {}))


# ---------------------------------------------------------------------- #
# open-loop async trace replay
# ---------------------------------------------------------------------- #
async def replay_trace_async(
    service: AsyncRemoteGraphService,
    trace: Workload,
    target_qps: float | None = None,
    concurrency: int | None = None,
    warm_connections: int | None = None,
    deadline_seconds: float | None = None,
    priority_mix: str | list[tuple[int, float]] | None = None,
) -> ReplayResult:
    """Replay ``trace`` through the async client, one task per query.

    Mirrors :func:`repro.workload.replay.replay_trace` exactly — same
    open-loop release schedule (query *i* is released at ``i / target_qps``
    seconds), same :class:`ReplayResult` — but concurrency costs coroutines,
    not threads, so one process holds thousands of connections.

    ``concurrency`` bounds in-flight queries (default: the pool size);
    ``warm_connections`` pre-opens that many keep-alive connections before
    the clock starts, so the run *holds* them for its whole duration.
    ``deadline_seconds``/``priority_mix`` stamp the v2 serving fields on
    every request exactly as in the sync replay (same deterministic
    priority assignment).
    """
    if target_qps is not None and target_qps <= 0:
        raise WorkloadError("target_qps must be positive (or None for closed-loop)")
    queries = with_serving_fields(list(trace), deadline_seconds=deadline_seconds,
                                  priority_mix=priority_mix)
    limit = service.max_connections if concurrency is None else concurrency
    if limit < 1:
        raise WorkloadError("concurrency must be at least 1")
    if warm_connections:
        await service.warm(warm_connections)
    events: list[ReplayEvent | None] = [None] * len(queries)
    gate = asyncio.Semaphore(limit)
    start = time.perf_counter()

    async def one(index: int) -> None:
        if target_qps is not None:
            delay = (start + index / target_qps) - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
        async with gate:
            sent = time.perf_counter()
            priority = getattr(queries[index], "priority", None)
            try:
                status, payload = await service.send(queries[index])
            except Exception as exc:  # transport failure, not a server verdict
                events[index] = ReplayEvent(
                    index=index, status=-1,
                    latency_seconds=time.perf_counter() - sent,
                    error=f"{type(exc).__name__}: {exc}",
                    priority=priority,
                )
                return
            latency = time.perf_counter() - sent
            body = wire_result(payload) if status == 200 else {}
            server_meta = body.get("server", {})
            events[index] = ReplayEvent(
                index=index,
                status=status,
                latency_seconds=latency,
                answer=frozenset(body["answer"]) if status == 200 else None,
                batch_size=server_meta.get("batch_size"),
                queue_seconds=server_meta.get("queue_seconds"),
                error=None if status == 200 else wire_error_message(payload),
                priority=priority,
            )

    await asyncio.gather(*(one(index) for index in range(len(queries))))
    return ReplayResult(
        trace_name=trace.name,
        events=[event for event in events if event is not None],
        elapsed_seconds=time.perf_counter() - start,
        target_qps=target_qps,
        num_threads=1,
        num_connections=service.peak_open_connections,
    )


def replay_trace_async_blocking(
    host: str,
    port: int,
    trace: Workload,
    target_qps: float | None = None,
    max_connections: int = 1024,
    warm_connections: int | None = None,
    timeout: float = 60.0,
    deadline_seconds: float | None = None,
    priority_mix: str | list[tuple[int, float]] | None = None,
) -> ReplayResult:
    """Sync entry point for the async replay (builds its own event loop)."""

    async def main() -> ReplayResult:
        async with AsyncRemoteGraphService(
            host, port, timeout=timeout, max_connections=max_connections
        ) as service:
            return await replay_trace_async(
                service, trace, target_qps=target_qps,
                warm_connections=warm_connections,
                deadline_seconds=deadline_seconds,
                priority_mix=priority_mix,
            )

    return asyncio.run(main())
