"""RemoteGraphService: the sync-HTTP backend of the service boundary.

A stdlib (``http.client``) client speaking the versioned envelope protocol
against a :class:`~repro.server.app.QueryServer`.  One keep-alive connection
per thread, so thread-pool load generators don't pay a TCP handshake per
query.  This replaces the bespoke ``QueryServerClient`` plumbing — the old
class still exists in :mod:`repro.workload.replay` as a thin v1-pinned
subclass for callers that want the raw payload dicts.

Protocol version is negotiated lazily on first use (``GET /protocol``; a
server without the endpoint is treated as v1-only) and can be pinned via the
constructor.  Errors come back as the same typed :mod:`repro.errors`
exceptions an in-process system raises, reconstructed from the wire
taxonomy — a 429 raises :class:`AdmissionRejectedError` with its
``shard``/``queue_depth`` attributes intact, never parsed from message text.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import uuid
from urllib.parse import urlencode

from repro.api.envelopes import (
    BatchResult,
    ErrorEnvelope,
    MetricsSnapshot,
    QueryResponse,
    SUPPORTED_VERSIONS,
    as_request,
    negotiate_version,
    parse_response,
)
from repro.errors import ProtocolError, ServerError
from repro.obs.recorder import get_recorder
from repro.obs.trace import Span, TraceContext, new_span_id, new_trace_id
from repro.query_model import QueryType

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - runtime import is lazy (replay.py imports us)
    from repro.workload.workload import Workload


# ---------------------------------------------------------------------- #
# wire logic shared by the sync and async transports — one definition, so
# a protocol change cannot silently skew one backend against the other
# ---------------------------------------------------------------------- #
def validate_pinned_version(protocol_version: int | None) -> None:
    """Reject pinning a wire version this library cannot speak."""
    if protocol_version is not None and protocol_version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"cannot pin unsupported protocol version {protocol_version!r}; "
            f"supported: {', '.join(str(v) for v in SUPPORTED_VERSIONS)}"
        )


def negotiated_version_from(status: int, payload: dict) -> int:
    """Interpret a ``GET /protocol`` reply (404 = pre-envelope v1-only)."""
    if status == 404:
        return 1
    if status != 200:
        raise ServerError(f"/protocol replied {status}: {payload}")
    versions = payload.get("versions")
    if not isinstance(versions, list) or not versions:
        raise ProtocolError(f"malformed /protocol payload: {payload!r}")
    return negotiate_version(versions)


def recording_start_body(name: str | None, path: str | None) -> dict:
    """The ``POST /record/start`` request body."""
    body: dict = {}
    if name is not None:
        body["name"] = name
    if path is not None:
        body["path"] = str(path)
    return body


def trace_from_stop_payload(payload: dict) -> "Workload":
    """The recorded trace a ``POST /record/stop`` reply describes."""
    from repro.workload.workload import Workload

    if payload.get("trace") is not None:
        return Workload.from_dict(payload["trace"])
    path = payload.get("path")
    if path is None:
        raise ServerError(f"malformed /record/stop payload: {payload!r}")
    return Workload.load(path)


class RemoteGraphService:
    """Sync HTTP :class:`GraphService` backend (keep-alive per thread)."""

    backend = "remote-sync"

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        protocol_version: int | None = None,
        trace_sample_rate: float = 0.0,
    ) -> None:
        validate_pinned_version(protocol_version)
        if not (0.0 <= trace_sample_rate <= 1.0):
            raise ProtocolError("trace_sample_rate must be between 0 and 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Fraction of queries this client originates a trace for (v2 wire
        #: only — a v1 server never sees the context).  The sampled trace
        #: ids come back on the response, so callers can correlate with the
        #: server's ``/debug/traces``.
        self.trace_sample_rate = trace_sample_rate
        # dedicated RNG: sampling must not perturb seeded workload streams
        self._sample_rng = random.Random(uuid.uuid4().int)
        self._local = threading.local()
        self._version = protocol_version
        self._version_lock = threading.Lock()

    @classmethod
    def for_server(cls, server, timeout: float = 60.0, **kwargs) -> "RemoteGraphService":
        """Client bound to an in-process :class:`QueryServer`."""
        return cls(server.host, server.port, timeout=timeout, **kwargs)

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.connection = connection
        return connection

    def _request(self, method: str, path: str, body: dict | None = None) -> tuple[int, dict]:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            connection = self._connection()
            try:
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                data = response.read()
                return response.status, json.loads(data) if data else {}
            except TimeoutError:
                # the server may still be executing the request: retrying a
                # POST would run the query twice (double-counted statistics),
                # so timeouts always propagate
                self.close()
                raise
            except (http.client.HTTPException, ConnectionError, OSError):
                # stale keep-alive connection (server closed it between
                # requests, before processing anything): reconnect once
                self.close()
                if attempt:
                    raise
        raise ServerError("unreachable")  # pragma: no cover - loop always returns

    def close(self) -> None:
        """Drop this thread's connection (others close on their own threads)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def __enter__(self) -> "RemoteGraphService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # protocol negotiation
    # ------------------------------------------------------------------ #
    @property
    def protocol_version(self) -> int:
        """The wire version in use (negotiates on first access)."""
        if self._version is None:
            with self._version_lock:
                if self._version is None:
                    self._version = self.negotiate()
        return self._version

    def negotiate(self) -> int:
        """Ask the server which protocol versions it speaks and pick one.

        A server without a ``/protocol`` endpoint (pre-envelope builds)
        answers 404 and is treated as v1-only.
        """
        status, payload = self._request("GET", "/protocol")
        return negotiated_version_from(status, payload)

    # ------------------------------------------------------------------ #
    # GraphService surface
    # ------------------------------------------------------------------ #
    def _sampled(self) -> bool:
        rate = self.trace_sample_rate
        if rate <= 0.0:
            return False
        return rate >= 1.0 or self._sample_rng.random() < rate

    def send(self, query, query_type: QueryType | str = QueryType.SUBGRAPH) -> tuple[int, dict]:
        """POST one query; returns the raw ``(http_status, payload)``.

        When client-side sampling fires (and the query doesn't already carry
        a context) a fresh trace is originated: a ``client.request`` root
        span lands in the local span recorder and the context rides the v2
        envelope so the server parents its own spans under it.
        """
        request = as_request(query, query_type)
        version = self.protocol_version
        context = None
        if request.trace is None and version >= 2 and self._sampled():
            context = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
            request.trace = context
        started_wall = time.time()
        started = time.perf_counter()
        try:
            return self._request("POST", "/query", request.to_wire(version))
        finally:
            if context is not None:
                get_recorder().record(Span(
                    trace_id=context.trace_id, span_id=context.span_id,
                    name="client.request", start=started_wall,
                    duration_seconds=time.perf_counter() - started,
                    attributes={"request_id": request.request_id},
                ))

    def run(self, query, query_type: QueryType | str = QueryType.SUBGRAPH) -> QueryResponse:
        """Execute one query, raising the typed error on any failure."""
        status, payload = self.send(query, query_type)
        outcome = parse_response(payload, http_status=status)
        if isinstance(outcome, ErrorEnvelope):
            raise outcome.to_exception()
        return outcome

    def run_batch(self, queries) -> BatchResult:
        """Execute queries sequentially over the keep-alive connection."""
        items: list = []
        for query in queries:
            request = as_request(query)
            try:
                items.append(self.run(request))
            except Exception as exc:
                items.append(ErrorEnvelope.from_exception(
                    exc, request_id=request.request_id))
        return BatchResult(items=items)

    def stream_batch(self, queries, deadline_seconds: float | None = None,
                     priority: int | None = None):
        """Submit a whole batch over one ``POST /batch``; yield as they finish.

        One connection, one submission round-trip; per-query NDJSON result
        lines stream back in the *server's completion order* and are yielded
        as ``(index, QueryResponse | ErrorEnvelope)`` pairs, ``index`` being
        the query's position in ``queries``.  ``deadline_seconds`` /
        ``priority`` apply to every query that doesn't already carry its
        own.  Uses a dedicated connection (the response is framed by
        connection close, so the thread-local keep-alive one stays usable).
        """
        version = self.protocol_version
        if version < 2:
            raise ProtocolError(
                "streamed batch submission needs protocol v2; "
                "the server only speaks v1"
            )
        requests = []
        for query in queries:
            request = as_request(query)
            if deadline_seconds is not None and request.deadline_seconds is None:
                request.deadline_seconds = deadline_seconds
            if priority is not None and not request.priority:
                request.priority = priority
            requests.append(request)
        body = json.dumps({
            "version": version,
            "queries": [request.to_wire(version) for request in requests],
        }).encode("utf-8")
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("POST", "/batch", body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            if response.status != 200:
                data = response.read()
                payload = json.loads(data) if data else {}
                outcome = parse_response(payload, http_status=response.status)
                if isinstance(outcome, ErrorEnvelope):
                    raise outcome.to_exception()
                raise ServerError(f"/batch replied {response.status}: {payload}")
            while True:
                line = response.readline()
                if not line:  # EOF: the server closed — the batch is complete
                    break
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                index = payload.pop("index", None)
                if not isinstance(index, int):
                    raise ProtocolError(f"batch result line without an index: "
                                        f"{payload!r}")
                yield index, parse_response(payload)
        finally:
            connection.close()

    def run_batch_streamed(self, queries, deadline_seconds: float | None = None,
                           priority: int | None = None) -> BatchResult:
        """:meth:`stream_batch`, gathered back into submission order."""
        queries = list(queries)
        items: list = [None] * len(queries)
        for index, outcome in self.stream_batch(
                queries, deadline_seconds=deadline_seconds, priority=priority):
            if 0 <= index < len(items):
                items[index] = outcome
        for index, item in enumerate(items):
            if item is None:  # the server never answered this index
                items[index] = ErrorEnvelope.from_exception(
                    ServerError(f"no batch result line for index {index}"))
        return BatchResult(items=items)

    def metrics(self) -> MetricsSnapshot:
        return MetricsSnapshot.from_wire(self._ok("GET", "/metrics"))

    def stats(self) -> dict:
        return self._ok("GET", "/stats")

    def health(self) -> dict:
        return self._ok("GET", "/health")

    def debug_traces(self, trace_id: str | None = None, sort: str = "recent",
                     count: int = 10) -> dict:
        """Fetch span trees from ``GET /debug/traces``."""
        if trace_id is not None:
            query = urlencode({"trace_id": trace_id})
        else:
            query = urlencode({"sort": sort, "count": count})
        return self._ok("GET", f"/debug/traces?{query}")

    def metrics_text(self) -> str:
        """The Prometheus-style text exposition (``/metrics?format=text``)."""
        connection = self._connection()
        connection.request("GET", "/metrics?format=text")
        response = connection.getresponse()
        data = response.read()
        if response.status != 200:
            raise ServerError(f"/metrics?format=text replied {response.status}")
        return data.decode("utf-8")

    def _ok(self, method: str, path: str, body: dict | None = None) -> dict:
        status, payload = self._request(method, path, body)
        if status != 200:
            raise ServerError(f"{path} replied {status}: {payload}")
        return payload

    # ------------------------------------------------------------------ #
    # server-side trace recording
    # ------------------------------------------------------------------ #
    def start_recording(self, name: str | None = None,
                        path: str | None = None) -> dict:
        """Start recording the server's live request stream as a trace.

        ``path`` (a server-side filesystem path) makes ``stop`` persist the
        trace there; without it the trace JSON comes back inline on stop.
        """
        return self._ok("POST", "/record/start", recording_start_body(name, path))

    def stop_recording(self) -> "Workload":
        """Stop recording; returns the captured replayable trace."""
        return trace_from_stop_payload(self._ok("POST", "/record/stop", {}))
