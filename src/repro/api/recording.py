"""Server-side trace recording: capture live traffic as a replayable trace.

The ROADMAP "server-side trace recording" item: while a recording is active
the :class:`~repro.server.app.QueryServer` appends every well-formed query
request it receives (admitted *or* backpressured — the recording reproduces
the **offered** load, not the served subset) to a :class:`TraceRecorder`.
Stopping yields a plain :class:`~repro.workload.workload.Workload`, so the
captured production traffic replays through either client
(:func:`~repro.workload.replay.replay_trace` or
:func:`~repro.api.aio.replay_trace_async`) against any candidate
configuration.  Trace metadata stamps the protocol version the requests
arrived under (v1 payloads are recorded post-upgrade, as v2 envelopes).
"""

from __future__ import annotations

import threading
import time

from repro.api.envelopes import PROTOCOL_VERSION, QueryRequest
from repro.errors import RecordingStateError
from repro.obs.trace import TRACE_KEY
from repro.query_model import Query
from repro.workload.workload import Workload


class TraceRecorder:
    """Thread-safe accumulator for the server's live request stream."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._active = False
        self._queries: list[Query] = []
        self._name = "recorded-trace"
        self._path: str | None = None
        self._started_at: float | None = None
        self._started_mono: float | None = None

    @property
    def active(self) -> bool:
        return self._active

    @property
    def recorded(self) -> int:
        with self._lock:
            return len(self._queries)

    def start(self, name: str | None = None, path: str | None = None) -> dict:
        """Begin a recording; raises :class:`RecordingStateError` if one runs."""
        with self._lock:
            if self._active:
                raise RecordingStateError(
                    f"a recording ({self._name!r}) is already active; stop it first"
                )
            self._active = True
            self._queries = []
            self._name = name or "recorded-trace"
            self._path = path
            # wall clock only stamps *when*; the monotonic clock measures
            # *how long*, so a clock step mid-recording cannot skew it
            self._started_at = time.time()
            self._started_mono = time.monotonic()
            return {"recording": True, "name": self._name, "path": self._path}

    def record(self, request: QueryRequest) -> None:
        """Append one parsed request (no-op while idle; cheap either way)."""
        if not self._active:
            return
        query = request.to_query()
        # a replayed trace must offer the original queries, not resurrect
        # the recording run's trace contexts
        query.metadata.pop(TRACE_KEY, None)
        if request.request_id is not None:
            query.metadata.setdefault("request_id", request.request_id)
        with self._lock:
            if self._active:
                self._queries.append(query)

    def stop(self) -> tuple[Workload, str | None]:
        """End the recording; returns the trace and the persist path (if any).

        A failed persist (unwritable/full filesystem) must not destroy the
        capture: the trace is handed back with ``path=None`` — the caller
        then ships it inline — and the write error rides in its metadata.
        """
        with self._lock:
            if not self._active:
                raise RecordingStateError("no recording is active")
            self._active = False
            queries, self._queries = self._queries, []
            name, path = self._name, self._path
            started_at = self._started_at
            started_mono = self._started_mono
        trace = Workload(
            name=name,
            queries=queries,
            metadata={
                "recorded": True,
                "protocol_version": PROTOCOL_VERSION,
                "recorded_at": started_at,
                "duration_seconds": round(time.monotonic() - started_mono, 3)
                if started_mono is not None else None,
            },
        )
        if path is not None:
            try:
                trace.save(path)
            except OSError as exc:
                trace.metadata["persist_error"] = f"{path}: {exc}"
                path = None
        return trace, path
