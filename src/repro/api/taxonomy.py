"""The error taxonomy table: one place mapping exceptions to the wire.

Every exception class in :mod:`repro.errors` has exactly one row here giving
its stable wire ``code``, its HTTP status, and whether a client may blindly
retry.  The table is the single source of truth in *both* directions:

* server side, :func:`rule_for` picks the most specific row for a raised
  exception so the HTTP layer never string-matches error messages (the old
  429 shard-blame text parsing this replaces);
* client side, :func:`reconstruct` rebuilds a typed exception from a wire
  code + details, so ``RemoteGraphService`` raises the *same* exception
  classes an in-process system would (``AdmissionRejectedError`` keeps its
  ``shard``/``queue_depth``/``estimated_cost_seconds`` attributes).

``tests/test_api_envelopes.py`` asserts the table is exhaustive over
:mod:`repro.errors` and that codes are unique, so adding an exception
without classifying it fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import errors as _errors
from repro.errors import GraphCacheError, ServerError


@dataclass(frozen=True)
class ErrorRule:
    """One row of the taxonomy: exception class → wire code + HTTP status."""

    exception: type[BaseException]
    code: str
    http_status: int
    #: True when the condition is transient and the same request may succeed
    #: if simply retried (backpressure, shutdown races) — pure client advice.
    retryable: bool = False


#: Exception attributes that ride along as structured ``details`` on the
#: wire (only those present on the instance and JSON-representable).
DETAIL_ATTRIBUTES = (
    "vertex",
    "u",
    "v",
    "budget",
    "name",
    "queue_depth",
    "shard",
    "estimated_cost_seconds",
    "respawns",
    "deadline_seconds",
)

#: The taxonomy, ordered most-specific-first: :func:`rule_for` returns the
#: first row whose class matches, so subclasses must precede their bases.
ERROR_TABLE: tuple[ErrorRule, ...] = (
    # serving: transient verdicts a client is expected to handle
    ErrorRule(_errors.AdmissionRejectedError, "admission-rejected", 429, retryable=True),
    ErrorRule(_errors.DeadlineExceededError, "timeout", 504, retryable=True),
    ErrorRule(_errors.ShardWorkerError, "shard-worker", 503, retryable=True),
    ErrorRule(_errors.ServerClosedError, "server-closed", 503, retryable=True),
    ErrorRule(_errors.RecordingStateError, "recording-state", 409),
    ErrorRule(_errors.ProtocolError, "protocol", 400),
    ErrorRule(_errors.ServerError, "server", 500),
    # graph data model: the request carried a bad pattern graph
    ErrorRule(_errors.VertexNotFoundError, "graph-vertex-not-found", 400),
    ErrorRule(_errors.EdgeNotFoundError, "graph-edge-not-found", 400),
    ErrorRule(_errors.DuplicateVertexError, "graph-duplicate-vertex", 400),
    ErrorRule(_errors.GraphError, "graph", 400),
    ErrorRule(_errors.GraphFormatError, "graph-format", 400),
    # execution engines: server-side faults
    ErrorRule(_errors.BudgetExceededError, "isomorphism-budget-exceeded", 500),
    ErrorRule(_errors.IsomorphismError, "isomorphism", 500),
    ErrorRule(_errors.IndexError_, "index", 500),
    ErrorRule(_errors.UnknownMethodError, "unknown-method", 400),
    ErrorRule(_errors.MethodError, "method", 500),
    ErrorRule(_errors.UnknownPolicyError, "unknown-policy", 400),
    ErrorRule(_errors.CacheCapacityError, "cache-capacity", 400),
    ErrorRule(_errors.CacheError, "cache", 500),
    # caller-supplied inputs
    ErrorRule(_errors.WorkloadError, "workload", 400),
    ErrorRule(_errors.ConfigurationError, "configuration", 400),
    # the base class: anything intentionally raised but not special-cased
    ErrorRule(GraphCacheError, "internal", 500),
)

#: The wire code of a missed deadline (HTTP 504).  Historically a "codeless
#: code" with no class behind it; it is now backed by
#: :class:`~repro.errors.DeadlineExceededError`, so clients get the typed
#: exception while the wire shape stays exactly what pre-deadline servers
#: spoke.
TIMEOUT_CODE = "timeout"
#: A code with no :mod:`repro.errors` class behind it (a non-library
#: exception escaped the pipeline); reconstructs to :class:`ServerError`.
UNKNOWN_CODE = "unexpected"

_FALLBACK_RULE = ErrorRule(GraphCacheError, UNKNOWN_CODE, 500)

_BY_CODE = {rule.code: rule for rule in ERROR_TABLE}


def rule_for(exc: BaseException) -> ErrorRule:
    """The most specific taxonomy row for ``exc`` (fallback: 500/unexpected)."""
    for rule in ERROR_TABLE:
        if isinstance(exc, rule.exception):
            return rule
    return _FALLBACK_RULE


def rule_for_code(code: str) -> ErrorRule | None:
    """The taxonomy row behind a wire code (None for unexpected codes)."""
    return _BY_CODE.get(code)


def details_for(exc: BaseException) -> dict:
    """The structured attributes of ``exc`` that travel on the wire."""
    details = {}
    for attribute in DETAIL_ATTRIBUTES:
        value = getattr(exc, attribute, None)
        if value is None:
            continue
        if isinstance(value, (str, int, float, bool)):
            details[attribute] = value
        else:  # graph ids may be arbitrary objects; keep them readable
            details[attribute] = repr(value)
    return details


def reconstruct(code: str, message: str, details: dict | None = None) -> GraphCacheError:
    """Rebuild the typed exception a wire error envelope describes.

    The class is instantiated without running its (often positional)
    ``__init__`` so the exact server-side message survives verbatim; the
    structured details are restored as attributes, which is all callers like
    the request batcher's shard-blame handling read.
    """
    rule = _BY_CODE.get(code)
    if rule is None or rule.code == UNKNOWN_CODE:
        return ServerError(message)
    cls = rule.exception
    if not issubclass(cls, GraphCacheError):  # pragma: no cover - table invariant
        return ServerError(message)
    exc = cls.__new__(cls)
    Exception.__init__(exc, message)
    for attribute, value in (details or {}).items():
        if attribute in DETAIL_ATTRIBUTES:
            setattr(exc, attribute, value)
    # AdmissionRejectedError always carries these in-process; mirror that
    if isinstance(exc, _errors.AdmissionRejectedError):
        for attribute in ("queue_depth", "shard", "estimated_cost_seconds"):
            if not hasattr(exc, attribute):
                setattr(exc, attribute, None)
    return exc
