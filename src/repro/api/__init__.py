"""The unified GraphService API: typed envelopes, one boundary, three backends.

This package is the product-shaped SDK over the whole serving stack.  Every
execution mode — direct, cached, sharded, served over sync HTTP, served over
async HTTP — is reached through one :class:`GraphService` surface speaking
versioned :mod:`~repro.api.envelopes` types:

>>> from repro.api import LocalGraphService, QueryRequest
>>> service = LocalGraphService(dataset, GCConfig(num_shards=2))  # doctest: +SKIP
>>> response = service.run(QueryRequest(graph=pattern))           # doctest: +SKIP
>>> sorted(response.answer)                                       # doctest: +SKIP

Swap ``LocalGraphService`` for :class:`RemoteGraphService` (sync HTTP) or
:class:`AsyncRemoteGraphService` (asyncio, thousands of pooled connections)
without touching the calling code — same envelopes, same typed errors.
"""

from repro.api.envelopes import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    BatchResult,
    ErrorEnvelope,
    MetricsSnapshot,
    QueryRequest,
    QueryResponse,
    as_request,
    detect_version,
    negotiate_version,
    parse_request,
    parse_response,
)
from repro.api.recording import RecordingStateError, TraceRecorder
from repro.api.remote import RemoteGraphService
from repro.api.service import GraphService, LocalGraphService
from repro.api.taxonomy import ERROR_TABLE, ErrorRule, reconstruct, rule_for

__all__ = [
    # protocol
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "detect_version",
    "negotiate_version",
    "parse_request",
    "parse_response",
    # envelopes
    "QueryRequest",
    "QueryResponse",
    "BatchResult",
    "ErrorEnvelope",
    "MetricsSnapshot",
    "as_request",
    # taxonomy
    "ERROR_TABLE",
    "ErrorRule",
    "rule_for",
    "reconstruct",
    # services
    "GraphService",
    "LocalGraphService",
    "RemoteGraphService",
    "AsyncRemoteGraphService",
    "replay_trace_async",
    "replay_trace_async_blocking",
    # recording
    "TraceRecorder",
    "RecordingStateError",
]


def __getattr__(name: str):
    # the asyncio backend imports the replay machinery; load it lazily so
    # `import repro.api` stays cheap and cycle-free for low-level callers
    if name in ("AsyncRemoteGraphService", "replay_trace_async",
                "replay_trace_async_blocking"):
        from repro.api import aio

        return getattr(aio, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
