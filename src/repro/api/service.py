"""GraphService: the one service boundary every execution mode sits behind.

A :class:`GraphService` answers typed :class:`QueryRequest` envelopes with
typed :class:`QueryResponse` envelopes, whatever actually executes them:

* :class:`LocalGraphService` — in this process, over a
  :class:`~repro.runtime.system.GraphCacheSystem` or a
  :class:`~repro.sharding.system.ShardedGraphCacheSystem`
  (``GCConfig.num_shards`` decides, via :func:`repro.sharding.make_system`);
* :class:`~repro.api.remote.RemoteGraphService` — over sync HTTP against a
  :class:`~repro.server.app.QueryServer`;
* :class:`~repro.api.aio.AsyncRemoteGraphService` — over asyncio HTTP with a
  connection pool (same envelopes, ``await``-shaped methods).

Failures surface as the *same* typed :mod:`repro.errors` exceptions in every
backend (remote transports reconstruct them from the wire taxonomy), so
callers write one error-handling path.  ``run_batch`` never raises for
per-query failures: each position of the returned :class:`BatchResult` is a
response or an :class:`ErrorEnvelope`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Protocol, runtime_checkable

from repro.api.envelopes import (
    BatchResult,
    ErrorEnvelope,
    MetricsSnapshot,
    QueryRequest,
    QueryResponse,
    as_request,
)
from repro.errors import ConfigurationError


@runtime_checkable
class GraphService(Protocol):
    """What every backend guarantees (structural; no inheritance needed)."""

    def run(self, query, query_type=...) -> QueryResponse:  # pragma: no cover
        """Execute one query; raises the typed error on failure."""
        ...

    def run_batch(self, queries) -> BatchResult:  # pragma: no cover
        """Execute many queries; per-item outcomes, never raises per query."""
        ...

    def metrics(self) -> MetricsSnapshot:  # pragma: no cover
        ...

    def stats(self) -> dict:  # pragma: no cover
        ...

    def health(self) -> dict:  # pragma: no cover
        ...

    def close(self) -> None:  # pragma: no cover
        ...


class LocalGraphService:
    """The in-process backend: a system facade behind the service boundary.

    Build it from a dataset (the service then owns and closes the system) or
    wrap an existing system with :meth:`from_system` (the caller keeps
    ownership).  Sharding is transparent: ``config.num_shards > 1`` routes
    construction through :func:`repro.sharding.make_system`.
    """

    backend = "local"

    def __init__(self, dataset=None, config=None, method=None, *, system=None) -> None:
        if (dataset is None) == (system is None):
            raise ConfigurationError(
                "LocalGraphService needs exactly one of 'dataset' or 'system'"
            )
        if system is None:
            from repro.sharding import make_system

            self.system = make_system(dataset, config, method=method)
            self._owns_system = True
        else:
            self.system = system
            self._owns_system = False

    @classmethod
    def from_system(cls, system) -> "LocalGraphService":
        """Wrap a caller-owned system (it is *not* closed by this service)."""
        return cls(system=system)

    # ------------------------------------------------------------------ #
    # GraphService surface
    # ------------------------------------------------------------------ #
    def run(self, query, query_type="subgraph") -> QueryResponse:
        request = as_request(query, query_type)
        report = self.system.run_query(request.to_query())
        return QueryResponse.from_report(report, request_id=request.request_id)

    def run_batch(self, queries, max_workers: int | None = None) -> BatchResult:
        """Execute a batch with per-item outcomes.

        ``max_workers`` defaults to the system's ``config.max_workers``;
        with 1 the batch runs sequentially (deterministic cache trajectory,
        the shape the differential harness compares hit counts on).
        """
        requests = [as_request(query) for query in queries]
        workers = self.system.config.max_workers if max_workers is None else max_workers
        if workers < 1:
            raise ConfigurationError("max_workers must be at least 1")

        def execute(request: QueryRequest):
            try:
                return self.run(request)
            except Exception as exc:
                return ErrorEnvelope.from_exception(exc, request_id=request.request_id)

        if workers == 1 or len(requests) <= 1:
            items = [execute(request) for request in requests]
        else:
            with ThreadPoolExecutor(max_workers=workers,
                                    thread_name_prefix="gc-service") as pool:
                items = list(pool.map(execute, requests))
        for cache in self.system.all_caches():
            cache.drain_maintenance()
        return BatchResult(items=items)

    def metrics(self) -> MetricsSnapshot:
        return MetricsSnapshot.from_system(self.system)

    def stats(self) -> dict:
        return {
            "backend": self.backend,
            "config": self.system.config.to_dict(),
            "dataset_size": len(self.system.dataset),
        }

    def health(self) -> dict:
        return {"status": "ok", "backend": self.backend}

    def close(self) -> None:
        if self._owns_system:
            self.system.close()

    def __enter__(self) -> "LocalGraphService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
