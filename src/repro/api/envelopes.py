"""Typed request/response envelopes and the versioned wire protocol.

This module is the single definition of what travels between a client and a
:class:`~repro.server.app.QueryServer` — every transport (sync HTTP, async
HTTP, in-process) and every tool (CLI, trace replay, differential harness)
speaks these types rather than ad-hoc JSON shapes.

Two wire versions exist:

* **v1** (legacy, still accepted) — the flat shapes the server spoke before
  the service API existed: a request is ``{"graph": ..., "query_type": ...,
  "metadata": ...}``, a success response is the flat report payload, an
  error is ``{"error": "<message>", ...}``.  v1 payloads carry no
  ``version`` key; :func:`parse_request` auto-upgrades them so recorded
  traces and old clients keep working unchanged.
* **v2** (current) — explicit envelopes: requests are ``{"version": 2,
  "query": {...}, "request_id": ...}``, success responses nest the result
  under ``"result"``, and errors carry the full taxonomy row
  (``code``/``http_status``/``retryable``/``details``) under ``"error"``
  instead of a bare message string, so clients never parse error text.

Version negotiation: servers expose ``GET /protocol`` listing their
``versions``; :func:`negotiate_version` picks the highest version both sides
support.  A server without the endpoint (pre-v2) is treated as v1-only.

Everything is JSON-safe (infinities map to ``None`` via
:func:`repro.cache.statistics.json_safe`); every envelope round-trips
``to_wire`` → ``from_wire`` losslessly, property-tested in
``tests/test_api_envelopes.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.cache.statistics import json_safe
from repro.api.taxonomy import (
    TIMEOUT_CODE,
    UNKNOWN_CODE,
    details_for,
    reconstruct,
    rule_for,
    rule_for_code,
)
from repro.errors import GraphCacheError, ProtocolError
from repro.graph.graph import Graph
from repro.obs.trace import TRACE_KEY, TraceContext
from repro.query_model import Query, QueryType

#: The protocol version this library speaks natively.
PROTOCOL_VERSION = 2

#: Every wire version the server accepts (v1 payloads are auto-upgraded).
SUPPORTED_VERSIONS = (1, 2)


def negotiate_version(
    server_versions: Iterable[int],
    client_versions: Iterable[int] = SUPPORTED_VERSIONS,
) -> int:
    """The highest protocol version both sides support.

    Raises :class:`ProtocolError` when the intersection is empty — a client
    must not silently downgrade below anything it can speak.
    """
    common = set(server_versions) & set(client_versions)
    if not common:
        raise ProtocolError(
            f"no common protocol version: server speaks {sorted(server_versions)}, "
            f"client speaks {sorted(client_versions)}"
        )
    return max(common)


def detect_version(payload: object) -> int:
    """The wire version of a request/response payload (absent key = v1)."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"payload must be a JSON object, got {type(payload).__name__}")
    version = payload.get("version", 1)
    if not isinstance(version, int) or isinstance(version, bool) or version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version!r}; "
            f"supported: {', '.join(str(v) for v in SUPPORTED_VERSIONS)}"
        )
    return version


# ---------------------------------------------------------------------- #
# requests
# ---------------------------------------------------------------------- #
@dataclass
class QueryRequest:
    """One graph query as a transport-agnostic envelope."""

    graph: Graph
    query_type: QueryType = QueryType.SUBGRAPH
    metadata: dict = field(default_factory=dict)
    #: Optional caller-chosen correlation id, echoed on the v2 response.
    request_id: str | int | None = None
    #: Optional distributed-tracing context; rides as an additive top-level
    #: ``"trace"`` section of the v2 envelope (never emitted on v1, so legacy
    #: clients and recorded traces are unaffected).
    trace: TraceContext | None = None
    #: Optional per-query deadline budget in seconds, measured from server
    #: admission.  The batcher sheds the query (typed ``timeout``/504) once
    #: the budget expires instead of executing dead work.  Additive v2-only
    #: wire key; v1 payloads never carry it.
    deadline_seconds: float | None = None
    #: Scheduling priority (higher = more urgent; default 0).  The batcher
    #: orders its queue by priority band, earliest deadline first within a
    #: band.  Additive v2-only wire key.
    priority: int = 0

    def __post_init__(self) -> None:
        self.query_type = QueryType.parse(self.query_type)

    @classmethod
    def from_query(cls, query: Query, request_id: str | int | None = None) -> "QueryRequest":
        """Wrap an in-process :class:`Query` (the graph is shared, not copied).

        A trace carrier stamped in ``query.metadata`` is lifted onto the
        envelope's ``trace`` field so it travels in the envelope section of
        the wire format rather than inside user metadata.
        """
        metadata = dict(query.metadata)
        trace = TraceContext.from_wire(metadata.pop(TRACE_KEY, None))
        return cls(graph=query.graph, query_type=query.query_type,
                   metadata=metadata, request_id=request_id, trace=trace)

    def to_query(self) -> Query:
        """A fresh executable :class:`Query` (new query id) for the engine."""
        metadata = dict(self.metadata)
        if self.trace is not None:
            metadata[TRACE_KEY] = self.trace.to_carrier()
        return Query(graph=self.graph, query_type=self.query_type,
                     metadata=metadata)

    def to_wire(self, version: int = PROTOCOL_VERSION) -> dict:
        """Serialise for the wire in the given protocol version."""
        body = {
            "graph": self.graph.to_dict(),
            "query_type": self.query_type.value,
            "metadata": dict(self.metadata),
        }
        if version == 1:
            return body
        payload: dict = {"version": 2, "query": body}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.trace is not None:
            payload["trace"] = self.trace.to_wire()
        if self.deadline_seconds is not None:
            payload["deadline_seconds"] = self.deadline_seconds
        if self.priority:
            payload["priority"] = self.priority
        return payload

    @classmethod
    def from_wire(cls, payload: dict) -> "QueryRequest":
        """Parse either wire version (see :func:`parse_request`)."""
        return parse_request(payload)[0]


def parse_request(payload: object) -> tuple[QueryRequest, int]:
    """Parse a request payload, returning the envelope and its wire version.

    v1 payloads (no ``version`` key, graph at top level) are auto-upgraded:
    the caller gets the same :class:`QueryRequest` either way and uses the
    returned version only to phrase the *response* the way the client asked.
    """
    version = detect_version(payload)
    if version == 1:
        body, request_id, trace = payload, None, None
        deadline_seconds, priority = None, 0
    else:
        body = payload.get("query")
        if not isinstance(body, dict):
            raise ProtocolError("v2 request has no 'query' object")
        request_id = payload.get("request_id")
        if request_id is not None and not isinstance(request_id, (str, int)):
            raise ProtocolError("'request_id' must be a string or integer")
        # lenient by design: a malformed trace section reads as "untraced"
        trace = TraceContext.from_wire(payload.get("trace"))
        deadline_seconds = payload.get("deadline_seconds")
        if deadline_seconds is not None:
            if (not isinstance(deadline_seconds, (int, float))
                    or isinstance(deadline_seconds, bool)
                    or deadline_seconds <= 0):
                raise ProtocolError("'deadline_seconds' must be a positive number")
            deadline_seconds = float(deadline_seconds)
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ProtocolError("'priority' must be an integer")
    if "graph" not in body:
        raise ProtocolError("request has no 'graph' field")
    try:
        graph = Graph.from_dict(body["graph"])
    except Exception as exc:
        raise ProtocolError(f"malformed 'graph' payload: {exc}") from exc
    try:
        query_type = QueryType.parse(body.get("query_type", "subgraph"))
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    metadata = body.get("metadata", {})
    if not isinstance(metadata, dict):
        raise ProtocolError("'metadata' must be a JSON object")
    request = QueryRequest(graph=graph, query_type=query_type,
                           metadata=dict(metadata), request_id=request_id,
                           trace=trace, deadline_seconds=deadline_seconds,
                           priority=priority)
    return request, version


def as_request(query: "QueryRequest | Query | Graph",
               query_type: QueryType | str = QueryType.SUBGRAPH) -> QueryRequest:
    """Coerce any of the accepted query spellings into an envelope."""
    if isinstance(query, QueryRequest):
        return query
    if isinstance(query, Query):
        return QueryRequest.from_query(query)
    if isinstance(query, Graph):
        return QueryRequest(graph=query, query_type=QueryType.parse(query_type))
    raise ProtocolError(
        f"cannot build a QueryRequest from {type(query).__name__}; "
        "expected QueryRequest, Query or Graph"
    )


# ---------------------------------------------------------------------- #
# responses
# ---------------------------------------------------------------------- #
@dataclass
class QueryResponse:
    """One successful query answer plus its observability payload."""

    answer: frozenset
    query_id: int | None = None
    query_type: QueryType = QueryType.SUBGRAPH
    #: ``{"exact": bool, "sub": int, "super": int}`` — confirmed cache hits.
    hits: dict = field(default_factory=dict)
    #: ``{"dataset": int, "baseline": int, "probe": int}`` — sub-iso tests.
    tests: dict = field(default_factory=dict)
    stage_seconds: dict = field(default_factory=dict)
    total_seconds: float | None = None
    #: Serving metadata (absent when the query ran in-process).
    queue_seconds: float | None = None
    batch_size: int | None = None
    request_id: str | int | None = None
    #: Trace id of the server-side span tree for this query (v2 only,
    #: additive) — feed it to ``repro trace <id>`` / ``GET /debug/traces``.
    trace_id: str | None = None

    @classmethod
    def from_report(
        cls,
        report,
        queue_seconds: float | None = None,
        batch_size: int | None = None,
        request_id: str | int | None = None,
    ) -> "QueryResponse":
        """Build from a :class:`~repro.runtime.report.QueryReport`."""
        return cls(
            answer=frozenset(report.answer),
            query_id=report.query.query_id,
            query_type=report.query.query_type,
            hits={
                "exact": report.exact_hit_entry is not None,
                "sub": len(report.sub_hit_entries),
                "super": len(report.super_hit_entries),
            },
            tests={
                "dataset": report.dataset_tests,
                "baseline": report.baseline_tests,
                "probe": report.probe_tests,
            },
            stage_seconds=dict(report.stage_seconds),
            total_seconds=report.total_seconds,
            queue_seconds=queue_seconds,
            batch_size=batch_size,
            request_id=request_id,
        )

    def _body(self) -> dict:
        payload = {
            "answer": sorted(self.answer, key=repr),
            "query_id": self.query_id,
            "query_type": self.query_type.value,
            "hits": dict(self.hits),
            "tests": dict(self.tests),
            "stage_seconds": dict(self.stage_seconds),
            "total_seconds": self.total_seconds,
        }
        server: dict = {}
        if self.queue_seconds is not None:
            server["queue_seconds"] = self.queue_seconds
        if self.batch_size is not None:
            server["batch_size"] = self.batch_size
        if server:
            payload["server"] = server
        return json_safe(payload)

    def to_wire(self, version: int = PROTOCOL_VERSION) -> dict:
        if version == 1:
            return self._body()
        payload: dict = {"version": 2, "result": self._body()}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.trace_id is not None:
            payload["trace"] = {"trace_id": self.trace_id}
        return payload

    @classmethod
    def from_wire(cls, payload: dict) -> "QueryResponse":
        version = detect_version(payload)
        body = payload if version == 1 else payload.get("result")
        if not isinstance(body, dict) or "answer" not in body:
            raise ProtocolError("response has no 'answer' field")
        server = body.get("server", {}) or {}
        trace = payload.get("trace") if version >= 2 else None
        trace_id = trace.get("trace_id") if isinstance(trace, dict) else None
        return cls(
            answer=frozenset(body["answer"]),
            query_id=body.get("query_id"),
            query_type=QueryType.parse(body.get("query_type", "subgraph")),
            hits=dict(body.get("hits", {})),
            tests=dict(body.get("tests", {})),
            stage_seconds=dict(body.get("stage_seconds", {})),
            total_seconds=body.get("total_seconds"),
            queue_seconds=server.get("queue_seconds"),
            batch_size=server.get("batch_size"),
            request_id=payload.get("request_id") if version >= 2 else None,
            trace_id=trace_id if isinstance(trace_id, str) else None,
        )


# ---------------------------------------------------------------------- #
# errors
# ---------------------------------------------------------------------- #
#: v1 error payloads carry these detail keys flat next to ``"error"`` (the
#: pre-envelope 429 shape clients already understand).
_V1_DETAIL_KEYS = ("queue_depth", "shard", "estimated_cost_seconds")

#: Fallback codes inferred from a bare HTTP status when a v1 error payload
#: (message string only) must be lifted into the taxonomy.
_STATUS_CODES = {
    400: "protocol",
    429: "admission-rejected",
    500: UNKNOWN_CODE,
    503: "server-closed",
    504: "timeout",
}


@dataclass
class ErrorEnvelope:
    """A failed request as a typed, transport-independent envelope."""

    code: str
    message: str
    http_status: int = 500
    retryable: bool = False
    details: dict = field(default_factory=dict)
    request_id: str | int | None = None

    @classmethod
    def from_exception(cls, exc: BaseException,
                       request_id: str | int | None = None) -> "ErrorEnvelope":
        """Classify an exception via the taxonomy table."""
        if isinstance(exc, GraphCacheError):
            rule = rule_for(exc)
            return cls(code=rule.code, message=str(exc),
                       http_status=rule.http_status, retryable=rule.retryable,
                       details=details_for(exc), request_id=request_id)
        return cls(code=UNKNOWN_CODE, message=f"{type(exc).__name__}: {exc}",
                   http_status=500, retryable=False, request_id=request_id)

    @classmethod
    def timeout(cls, message: str,
                request_id: str | int | None = None) -> "ErrorEnvelope":
        """The serving pipeline missed its deadline (HTTP 504, retryable)."""
        return cls(code="timeout", message=message, http_status=504,
                   retryable=True, request_id=request_id)

    def to_exception(self) -> GraphCacheError:
        """The typed exception this envelope describes (taxonomy round-trip)."""
        return reconstruct(self.code, self.message, self.details)

    def to_wire(self, version: int = PROTOCOL_VERSION) -> dict:
        if version == 1:
            payload = {"error": self.message}
            for key in _V1_DETAIL_KEYS:
                if key in self.details:
                    payload[key] = self.details[key]
            return json_safe(payload)
        body = {
            "code": self.code,
            "message": self.message,
            "http_status": self.http_status,
            "retryable": self.retryable,
            "details": dict(self.details),
        }
        payload = {"version": 2, "error": body}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return json_safe(payload)

    @classmethod
    def from_wire(cls, payload: dict, http_status: int | None = None) -> "ErrorEnvelope":
        """Parse either wire version.

        A v1 error is a bare message string, so the taxonomy ``code`` must be
        inferred from the transport's ``http_status`` (pass it when known).
        """
        version = detect_version(payload)
        if version >= 2:
            body = payload.get("error")
            if not isinstance(body, dict) or "message" not in body:
                raise ProtocolError("v2 error payload has no 'error' object")
            return cls(
                code=body.get("code", UNKNOWN_CODE),
                message=body["message"],
                http_status=body.get("http_status", http_status or 500),
                retryable=bool(body.get("retryable", False)),
                details=dict(body.get("details", {})),
                request_id=payload.get("request_id"),
            )
        if "error" not in payload:
            raise ProtocolError("v1 error payload has no 'error' field")
        details = {key: payload[key] for key in _V1_DETAIL_KEYS if key in payload}
        status = http_status or 500
        code = _STATUS_CODES.get(status, UNKNOWN_CODE)
        # v1 carries no retryable flag: recover the taxonomy's advice for
        # the inferred code so v1 and v2 clients treat backpressure alike
        rule = rule_for_code(code)
        retryable = rule.retryable if rule is not None else code == TIMEOUT_CODE
        return cls(code=code, message=str(payload["error"]), http_status=status,
                   retryable=retryable, details=details)


def parse_response(
    payload: dict, http_status: int | None = None
) -> Union[QueryResponse, ErrorEnvelope]:
    """Parse a response payload into the success or the error envelope.

    An ``"error"`` key marks a failure in both wire versions (the v1 flat
    success shape never carries one), so no per-version branching is needed.
    """
    detect_version(payload)
    if "error" in payload:
        return ErrorEnvelope.from_wire(payload, http_status=http_status)
    return QueryResponse.from_wire(payload)


# ---------------------------------------------------------------------- #
# batches and metrics
# ---------------------------------------------------------------------- #
@dataclass
class BatchResult:
    """Per-item outcomes of one batch: a response or an error per position."""

    items: list  # list[QueryResponse | ErrorEnvelope]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, index: int):
        return self.items[index]

    @property
    def responses(self) -> list[QueryResponse]:
        return [item for item in self.items if isinstance(item, QueryResponse)]

    @property
    def failures(self) -> list[ErrorEnvelope]:
        return [item for item in self.items if isinstance(item, ErrorEnvelope)]

    @property
    def ok(self) -> bool:
        """True when every item in the batch succeeded."""
        return not self.failures

    def answers(self) -> list[frozenset | None]:
        """Answer set per position (``None`` where the item failed)."""
        return [
            item.answer if isinstance(item, QueryResponse) else None
            for item in self.items
        ]

    def raise_first(self) -> "BatchResult":
        """Raise the first failure's typed exception; returns self when ok."""
        for item in self.items:
            if isinstance(item, ErrorEnvelope):
                raise item.to_exception()
        return self


@dataclass
class MetricsSnapshot:
    """The ``/metrics`` surface as a typed envelope (one point in time).

    ``statistics`` is the :class:`StatisticsManager` snapshot (merged +
    per-shard aggregates for sharded systems); the optional sections mirror
    what the serving layer exposes for each system shape.
    """

    statistics: dict = field(default_factory=dict)
    hit_percentages: list = field(default_factory=list)
    cache: dict | None = None
    shards: list | None = None
    router: dict | None = None
    scatter: dict | None = None

    @classmethod
    def from_system(cls, system) -> "MetricsSnapshot":
        """Snapshot a live system (single or sharded facade)."""
        snapshot = cls(
            statistics=system.statistics.to_dict(),
            hit_percentages=json_safe(system.hit_percentages()),
        )
        describe_shards = getattr(system, "describe_shards", None)
        if describe_shards is not None:
            snapshot.shards = json_safe(describe_shards())
            snapshot.router = json_safe(system.router.describe())
            snapshot.scatter = json_safe(system.scatter_metrics())
        elif system.cache is not None:
            snapshot.cache = json_safe(system.cache.describe())
        return snapshot

    @property
    def aggregate(self) -> dict:
        """The merged aggregate statistics block."""
        return self.statistics.get("aggregate", {})

    def to_wire(self) -> dict:
        payload: dict = {
            "statistics": self.statistics,
            "hit_percentages": self.hit_percentages,
        }
        for key in ("cache", "shards", "router", "scatter"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return json_safe(payload)

    @classmethod
    def from_wire(cls, payload: dict) -> "MetricsSnapshot":
        if not isinstance(payload, dict) or "statistics" not in payload:
            raise ProtocolError("metrics payload has no 'statistics' section")
        return cls(
            statistics=payload["statistics"],
            hit_percentages=list(payload.get("hit_percentages", [])),
            cache=payload.get("cache"),
            shards=payload.get("shards"),
            router=payload.get("router"),
            scatter=payload.get("scatter"),
        )


# ---------------------------------------------------------------------- #
# wire helpers shared by the replay machinery (version-agnostic reads)
# ---------------------------------------------------------------------- #
def wire_version(payload: object) -> int:
    """Best-effort wire version of a payload: lenient, never raises.

    Unlike :func:`detect_version` this tolerates junk (non-dict payloads,
    non-int versions) by answering 1, so hot-path readers in replay worker
    threads degrade to a parse error instead of dying on a ``TypeError``.
    """
    if not isinstance(payload, dict):
        return 1
    version = payload.get("version", 1)
    if isinstance(version, int) and not isinstance(version, bool) and version >= 2:
        return version
    return 1


def wire_result(payload: dict) -> dict:
    """The flat result body of a success payload, whatever its version."""
    if wire_version(payload) >= 2:
        return payload.get("result", {}) or {}
    return payload if isinstance(payload, dict) else {}


def wire_error_message(payload: dict) -> str:
    """The human-readable error message, whatever the payload's version."""
    if not isinstance(payload, dict):
        return str(payload)
    error = payload.get("error", "")
    if isinstance(error, dict):
        return str(error.get("message", error))
    return str(error)
