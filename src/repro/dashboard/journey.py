"""Scenario I — "The Query Journey".

Walks a general end-user through the computations GC performed for a single
query, mirroring the eight panels of Fig. 3 of the paper:

(a) H — sub-case cache hits          (e) H' — super-case cache hits
(b) C_M — Method M's candidate set   (f) C  — GC's reduced candidate set
(c) S — savings by the sub case      (g) R  — candidates surviving sub-iso
(d) S' — savings by the super case   (h) A  — the final answer set

The journey is produced from a :class:`~repro.runtime.report.QueryReport`
plus the dataset graph ids, and renders either as structured steps (for
programmatic consumption/tests) or as plain text (for the terminal
dashboard).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dashboard.ascii_viz import id_grid
from repro.query_model import QueryType
from repro.runtime.report import QueryReport


@dataclass
class JourneyStep:
    """One panel of the query journey."""

    key: str
    title: str
    description: str
    highlighted: list = field(default_factory=list)
    universe: list = field(default_factory=list)

    def render(self, columns: int = 10) -> str:
        """Render the step as text (title, description, id grid)."""
        grid = id_grid(self.universe, self.highlighted, columns=columns)
        return f"== {self.key}: {self.title} ==\n{self.description}\n{grid}"


class QueryJourney:
    """Builds the Fig. 3 walk-through for one processed query."""

    def __init__(self, report: QueryReport, dataset_ids: list, cache_entry_ids: list[int]) -> None:
        self.report = report
        self.dataset_ids = list(dataset_ids)
        self.cache_entry_ids = list(cache_entry_ids)

    # ------------------------------------------------------------------ #
    # structured steps
    # ------------------------------------------------------------------ #
    def steps(self) -> list[JourneyStep]:
        """The eight journey panels in paper order."""
        report = self.report
        kind = (
            "subgraph" if report.query.query_type is QueryType.SUBGRAPH else "supergraph"
        )
        sub_desc = (
            "Cached queries that contain the new query (sub case)."
            if kind == "subgraph"
            else "Cached queries that contain the new query (sub case; prunes candidates)."
        )
        super_desc = (
            "Cached queries contained in the new query (super case; prunes candidates)."
            if kind == "subgraph"
            else "Cached queries contained in the new query (super case; guaranteed answers)."
        )
        return [
            JourneyStep(
                key="H",
                title="Cache Hits (Sub Case)",
                description=sub_desc,
                highlighted=list(report.sub_hit_entries),
                universe=self.cache_entry_ids,
            ),
            JourneyStep(
                key="C_M",
                title="Candidate Set of Method M",
                description=(
                    "Data graphs Method M would verify with sub-iso tests "
                    f"({len(report.method_candidates)} graphs)."
                ),
                highlighted=sorted(report.method_candidates, key=repr),
                universe=self.dataset_ids,
            ),
            JourneyStep(
                key="S",
                title="Savings: guaranteed answers",
                description=(
                    "Data graphs known to be in the answer set from cached results — "
                    "no sub-iso verification needed."
                ),
                highlighted=sorted(report.guaranteed_answers, key=repr),
                universe=self.dataset_ids,
            ),
            JourneyStep(
                key="S'",
                title="Savings: guaranteed non-answers",
                description=(
                    "Data graphs known NOT to be in the answer set — "
                    "no sub-iso verification needed."
                ),
                highlighted=sorted(report.guaranteed_non_answers, key=repr),
                universe=self.dataset_ids,
            ),
            JourneyStep(
                key="H'",
                title="Cache Hits (Super Case)",
                description=super_desc,
                highlighted=list(report.super_hit_entries),
                universe=self.cache_entry_ids,
            ),
            JourneyStep(
                key="C",
                title="Candidate Set of GC",
                description=(
                    f"Candidates GC still has to verify: {len(report.verified_candidates)} "
                    f"instead of {len(report.method_candidates)}."
                ),
                highlighted=sorted(report.verified_candidates, key=repr),
                universe=self.dataset_ids,
            ),
            JourneyStep(
                key="R",
                title="Sub-Iso Result over C",
                description="Candidates that survived sub-iso verification.",
                highlighted=sorted(report.verified_answers, key=repr),
                universe=self.dataset_ids,
            ),
            JourneyStep(
                key="A",
                title="Answer Set",
                description="Final answer: verified survivors plus guaranteed answers.",
                highlighted=sorted(report.answer, key=repr),
                universe=self.dataset_ids,
            ),
        ]

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def speedup_summary(self) -> str:
        """The closing line of the journey (e.g. "75/43 = 1.74x")."""
        report = self.report
        baseline = len(report.method_candidates)
        reduced = len(report.verified_candidates)
        if reduced == 0:
            ratio = "∞" if baseline > 0 else "1.00"
        else:
            ratio = f"{baseline / reduced:.2f}"
        return (
            f"GC reduced the number of sub-iso tests from {baseline} to {reduced} "
            f"(speedup {ratio}×) for this query."
        )

    def render_text(self, columns: int = 10) -> str:
        """Full plain-text journey."""
        header = (
            f"The Query Journey — query {self.report.query.query_id} "
            f"({self.report.query.query_type.value}, "
            f"|V|={self.report.query.num_vertices}, |E|={self.report.query.num_edges})"
        )
        body = "\n\n".join(step.render(columns=columns) for step in self.steps())
        return f"{header}\n\n{body}\n\n{self.speedup_summary()}"
