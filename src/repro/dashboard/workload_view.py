"""Scenario II — "The Workload Run".

End-user view of a workload execution: per-query sub/super hit percentages
(Fig. 2(b)) and, after the run, the cache replacement decisions of different
policies side by side (Fig. 2(c) — "different graphs are cached out in
different caches").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dashboard.ascii_viz import bar_chart, format_table, id_grid, sparkline
from repro.workload.runner import WorkloadRunResult


@dataclass
class WorkloadRunView:
    """Renders one workload run for the end-user monitor."""

    result: WorkloadRunResult

    def hit_percentage_chart(self) -> str:
        """Per-query hit percentage as a bar chart (one bar per query)."""
        values = [
            (f"q{position + 1}", percentage)
            for position, percentage in enumerate(self.result.hit_percentages)
        ]
        if not values:
            return "(no queries)"
        return bar_chart(values, width=30)

    def hit_sparkline(self) -> str:
        """Compact single-line view of the hit percentages."""
        return sparkline(self.result.hit_percentages)

    def summary_table(self) -> str:
        """Aggregate summary (hit ratio, speedups, test counts)."""
        return format_table([self.result.summary()])

    def render_text(self) -> str:
        """Full plain-text Workload Run view."""
        lines = [
            f"The Workload Run — workload {self.result.workload_name!r} "
            f"(policy {self.result.policy}, Method M {self.result.method})",
            "",
            "Per-query cache-hit percentage (hits / cached graphs):",
            self.hit_percentage_chart(),
            "",
            "Summary:",
            self.summary_table(),
        ]
        return "\n".join(lines)


def replacement_comparison(
    results: dict[str, WorkloadRunResult], cache_entry_ids: dict[str, list[int]]
) -> str:
    """Fig. 2(c): which cached graphs each policy evicted.

    ``results`` maps policy name → run result; ``cache_entry_ids`` maps
    policy name → the ids of the graphs cached *before* the run (the
    population the evictions are drawn from).
    """
    sections: list[str] = ["Cache replacement across policies (evicted entries bracketed):"]
    for policy, result in results.items():
        universe = cache_entry_ids.get(policy, [])
        evicted = set(result.evicted_entry_ids)
        sections.append(f"\n{policy}:")
        sections.append(id_grid(universe, evicted, columns=10))
    return "\n".join(sections)


def policy_speedup_table(results: dict[str, WorkloadRunResult]) -> str:
    """Experiment E1's comparison table: one row per policy."""
    rows = [result.summary() for result in results.values()]
    return format_table(
        rows,
        columns=["policy", "workload", "hit_ratio", "test_speedup", "time_speedup",
                 "dataset_tests", "baseline_tests"],
    )
