"""Dashboard Manager: end-user scenarios, developer monitor and visualisation."""

from repro.dashboard.ascii_viz import bar_chart, format_table, id_grid, render_adjacency, sparkline
from repro.dashboard.developer import DeveloperMonitor
from repro.dashboard.journey import JourneyStep, QueryJourney
from repro.dashboard.svg import render_graph_svg, save_graph_svg
from repro.dashboard.workload_view import (
    WorkloadRunView,
    policy_speedup_table,
    replacement_comparison,
)

__all__ = [
    "bar_chart",
    "id_grid",
    "format_table",
    "sparkline",
    "render_adjacency",
    "QueryJourney",
    "JourneyStep",
    "WorkloadRunView",
    "replacement_comparison",
    "policy_speedup_table",
    "DeveloperMonitor",
    "render_graph_svg",
    "save_graph_svg",
]
