"""Plain-text visualisation primitives for the dashboards.

The original demo renders its dashboards in HTML/JavaScript; this library
targets terminals and log files instead, so the End-User and Developer
monitors are built on three small primitives:

* :func:`bar_chart`   — horizontal bars (hit percentages, utilities, ...);
* :func:`id_grid`     — a grid of dataset/cache ids with a highlighted subset
  (the visual language of Fig. 3: "bars filled with dark blue");
* :func:`format_table` — aligned key/value or tabular output.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def bar_chart(
    values: Mapping[str, float] | Sequence[tuple[str, float]],
    width: int = 40,
    fill_char: str = "█",
    empty_char: str = " ",
    show_value: bool = True,
) -> str:
    """Render a horizontal bar chart, one row per (label, value)."""
    items = list(values.items()) if isinstance(values, Mapping) else list(values)
    if not items:
        return "(no data)"
    max_value = max((value for _, value in items), default=0.0)
    label_width = max(len(str(label)) for label, _ in items)
    lines: list[str] = []
    for label, value in items:
        filled = 0 if max_value <= 0 else int(round(width * value / max_value))
        bar = fill_char * filled + empty_char * (width - filled)
        suffix = f" {value:.3g}" if show_value else ""
        lines.append(f"{str(label).rjust(label_width)} |{bar}|{suffix}")
    return "\n".join(lines)


def id_grid(
    all_ids: Iterable,
    highlighted: Iterable,
    columns: int = 10,
    highlight_format: str = "[{}]",
    normal_format: str = " {} ",
) -> str:
    """Render ids in a grid, bracketing the highlighted ones.

    This mirrors the demo's coloured-box view of dataset graphs: the ids in
    ``highlighted`` stand for the "dark blue" boxes.
    """
    ids = list(all_ids)
    marked = set(highlighted)
    if not ids:
        return "(empty)"
    cell_width = max(len(str(identifier)) for identifier in ids) + 2
    lines: list[str] = []
    row: list[str] = []
    for position, identifier in enumerate(ids):
        text = str(identifier)
        cell = (
            highlight_format.format(text) if identifier in marked else normal_format.format(text)
        )
        row.append(cell.rjust(cell_width))
        if (position + 1) % columns == 0:
            lines.append(" ".join(row))
            row = []
    if row:
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered_rows = [[_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), max((len(row[index]) for row in rendered_rows), default=0))
        for index, column in enumerate(columns)
    ]
    header = " | ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    separator = "-+-".join("-" * widths[index] for index in range(len(columns)))
    body = [
        " | ".join(row[index].ljust(widths[index]) for index in range(len(columns)))
        for row in rendered_rows
    ]
    return "\n".join([header, separator, *body])


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Compact single-line chart (used for per-query hit percentages)."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    chosen = list(values)
    if width is not None and len(chosen) > width:
        # down-sample by averaging buckets
        bucket = len(chosen) / width
        chosen = [
            sum(chosen[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(chosen[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    top = max(chosen)
    if top <= 0:
        return blocks[0] * len(chosen)
    return "".join(blocks[min(8, int(round(8 * value / top)))] for value in chosen)


def render_adjacency(graph) -> str:
    """Small text rendering of a graph: one line per vertex with neighbours."""
    lines = []
    for vertex in graph.vertices():
        neighbors = ", ".join(str(n) for n in sorted(graph.neighbors(vertex), key=repr))
        lines.append(f"{vertex} ({graph.label(vertex)}): {neighbors}")
    return "\n".join(lines) if lines else "(empty graph)"
