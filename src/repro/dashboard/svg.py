"""SVG rendering of graphs ("automatic visualization for graphs").

The demo advertises automatic graph visualisation for chemistry,
bioinformatics and social-network applications.  This module produces
self-contained SVG strings (no external dependencies): vertices on a circular
layout — or a simple force-directed refinement — labelled with their vertex
labels, edges as lines.
"""

from __future__ import annotations

import math
from html import escape

from repro.graph.graph import Graph

#: Colour per label hash bucket, chosen to be distinguishable on white.
_PALETTE = (
    "#4C72B0", "#DD8452", "#55A868", "#C44E52", "#8172B3",
    "#937860", "#DA8BC3", "#8C8C8C", "#CCB974", "#64B5CD",
)


def _label_color(label: str) -> str:
    return _PALETTE[hash(label) % len(_PALETTE)]


def circular_layout(graph: Graph, radius: float = 180.0, center: float = 220.0) -> dict:
    """Place vertices evenly on a circle."""
    positions = {}
    vertices = graph.vertices()
    count = max(1, len(vertices))
    for index, vertex in enumerate(vertices):
        angle = 2.0 * math.pi * index / count
        positions[vertex] = (
            center + radius * math.cos(angle),
            center + radius * math.sin(angle),
        )
    return positions


def spring_layout(graph: Graph, iterations: int = 60, size: float = 440.0) -> dict:
    """Light force-directed refinement of the circular layout."""
    positions = circular_layout(graph, radius=size * 0.4, center=size / 2)
    vertices = graph.vertices()
    if len(vertices) < 3:
        return positions
    ideal = size / math.sqrt(len(vertices))
    for _ in range(iterations):
        forces = {vertex: [0.0, 0.0] for vertex in vertices}
        for i, u in enumerate(vertices):
            for v in vertices[i + 1:]:
                dx = positions[u][0] - positions[v][0]
                dy = positions[u][1] - positions[v][1]
                distance = max(1e-6, math.hypot(dx, dy))
                repulsion = (ideal * ideal) / distance
                forces[u][0] += repulsion * dx / distance
                forces[u][1] += repulsion * dy / distance
                forces[v][0] -= repulsion * dx / distance
                forces[v][1] -= repulsion * dy / distance
        for u, v in graph.edges():
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            distance = max(1e-6, math.hypot(dx, dy))
            attraction = (distance * distance) / ideal
            forces[u][0] -= attraction * dx / distance
            forces[u][1] -= attraction * dy / distance
            forces[v][0] += attraction * dx / distance
            forces[v][1] += attraction * dy / distance
        for vertex in vertices:
            fx, fy = forces[vertex]
            magnitude = max(1e-6, math.hypot(fx, fy))
            step = min(magnitude, 8.0)
            x = positions[vertex][0] + step * fx / magnitude
            y = positions[vertex][1] + step * fy / magnitude
            positions[vertex] = (
                min(size - 20, max(20, x)),
                min(size - 20, max(20, y)),
            )
    return positions


def render_graph_svg(
    graph: Graph,
    size: int = 440,
    layout: str = "spring",
    vertex_radius: int = 14,
    title: str | None = None,
) -> str:
    """Render a graph as a standalone SVG document string."""
    positions = (
        spring_layout(graph, size=float(size)) if layout == "spring" else circular_layout(graph)
    )
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{size / 2}" y="18" text-anchor="middle" font-size="14" '
            f'font-family="sans-serif">{escape(title)}</text>'
        )
    for u, v in graph.edges():
        (x1, y1), (x2, y2) = positions[u], positions[v]
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            'stroke="#555" stroke-width="1.5"/>'
        )
    for vertex in graph.vertices():
        x, y = positions[vertex]
        label = graph.label(vertex)
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{vertex_radius}" '
            f'fill="{_label_color(label)}" stroke="#222" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{y + 4:.1f}" text-anchor="middle" font-size="11" '
            f'font-family="sans-serif" fill="white">{escape(str(label))}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_graph_svg(graph: Graph, path, **kwargs) -> None:
    """Render a graph to an SVG file."""
    from pathlib import Path

    Path(path).write_text(render_graph_svg(graph, **kwargs), encoding="utf-8")
