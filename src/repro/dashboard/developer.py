"""Developer Monitor: introspection for "skilled developers".

Where the End-User monitor narrates scenarios, the developer monitor exposes
the raw operational metrics of a running :class:`GraphCacheSystem`: the
configuration, Method M's index statistics, per-entry cache utilities under
the active policy, window state, and memory accounting (the experiment II
overhead numbers).
"""

from __future__ import annotations

from repro.dashboard.ascii_viz import bar_chart, format_table
from repro.runtime.system import GraphCacheSystem


class DeveloperMonitor:
    """Programmatic and textual views of a running system's internals."""

    def __init__(self, system: GraphCacheSystem) -> None:
        self.system = system

    # ------------------------------------------------------------------ #
    # structured views
    # ------------------------------------------------------------------ #
    def configuration(self) -> dict[str, object]:
        """The deployed configuration, method and cache description."""
        return self.system.describe()

    def cache_entries(self) -> list[dict[str, object]]:
        """Per-entry statistics plus the active policy's utility score.

        Aggregates over every cache the system owns — one for the single
        engine, one per shard for a sharded scatter-gather system.
        """
        rows: list[dict[str, object]] = []
        for cache in self.system.all_caches():
            policy = cache.policy
            for entry in cache.entries():
                row: dict[str, object] = {
                    "entry_id": entry.entry_id,
                    "vertices": entry.num_vertices,
                    "edges": entry.num_edges,
                    "answers": len(entry.answer),
                    "utility": policy.utility(entry),
                }
                row.update(entry.stats.snapshot())
                rows.append(row)
        return rows

    def memory_report(self) -> dict[str, float]:
        """Cache vs index memory (experiment II accounting)."""
        cache_bytes = self.system.cache_memory_bytes()
        index_bytes = self.system.index_memory_bytes()
        return {
            "cache_bytes": cache_bytes,
            "index_bytes": index_bytes,
            "cache_over_index_percent": (
                100.0 * cache_bytes / index_bytes if index_bytes else float("inf")
            ),
        }

    def aggregate_metrics(self) -> dict[str, float]:
        """Workload-level metrics collected by the Statistics Manager."""
        aggregate = self.system.aggregate()
        return {
            "queries": aggregate.num_queries,
            "hit_ratio": aggregate.hit_ratio,
            "sub_hits": aggregate.num_sub_hits,
            "super_hits": aggregate.num_super_hits,
            "exact_hits": aggregate.num_exact_hits,
            "dataset_tests": aggregate.total_dataset_tests,
            "baseline_tests": aggregate.total_baseline_tests,
            "probe_tests": aggregate.total_probe_tests,
            "test_speedup": aggregate.test_speedup,
            "time_speedup": aggregate.time_speedup,
        }

    def window_timeline(self, window_size: int = 10) -> list[dict[str, float]]:
        """Per-window hit ratio and savings (the statistics timeline)."""
        return self.system.statistics.window_summaries(window_size)

    # ------------------------------------------------------------------ #
    # text rendering
    # ------------------------------------------------------------------ #
    def render_timeline(self, window_size: int = 10) -> str:
        """Render the per-window timeline as a text table."""
        timeline = self.window_timeline(window_size)
        if not timeline:
            return "(no queries processed yet)"
        return format_table(timeline, columns=["window", "queries", "hit_ratio",
                                               "baseline_tests", "dataset_tests",
                                               "tests_saved"])

    def render_cache_table(self) -> str:
        """Cache contents with utilities as a text table."""
        rows = self.cache_entries()
        if not rows:
            return "(cache is empty or disabled)"
        columns = ["entry_id", "vertices", "edges", "answers", "hit_count",
                   "tests_saved", "seconds_saved", "utility"]
        return format_table(rows, columns=columns)

    def render_utility_chart(self) -> str:
        """Utility of every cached entry under the active policy."""
        rows = self.cache_entries()
        if not rows:
            return "(cache is empty or disabled)"
        return bar_chart([(f"e{row['entry_id']}", float(row["utility"])) for row in rows])

    def render_text(self) -> str:
        """Full developer dashboard as text."""
        memory = self.memory_report()
        metrics = self.aggregate_metrics()
        sections = [
            "Developer Monitor",
            "=================",
            "",
            "Aggregate metrics:",
            format_table([metrics]),
            "",
            "Memory:",
            format_table([memory]),
            "",
            "Cache contents:",
            self.render_cache_table(),
        ]
        return "\n".join(sections)
