"""Observability layer: distributed tracing, span recording, metrics, logs.

Public surface for the rest of the stack:

* :mod:`repro.obs.trace` — :class:`TraceContext` propagation + :class:`Span`
  trees (``TRACE_KEY`` is the reserved ``Query.metadata`` carrier slot).
* :mod:`repro.obs.recorder` — the per-process :class:`SpanRecorder` behind
  ``GET /debug/traces`` and the slow-query exemplar log.
* :mod:`repro.obs.metrics` — the unified :class:`MetricsRegistry` with
  Prometheus text exposition (``GET /metrics?format=text``).
* :mod:`repro.obs.logs` — per-subsystem trace-aware loggers and the worker
  log-forwarding buffer.
"""

from repro.obs.logs import (
    BufferedLogHandler,
    TraceIdFilter,
    configure_logging,
    current_trace_id,
    get_logger,
    replay_entries,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.obs.recorder import (
    DEFAULT_BUFFER_SIZE,
    SpanRecorder,
    configure_recorder,
    get_recorder,
)
from repro.obs.trace import (
    TRACE_KEY,
    Span,
    TraceContext,
    build_tree,
    context_from_carrier,
    make_span,
    new_span_id,
    new_trace_id,
    pipeline_spans,
)

__all__ = [
    "BufferedLogHandler",
    "TraceIdFilter",
    "configure_logging",
    "current_trace_id",
    "get_logger",
    "replay_entries",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "DEFAULT_BUFFER_SIZE",
    "SpanRecorder",
    "configure_recorder",
    "get_recorder",
    "TRACE_KEY",
    "Span",
    "TraceContext",
    "build_tree",
    "context_from_carrier",
    "make_span",
    "new_span_id",
    "new_trace_id",
    "pipeline_spans",
]
