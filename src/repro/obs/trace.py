"""Trace context + spans: the data model of end-to-end distributed tracing.

One query served through the stack yields one *span tree* keyed by a
``trace_id``: client send → server queue wait → batch execution → scatter
plan → per-shard scatter → worker pipeline stages (filter/probe/prune/
verify/assemble/admit) → merge.  The context travels in two shapes:

* **on the wire** — an additive ``"trace"`` section of the v2 request
  envelope (:class:`~repro.api.envelopes.QueryRequest.to_wire`); v1 payloads
  never carry it, so legacy clients are unaffected;
* **in process** — a plain JSON-safe dict under ``Query.metadata["trace"]``
  (the :data:`TRACE_KEY` carrier), which survives every hop the metadata
  already makes: batcher → sharded scatter → the loopback envelope into a
  process shard worker.

Durations are measured with monotonic clocks (``time.perf_counter``); the
wall-clock ``start`` stamp exists only to order spans for display and is
never subtracted against another clock.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field

#: Reserved ``Query.metadata`` key carrying the trace context in process.
TRACE_KEY = "trace"

#: One per-process clock anchor pairing a wall-clock reading with the
#: perf_counter reading taken at the same instant.  Every span start is
#: derived from this single pair — wall-clock time is read exactly once per
#: process, so sibling spans whose durations came from ``perf_counter`` can
#: never reorder against each other just because ``time.time()`` was sampled
#: at different moments (NTP steps, coarse wall ticks).
_ANCHOR_WALL = time.time()
_ANCHOR_PERF = time.perf_counter()


def wall_at(perf_time: float) -> float:
    """The wall-clock stamp of a ``time.perf_counter()`` reading.

    Derived from the process-wide anchor, so two stamps differ by exactly
    their monotonic offset — the property span ordering relies on.
    """
    return _ANCHOR_WALL + (perf_time - _ANCHOR_PERF)


def wall_now() -> float:
    """``wall_at(time.perf_counter())``: an anchored "now" for span starts."""
    return wall_at(time.perf_counter())


def new_trace_id() -> str:
    """A fresh 32-hex trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex span id."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one trace: where a child span hangs."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def child(self) -> "TraceContext":
        """A context whose ``span_id`` is fresh (parenting a new subtree)."""
        return TraceContext(self.trace_id, new_span_id(), self.sampled)

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "sampled": bool(self.sampled)}

    to_carrier = to_wire  # same JSON shape rides in Query.metadata

    @classmethod
    def from_wire(cls, payload: object) -> "TraceContext | None":
        """Lenient parse: anything malformed reads as "no context" (additive
        fields must never turn an otherwise-valid request into an error)."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        if not isinstance(span_id, str) or not span_id:
            span_id = new_span_id()
        return cls(trace_id=trace_id, span_id=span_id,
                   sampled=bool(payload.get("sampled", True)))


def context_from_carrier(metadata: dict | None) -> TraceContext | None:
    """The sampled :class:`TraceContext` in a metadata carrier, if any."""
    if not isinstance(metadata, dict):
        return None
    context = TraceContext.from_wire(metadata.get(TRACE_KEY))
    if context is None or not context.sampled:
        return None
    return context


@dataclass
class Span:
    """One timed operation inside a trace."""

    trace_id: str
    span_id: str
    name: str
    parent_span_id: str | None = None
    #: Wall-clock UNIX seconds at span start — display ordering only.
    start: float = 0.0
    #: Monotonic-clock duration (never a difference of wall clocks).
    duration_seconds: float = 0.0
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "start": self.start,
            "duration_seconds": self.duration_seconds,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            trace_id=str(payload.get("trace_id", "")),
            span_id=str(payload.get("span_id", "")),
            parent_span_id=payload.get("parent_span_id"),
            name=str(payload.get("name", "span")),
            start=float(payload.get("start", 0.0)),
            duration_seconds=float(payload.get("duration_seconds", 0.0)),
            attributes=dict(payload.get("attributes", {}) or {}),
        )


def make_span(
    context: TraceContext,
    name: str,
    duration_seconds: float,
    parent_span_id: str | None = None,
    span_id: str | None = None,
    start: float | None = None,
    attributes: dict | None = None,
) -> Span:
    """Build one finished span under ``context`` (parent defaults to it)."""
    return Span(
        trace_id=context.trace_id,
        span_id=span_id or new_span_id(),
        parent_span_id=context.span_id if parent_span_id is None else parent_span_id,
        name=name,
        start=wall_now() - duration_seconds if start is None else start,
        duration_seconds=duration_seconds,
        attributes=dict(attributes or {}),
    )


def pipeline_spans(carrier: dict, stage_seconds: dict[str, float],
                   total_seconds: float) -> list[Span]:
    """Span subtree for one pipeline execution under a metadata carrier.

    One ``pipeline`` span (fresh id, parented on the carrier's span — the
    coordinator's scatter span for sharded runs, the server span otherwise)
    with one child per executed stage.  Each shard that runs the query grows
    its own ``pipeline`` subtree, so sibling shards stay distinguishable even
    though they share one scattered :class:`Query` object.
    """
    context = context_from_carrier({TRACE_KEY: carrier})
    if context is None:
        return []
    attributes: dict = {}
    shard = carrier.get("shard")
    if shard is not None:
        attributes["shard"] = shard
    end_wall = wall_now()
    root = make_span(context, "pipeline", total_seconds,
                     start=end_wall - total_seconds, attributes=attributes)
    spans = [root]
    offset = total_seconds
    for stage, seconds in stage_seconds.items():
        spans.append(Span(
            trace_id=context.trace_id,
            span_id=new_span_id(),
            parent_span_id=root.span_id,
            name=stage,
            start=end_wall - offset,
            duration_seconds=seconds,
            attributes=dict(attributes),
        ))
        offset = max(0.0, offset - seconds)
    return spans


def build_tree(spans: list[Span]) -> dict:
    """Assemble recorded spans into one JSON tree (children by parent id).

    Spans whose parent is unknown (e.g. a client span recorded in another
    process) become roots; multiple roots are wrapped under a synthetic
    node so one trace always renders as one tree.
    """
    by_id = {span.span_id: span for span in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_span_id if span.parent_span_id in by_id else None
        children.setdefault(parent, []).append(span)

    def node(span: Span) -> dict:
        payload = span.to_dict()
        kids = sorted(children.get(span.span_id, []), key=lambda s: (s.start, s.name))
        payload["children"] = [node(kid) for kid in kids]
        return payload

    roots = sorted(children.get(None, []), key=lambda s: (s.start, s.name))
    trace_id = spans[0].trace_id if spans else None
    duration = max((span.duration_seconds for span in roots), default=0.0)
    return {
        "trace_id": trace_id,
        "num_spans": len(spans),
        "duration_seconds": duration,
        "roots": [node(root) for root in roots],
    }
