"""Unified metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per serving process gathers every telemetry
source behind a single interface — push-style instruments for hot-path
observations (request/queue latency histograms, request counters) and
pull-style *collectors* that sample the existing ad-hoc sources at scrape
time (:class:`~repro.cache.statistics.StatisticsManager` aggregates,
:class:`~repro.sharding.planner.ScatterStats`, batcher queue depth,
async-pool telemetry, worker respawn counts).

The registry renders the Prometheus text exposition format
(``GET /metrics?format=text``); the legacy JSON ``/metrics`` shape is
untouched.  A coordinator fans in worker registries by passing each
worker's :meth:`MetricsRegistry.snapshot` to :meth:`render_text` with a
``shard`` label — counters from different processes never need merging
arithmetic, they are distinct labelled series.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

#: Fixed latency buckets (seconds), Prometheus-style cumulative on render.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass
class Sample:
    """One pull-style observation a collector hands the registry at scrape."""

    name: str
    kind: str
    value: float
    help: str = ""
    labels: dict = field(default_factory=dict)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape(str(value))}"'
                     for name, value in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing count (one labelled series)."""

    def __init__(self, registry: "MetricsRegistry", name: str, key: tuple) -> None:
        self._registry = registry
        self._name = name
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._registry._lock:
            family = self._registry._families[self._name]
            family["samples"][self._key] = family["samples"].get(self._key, 0.0) + amount

    @property
    def value(self) -> float:
        with self._registry._lock:
            return self._registry._families[self._name]["samples"].get(self._key, 0.0)


class Gauge:
    """A value that goes up and down (one labelled series)."""

    def __init__(self, registry: "MetricsRegistry", name: str, key: tuple) -> None:
        self._registry = registry
        self._name = name
        self._key = key

    def set(self, value: float) -> None:
        with self._registry._lock:
            self._registry._families[self._name]["samples"][self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._registry._lock:
            family = self._registry._families[self._name]
            family["samples"][self._key] = family["samples"].get(self._key, 0.0) + amount

    @property
    def value(self) -> float:
        with self._registry._lock:
            return self._registry._families[self._name]["samples"].get(self._key, 0.0)


class Histogram:
    """Fixed-bucket latency distribution (one labelled series)."""

    def __init__(self, registry: "MetricsRegistry", name: str, key: tuple) -> None:
        self._registry = registry
        self._name = name
        self._key = key

    def observe(self, value: float) -> None:
        with self._registry._lock:
            family = self._registry._families[self._name]
            state = family["samples"].get(self._key)
            if state is None:
                state = family["samples"][self._key] = {
                    "counts": [0] * len(family["buckets"]), "sum": 0.0, "count": 0,
                }
            for index, bound in enumerate(family["buckets"]):
                if value <= bound:
                    state["counts"][index] += 1
                    break
            state["sum"] += value
            state["count"] += 1

    @property
    def count(self) -> int:
        with self._registry._lock:
            state = self._registry._families[self._name]["samples"].get(self._key)
            return int(state["count"]) if state else 0


class MetricsRegistry:
    """Thread-safe instrument store + Prometheus text exposition."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        #: name → {"kind", "help", "buckets"?, "samples": {label_key: value}}
        self._families: dict[str, dict] = {}
        self._collectors: list[Callable[[], Iterable[Sample]]] = []

    # ------------------------------------------------------------------ #
    # instrument creation (get-or-create per name + label set)
    # ------------------------------------------------------------------ #
    def _family(self, name: str, kind: str, help: str,
                buckets: tuple | None = None) -> dict:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = {
                "kind": kind, "help": help, "samples": {},
            }
            if kind == HISTOGRAM:
                family["buckets"] = tuple(buckets or DEFAULT_BUCKETS)
        elif family["kind"] != kind:
            raise ValueError(
                f"metric {name!r} is already registered as {family['kind']}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        with self._lock:
            family = self._family(name, COUNTER, help)
            key = _label_key(labels)
            family["samples"].setdefault(key, 0.0)
            return Counter(self, name, key)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        with self._lock:
            family = self._family(name, GAUGE, help)
            key = _label_key(labels)
            family["samples"].setdefault(key, 0.0)
            return Gauge(self, name, key)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple | None = None, **labels) -> Histogram:
        with self._lock:
            self._family(name, HISTOGRAM, help, buckets=buckets)
            return Histogram(self, name, _label_key(labels))

    def register_collector(self, collector: Callable[[], Iterable[Sample]]) -> None:
        """Register a scrape-time sampler over an existing telemetry source.

        Collectors run on every :meth:`snapshot`/:meth:`render_text`; a
        collector that raises is skipped (a scrape must never take the
        serving path down with it).
        """
        with self._lock:
            self._collectors.append(collector)

    # ------------------------------------------------------------------ #
    # scraping
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """A JSON-safe point-in-time dump (instruments + collector samples)."""
        with self._lock:
            families: dict[str, dict] = {}
            for name, family in self._families.items():
                out = {"kind": family["kind"], "help": family["help"], "samples": []}
                if family["kind"] == HISTOGRAM:
                    out["buckets"] = list(family["buckets"])
                    for key, state in family["samples"].items():
                        out["samples"].append({
                            "labels": dict(key),
                            "counts": list(state["counts"]),
                            "sum": state["sum"],
                            "count": state["count"],
                        })
                else:
                    for key, value in family["samples"].items():
                        out["samples"].append({"labels": dict(key), "value": value})
                families[name] = out
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                samples = list(collector())
            except Exception:
                continue  # a broken source must not break the scrape
            for sample in samples:
                family = families.setdefault(
                    sample.name,
                    {"kind": sample.kind, "help": sample.help, "samples": []},
                )
                family["samples"].append(
                    {"labels": dict(sample.labels), "value": sample.value}
                )
        return {"families": families}

    def render_text(self, extra: list[tuple[dict, dict]] | None = None) -> str:
        """Prometheus text exposition of this registry (+ fanned-in extras).

        ``extra`` is a list of ``(labels, snapshot)`` pairs — e.g. a shard
        worker's :meth:`snapshot` under ``{"shard": "0"}`` — whose series are
        re-emitted with the labels merged in, keeping per-process counters
        distinct instead of lossily summed.
        """
        merged: dict[str, dict] = {}

        def absorb(snapshot: dict, extra_labels: dict) -> None:
            for name, family in snapshot.get("families", {}).items():
                target = merged.setdefault(name, {
                    "kind": family.get("kind", GAUGE),
                    "help": family.get("help", ""),
                    "buckets": family.get("buckets"),
                    "samples": [],
                })
                if not target["help"] and family.get("help"):
                    target["help"] = family["help"]
                for sample in family.get("samples", []):
                    labels = dict(sample.get("labels", {}))
                    labels.update(extra_labels)
                    merged_sample = dict(sample)
                    merged_sample["labels"] = labels
                    target["samples"].append(merged_sample)

        absorb(self.snapshot(), {})
        for labels, snapshot in (extra or []):
            absorb(snapshot, {str(k): str(v) for k, v in labels.items()})

        lines: list[str] = []
        for name in sorted(merged):
            family = merged[name]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for sample in family["samples"]:
                labels = sample["labels"]
                if family["kind"] == HISTOGRAM and "counts" in sample:
                    buckets = family.get("buckets") or DEFAULT_BUCKETS
                    cumulative = 0
                    for bound, count in zip(buckets, sample["counts"]):
                        cumulative += count
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_value(float(bound))
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}"
                        )
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = "+Inf"
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} {sample['count']}"
                    )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} {_format_value(sample['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} {sample['count']}"
                    )
                else:
                    value = sample.get("value")
                    if value is None:
                        continue  # json_safe'd infinity: unrepresentable point
                    lines.append(
                        f"{name}{_render_labels(labels)} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"
