"""Scrape-time collectors over the stack's existing telemetry sources.

These bridge the ad-hoc telemetry that predates the registry —
``StatisticsManager`` aggregates, ``ScatterStats``, batcher queue state,
async-pool counters — into :class:`~repro.obs.metrics.Sample` streams, so
``GET /metrics?format=text`` exposes one unified surface without changing
how any source accumulates.  Everything is duck-typed: a collector reads
public accessors at scrape time and owns no state.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.obs.metrics import COUNTER, GAUGE, Sample


def system_samples(system) -> Iterator[Sample]:
    """Samples from a (possibly sharded) system's ``StatisticsManager``."""
    aggregate = system.statistics.aggregate()
    yield Sample("gc_queries_total", COUNTER, float(aggregate.num_queries),
                 help="Queries processed by the cache system")
    for kind, value in (("exact", aggregate.num_exact_hits),
                        ("sub", aggregate.num_sub_hits),
                        ("super", aggregate.num_super_hits)):
        yield Sample("gc_cache_hits_total", COUNTER, float(value),
                     help="Confirmed cache hits by kind", labels={"kind": kind})
    for kind, value in (("dataset", aggregate.total_dataset_tests),
                        ("baseline", aggregate.total_baseline_tests),
                        ("probe", aggregate.total_probe_tests)):
        yield Sample("gc_subiso_tests_total", COUNTER, float(value),
                     help="Sub-isomorphism tests by kind", labels={"kind": kind})
    yield Sample("gc_query_seconds_total", COUNTER, float(aggregate.total_seconds),
                 help="Total query execution seconds")
    yield Sample("gc_hit_ratio", GAUGE, float(aggregate.hit_ratio),
                 help="Fraction of queries with at least one cache hit")
    yield Sample("gc_test_speedup", GAUGE, float(aggregate.test_speedup),
                 help="Aggregate sub-iso-test speedup vs the uncached baseline")


def scatter_samples(system) -> Iterator[Sample]:
    """Samples from a sharded system's scatter planner statistics.

    The shapes live on :meth:`ScatterStats.metrics_samples` — the planner
    owns its counters, the registry just scrapes them.  Straggler-hedging
    counters ride along when the system exposes them.
    """
    yield from system.planner.stats.metrics_samples()
    hedge_stats = getattr(system, "hedge_stats", None)
    if hedge_stats is None:
        return
    hedging = hedge_stats()
    yield Sample("gc_scatter_hedges_total", COUNTER,
                 float(hedging.get("hedges_issued", 0)),
                 help="Hedge attempts issued against straggler shards")
    yield Sample("gc_scatter_hedge_wins_total", COUNTER,
                 float(hedging.get("hedge_wins", 0)),
                 help="Hedge attempts that beat the primary shard attempt")
    delay = hedging.get("delay_seconds")
    if delay is not None:
        yield Sample("gc_scatter_hedge_delay_seconds", GAUGE, float(delay),
                     help="Straggler hedge delay currently in force")


def batcher_samples(batcher) -> Iterator[Sample]:
    """Samples from a request batcher's :class:`BatcherStats`."""
    stats = batcher.stats()
    yield Sample("gc_server_queue_depth", GAUGE, float(stats.queue_depth),
                 help="Requests waiting in the batcher queue")
    yield Sample("gc_server_submitted_total", COUNTER, float(stats.submitted),
                 help="Requests submitted to the batcher")
    for reason, value in (("queue-depth", stats.rejected),
                          ("cost", stats.rejected_cost)):
        yield Sample("gc_server_rejected_total", COUNTER, float(value),
                     help="Requests rejected by admission control",
                     labels={"reason": reason})
    yield Sample("gc_server_served_total", COUNTER, float(stats.served),
                 help="Requests served successfully")
    yield Sample("gc_server_failed_total", COUNTER, float(stats.failed),
                 help="Requests that failed inside a batch")
    for reason, value in (("expired", stats.shed_expired),
                          ("abandoned", stats.shed_abandoned)):
        yield Sample("gc_server_shed_total", COUNTER, float(value),
                     help="Admitted requests shed before execution (dead work)",
                     labels={"reason": reason})
    yield Sample("gc_server_batches_total", COUNTER, float(stats.batches),
                 help="Batches executed")
    yield Sample("gc_server_largest_batch", GAUGE, float(stats.largest_batch),
                 help="Largest batch executed so far")


def pool_samples(stats: dict) -> Iterator[Sample]:
    """Samples from one async connection pool's ``pool_stats()`` dict."""
    shard = stats.get("shard")
    labels = {"shard": str(shard)} if shard is not None else {}
    for name, kind, help_text in (
        ("open_connections", GAUGE, "Open pooled connections"),
        ("peak_connections", GAUGE, "Peak open pooled connections"),
        ("in_flight", GAUGE, "Requests currently in flight"),
        ("peak_in_flight", GAUGE, "Peak concurrent in-flight requests"),
        ("requests_sent", COUNTER, "Requests sent through the pool"),
        ("reconnects", COUNTER, "Pooled connections re-established"),
    ):
        if name in stats:
            yield Sample(f"gc_pool_{name}", kind, float(stats[name]),
                         help=help_text, labels=dict(labels))


def recorder_samples(recorder) -> Iterator[Sample]:
    """Samples describing the span recorder itself."""
    stats = recorder.stats()
    yield Sample("gc_trace_buffered_traces", GAUGE, float(stats["traces"]),
                 help="Traces resident in the span recorder")
    yield Sample("gc_trace_buffered_spans", GAUGE, float(stats["spans"]),
                 help="Spans resident in the span recorder")
    yield Sample("gc_trace_evicted_traces_total", COUNTER,
                 float(stats["evicted_traces"]),
                 help="Traces evicted from the bounded span buffer")
    yield Sample("gc_slow_query_exemplars", GAUGE, float(stats["exemplars"]),
                 help="Slow-query exemplars currently retained")
