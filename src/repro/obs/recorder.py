"""SpanRecorder: a thread-safe bounded ring buffer of finished spans.

One recorder exists per process (:func:`get_recorder`): the coordinator's
holds the full cross-process span trees (worker spans travel back inside the
query response and are re-recorded here), each shard worker's holds its own
local view.  Retention is bounded by *span count* — whole oldest traces are
evicted first, so a surviving trace is always complete.

Completed traces over the slow-query threshold are snapshotted into a
separate **exemplar** buffer together with their scatter plan, and logged
through ``repro.obs.slowquery`` — the slow-query exemplar log the server's
``--slow-query-log`` flag surfaces.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict

from repro.obs.trace import Span, build_tree

#: Default maximum spans retained across all buffered traces.
DEFAULT_BUFFER_SIZE = 512

#: Completed slow traces kept with their full tree + scatter plan.
DEFAULT_MAX_EXEMPLARS = 32

slow_query_logger = logging.getLogger("repro.obs.slowquery")


class _TraceEntry:
    __slots__ = ("spans", "duration_seconds", "completed")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.duration_seconds: float | None = None
        self.completed = False


class SpanRecorder:
    """Thread-safe span storage with bounded memory and slow-query capture."""

    def __init__(self, buffer_size: int = DEFAULT_BUFFER_SIZE,
                 slow_threshold_seconds: float | None = None,
                 max_exemplars: int = DEFAULT_MAX_EXEMPLARS) -> None:
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, _TraceEntry]" = OrderedDict()
        self._span_count = 0
        self._evicted_traces = 0
        self.buffer_size = max(1, buffer_size)
        self.slow_threshold_seconds = slow_threshold_seconds
        self.max_exemplars = max(1, max_exemplars)
        self._exemplars: "OrderedDict[str, dict]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # configuration (the server applies GCConfig knobs here)
    # ------------------------------------------------------------------ #
    def configure(self, buffer_size: int | None = None,
                  slow_threshold_seconds: float | None = None) -> None:
        with self._lock:
            if buffer_size is not None:
                self.buffer_size = max(1, buffer_size)
                self._evict_locked()
            if slow_threshold_seconds is not None:
                self.slow_threshold_seconds = slow_threshold_seconds

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, span: Span) -> None:
        self.record_many([span])

    def record_many(self, spans: list[Span]) -> None:
        if not spans:
            return
        with self._lock:
            for span in spans:
                if not span.trace_id:
                    continue
                entry = self._traces.get(span.trace_id)
                if entry is None:
                    entry = self._traces[span.trace_id] = _TraceEntry()
                entry.spans.append(span)
                self._span_count += 1
                self._traces.move_to_end(span.trace_id)
            self._evict_locked()

    def _evict_locked(self) -> None:
        # evict whole oldest traces: a retained trace is never half a tree
        while self._span_count > self.buffer_size and len(self._traces) > 1:
            _, entry = self._traces.popitem(last=False)
            self._span_count -= len(entry.spans)
            self._evicted_traces += 1

    def complete(self, trace_id: str, duration_seconds: float,
                 scatter: dict | None = None) -> None:
        """Mark a trace finished; capture it as an exemplar when slow."""
        with self._lock:
            entry = self._traces.get(trace_id)
            if entry is not None:
                entry.duration_seconds = duration_seconds
                entry.completed = True
            threshold = self.slow_threshold_seconds
            slow = threshold is not None and duration_seconds >= threshold
            if slow:
                exemplar = {
                    "trace_id": trace_id,
                    "duration_seconds": duration_seconds,
                    "threshold_seconds": threshold,
                    "scatter": scatter,
                    "tree": build_tree(list(entry.spans)) if entry is not None else None,
                }
                self._exemplars[trace_id] = exemplar
                while len(self._exemplars) > self.max_exemplars:
                    self._exemplars.popitem(last=False)
        if slow:
            slow_query_logger.warning(
                "slow query: trace=%s took %.3fs (threshold %.3fs)",
                trace_id, duration_seconds, threshold,
            )

    # ------------------------------------------------------------------ #
    # reading (the /debug/traces surface)
    # ------------------------------------------------------------------ #
    def spans(self, trace_id: str) -> list[Span]:
        with self._lock:
            entry = self._traces.get(trace_id)
            return list(entry.spans) if entry is not None else []

    def tree(self, trace_id: str) -> dict | None:
        spans = self.spans(trace_id)
        if not spans:
            return None
        tree = build_tree(spans)
        with self._lock:
            entry = self._traces.get(trace_id)
            if entry is not None and entry.duration_seconds is not None:
                tree["duration_seconds"] = entry.duration_seconds
                tree["completed"] = entry.completed
        return tree

    def recent(self, count: int = 10) -> list[dict]:
        """The most recently touched trace trees, newest first."""
        with self._lock:
            trace_ids = list(self._traces.keys())[-max(0, count):]
        trees = [self.tree(trace_id) for trace_id in reversed(trace_ids)]
        return [tree for tree in trees if tree is not None]

    def slowest(self, count: int = 10) -> list[dict]:
        """Completed trace trees ordered by duration, slowest first."""
        with self._lock:
            ranked = sorted(
                ((entry.duration_seconds, trace_id)
                 for trace_id, entry in self._traces.items()
                 if entry.duration_seconds is not None),
                reverse=True,
            )[:max(0, count)]
        trees = [self.tree(trace_id) for _, trace_id in ranked]
        return [tree for tree in trees if tree is not None]

    def exemplars(self) -> list[dict]:
        """Slow-query exemplars (full tree + scatter plan), newest first."""
        with self._lock:
            return list(reversed(self._exemplars.values()))

    def stats(self) -> dict:
        with self._lock:
            return {
                "traces": len(self._traces),
                "spans": self._span_count,
                "evicted_traces": self._evicted_traces,
                "exemplars": len(self._exemplars),
                "buffer_size": self.buffer_size,
                "slow_threshold_seconds": self.slow_threshold_seconds,
            }

    def reset(self) -> None:
        with self._lock:
            self._traces.clear()
            self._exemplars.clear()
            self._span_count = 0
            self._evicted_traces = 0


#: The per-process recorder every layer records into (coordinator and each
#: spawned shard worker hold their own).
_recorder = SpanRecorder()


def get_recorder() -> SpanRecorder:
    return _recorder


def configure_recorder(buffer_size: int | None = None,
                       slow_threshold_seconds: float | None = None) -> SpanRecorder:
    _recorder.configure(buffer_size=buffer_size,
                        slow_threshold_seconds=slow_threshold_seconds)
    return _recorder
