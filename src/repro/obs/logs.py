"""Structured logging: per-subsystem loggers, trace-id-aware records.

Every subsystem logs through a child of the ``repro`` root logger
(``repro.server``, ``repro.sharding.worker``, …) obtained from
:func:`get_logger`.  A :class:`TraceIdFilter` injects the active query's
trace id (a :mod:`contextvars` value set by the serving path) into every
record so a slow-query trace and its log lines can be joined.

Shard worker processes install a :class:`BufferedLogHandler` on the
``repro`` root: warnings and errors are buffered (bounded) and drained by
the coordinator over the existing admin channel, then re-emitted into the
coordinator's log stream with a ``shard=N`` prefix — one terminal shows
the whole distributed system's problems.
"""

from __future__ import annotations

import contextvars
import logging
import threading
from collections import deque

#: The active request's trace id, set around each served query.
current_trace_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None,
)

ROOT_LOGGER_NAME = "repro"

#: Warning+ records a worker buffers awaiting coordinator drain.
DEFAULT_LOG_BUFFER = 256

LOG_FORMAT = "%(asctime)s %(levelname)s %(name)s [trace=%(trace_id)s] %(message)s"


class TraceIdFilter(logging.Filter):
    """Stamp ``record.trace_id`` from the contextvar (or ``-``)."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "trace_id") or record.trace_id is None:
            record.trace_id = current_trace_id.get() or "-"
        return True


def get_logger(name: str) -> logging.Logger:
    """The subsystem logger ``repro.<name>`` (or ``name`` if already rooted)."""
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def configure_logging(level: int = logging.INFO,
                      stream=None) -> logging.Logger:
    """Attach one trace-aware stream handler to the ``repro`` root.

    Idempotent: reconfiguring adjusts the level instead of stacking
    handlers (the CLI calls this once per process).
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    for handler in root.handlers:
        if getattr(handler, "_repro_obs_handler", False):
            handler.setLevel(level)
            return root
    handler = logging.StreamHandler(stream)
    handler._repro_obs_handler = True
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    handler.addFilter(TraceIdFilter())
    root.addHandler(handler)
    return root


class BufferedLogHandler(logging.Handler):
    """Bounded in-memory buffer of formatted records for remote draining.

    Installed on a shard worker's ``repro`` root at WARNING level; the
    coordinator drains it over ``POST /admin/logs/drain`` and replays the
    entries into its own log stream.  Overflow drops the oldest entries and
    counts them, so a chatty worker can never grow without bound.
    """

    def __init__(self, capacity: int = DEFAULT_LOG_BUFFER,
                 level: int = logging.WARNING) -> None:
        super().__init__(level=level)
        self._buffer_lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=max(1, capacity))
        self._dropped = 0
        self.addFilter(TraceIdFilter())

    def emit(self, record: logging.LogRecord) -> None:
        try:
            entry = {
                "level": record.levelname,
                "logger": record.name,
                "message": record.getMessage(),
                "trace_id": getattr(record, "trace_id", None) or "-",
                "created": record.created,
            }
        except Exception:
            self.handleError(record)
            return
        with self._buffer_lock:
            if len(self._entries) == self._entries.maxlen:
                self._dropped += 1
            self._entries.append(entry)

    def drain(self) -> dict:
        """Pop everything buffered: ``{"entries": [...], "dropped": n}``."""
        with self._buffer_lock:
            entries = list(self._entries)
            self._entries.clear()
            dropped, self._dropped = self._dropped, 0
        return {"entries": entries, "dropped": dropped}


def replay_entries(entries: list[dict], source: str,
                   logger: logging.Logger | None = None,
                   dropped: int = 0) -> None:
    """Re-emit drained worker log entries into this process's stream."""
    logger = logger or get_logger("sharding.workers")
    for entry in entries:
        level = logging.getLevelName(str(entry.get("level", "WARNING")))
        if not isinstance(level, int):
            level = logging.WARNING
        logger.log(
            level, "[%s] %s", source, entry.get("message", ""),
            extra={"trace_id": entry.get("trace_id") or "-"},
        )
    if dropped:
        logger.warning("[%s] %d log entries dropped before drain", source, dropped)
