"""Fingerprint (bitmap) index.

Stores one hashed bit-vector fingerprint per dataset graph.  Filtering for a
subgraph query keeps the graphs whose fingerprint contains all query bits;
for a supergraph query the containment is reversed.  Collisions and the loss
of multiplicities only ever weaken filtering (larger candidate sets), never
cause false dismissals, so the index remains sound.

This is the smallest-footprint FTV index in the repository and serves as the
low end of the space/filtering-power spectrum in experiment E2.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import IndexError_
from repro.features.base import FeatureExtractor
from repro.features.fingerprint import Fingerprint
from repro.graph.graph import Graph
from repro.index.base import DatasetIndex, GraphId
from repro.query_model import QueryType


class FingerprintIndex(DatasetIndex):
    """One hashed fingerprint per graph."""

    name = "fingerprint"

    def __init__(self, extractor: FeatureExtractor, num_bits: int = 1024) -> None:
        if num_bits <= 0:
            raise IndexError_("num_bits must be positive")
        self.extractor = extractor
        self.num_bits = num_bits
        self._fingerprints: dict[GraphId, Fingerprint] = {}
        self._graph_ids: list[GraphId] = []
        self._built = False

    def build(self, dataset: Iterable[Graph]) -> None:
        """Fingerprint every dataset graph."""
        if self._built:
            raise IndexError_("index is already built")
        for position, graph in enumerate(dataset):
            graph_id = graph.graph_id if graph.graph_id is not None else position
            if graph_id in self._fingerprints:
                raise IndexError_(f"duplicate graph id {graph_id!r} in dataset")
            features = self.extractor.extract(graph)
            self._fingerprints[graph_id] = Fingerprint.from_features(features, self.num_bits)
            self._graph_ids.append(graph_id)
        self._built = True

    def candidates(self, query: Graph, query_type: QueryType) -> set[GraphId]:
        """Candidate ids via bitwise containment of fingerprints."""
        self._require_built()
        query_type = QueryType.parse(query_type)
        query_fp = Fingerprint.from_features(self.extractor.extract(query), self.num_bits)
        survivors: set[GraphId] = set()
        for graph_id in self._graph_ids:
            graph_fp = self._fingerprints[graph_id]
            if query_type is QueryType.SUBGRAPH:
                if graph_fp.contains_all(query_fp):
                    survivors.add(graph_id)
            else:
                if query_fp.contains_all(graph_fp):
                    survivors.add(graph_id)
        return survivors

    def graph_ids(self) -> list[GraphId]:
        """All indexed graph ids, in dataset order."""
        self._require_built()
        return list(self._graph_ids)

    def memory_bytes(self) -> int:
        """Footprint: one fixed-width bitset per graph plus id overhead."""
        per_graph = self.num_bits // 8 + 48
        return per_graph * len(self._graph_ids)

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "extractor": self.extractor.describe(),
            "num_bits": self.num_bits,
            "num_graphs": len(self._graph_ids),
        }

    def _require_built(self) -> None:
        if not self._built:
            raise IndexError_("index has not been built yet")
