"""Dataset index interface (the "Filter" half of Method M).

A dataset index is built once over the dataset graphs and then, per query,
produces a *candidate set*: graph ids that might belong to the answer.  The
contract that every implementation must honour (and the test-suite checks) is
**no false dismissals**:

* subgraph query ``g``  → every graph with ``g ⊆ G`` is in the candidates;
* supergraph query ``g`` → every graph with ``G ⊆ g`` is in the candidates.

Indexes also report an estimate of their memory footprint — experiment II of
the paper is precisely about the space cost of more aggressive filtering
versus the (tiny) space cost of the GC cache.
"""

from __future__ import annotations

import abc
import sys
from collections import Counter
from collections.abc import Iterable

from repro.graph.graph import Graph
from repro.query_model import QueryType

GraphId = int | str


def graph_id_sort_key(graph_id: GraphId) -> tuple[int, int | str]:
    """Stable total order over graph ids, even when int and str ids mix.

    Integer ids sort numerically before string ids (``key=repr`` would order
    ``10`` before ``2`` and is not reproducible for richer id types), so
    verification order — and therefore per-candidate timing attribution —
    is identical across runs.
    """
    if isinstance(graph_id, str):
        return (1, graph_id)
    return (0, graph_id)


class DatasetIndex(abc.ABC):
    """Abstract dataset index."""

    name: str = "abstract"

    @abc.abstractmethod
    def build(self, dataset: Iterable[Graph]) -> None:
        """Index the dataset graphs (callable once per index instance)."""

    @abc.abstractmethod
    def candidates(self, query: Graph, query_type: QueryType) -> set[GraphId]:
        """Return candidate graph ids for the query (no false dismissals)."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Rough estimate of the index's in-memory footprint in bytes."""

    def describe(self) -> dict[str, object]:
        """Return the index's parameters for reports."""
        return {"name": self.name}


def estimate_object_bytes(obj: object) -> int:
    """Recursive, approximate ``sys.getsizeof`` over containers.

    Good enough for the relative space comparisons of experiment II; not a
    precise heap profiler.
    """
    seen: set[int] = set()

    def _size(value: object) -> int:
        if id(value) in seen:
            return 0
        seen.add(id(value))
        total = sys.getsizeof(value)
        if isinstance(value, dict):
            total += sum(_size(k) + _size(v) for k, v in value.items())
        elif isinstance(value, (list, tuple, set, frozenset)):
            total += sum(_size(item) for item in value)
        elif isinstance(value, Counter):
            total += sum(_size(k) + _size(v) for k, v in value.items())
        return total

    return _size(obj)


def feature_multiset_bytes(features: Counter) -> int:
    """Approximate storage for one feature multiset."""
    return estimate_object_bytes(dict(features))
