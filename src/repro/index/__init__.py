"""Dataset indexes: the Filter component of Method M."""

from repro.index.base import DatasetIndex, GraphId, estimate_object_bytes
from repro.index.bitmap import FingerprintIndex
from repro.index.inverted import InvertedFeatureIndex
from repro.index.suffix_trie import SuffixTrieIndex

__all__ = [
    "DatasetIndex",
    "GraphId",
    "estimate_object_bytes",
    "InvertedFeatureIndex",
    "SuffixTrieIndex",
    "FingerprintIndex",
]
