"""Inverted feature index (feature → graphs that contain it).

This is the workhorse FTV index: per feature it stores, for every dataset
graph, how many times the feature occurs.  Filtering is then:

* subgraph query ``g``: a graph ``G`` survives iff ``count_G(f) ≥ count_g(f)``
  for every feature ``f`` of the query;
* supergraph query ``g``: ``G`` survives iff ``count_G(f) ≤ count_g(f)`` for
  every feature ``f`` of ``G`` (the graph may not contain anything the query
  lacks).

Both directions follow from the feature family's monotonicity under subgraph
containment, so neither ever produces a false dismissal.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.errors import IndexError_
from repro.features.base import FeatureExtractor, FeatureKey
from repro.graph.graph import Graph
from repro.index.base import DatasetIndex, GraphId, estimate_object_bytes
from repro.query_model import QueryType


class InvertedFeatureIndex(DatasetIndex):
    """Inverted index over a feature extractor."""

    name = "inverted"

    def __init__(self, extractor: FeatureExtractor) -> None:
        self.extractor = extractor
        self._postings: dict[FeatureKey, dict[GraphId, int]] = {}
        self._graph_features: dict[GraphId, Counter[FeatureKey]] = {}
        self._graph_ids: list[GraphId] = []
        self._built = False

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #
    def build(self, dataset: Iterable[Graph]) -> None:
        """Extract features from every dataset graph and fill the postings."""
        if self._built:
            raise IndexError_("index is already built")
        for position, graph in enumerate(dataset):
            graph_id = graph.graph_id if graph.graph_id is not None else position
            if graph_id in self._graph_features:
                raise IndexError_(f"duplicate graph id {graph_id!r} in dataset")
            features = self.extractor.extract(graph)
            self._graph_ids.append(graph_id)
            self._graph_features[graph_id] = features
            for key, count in features.items():
                self._postings.setdefault(key, {})[graph_id] = count
        self._built = True

    # ------------------------------------------------------------------ #
    # query
    # ------------------------------------------------------------------ #
    def candidates(self, query: Graph, query_type: QueryType) -> set[GraphId]:
        """Candidate graph ids for a query of the given type."""
        self._require_built()
        query_type = QueryType.parse(query_type)
        query_features = self.extractor.extract(query)
        if query_type is QueryType.SUBGRAPH:
            return self._subgraph_candidates(query_features)
        return self._supergraph_candidates(query_features)

    def _subgraph_candidates(self, query_features: Counter[FeatureKey]) -> set[GraphId]:
        survivors = set(self._graph_ids)
        # intersect rarest-feature postings first for early termination
        ordered = sorted(
            query_features.items(), key=lambda item: len(self._postings.get(item[0], {}))
        )
        for key, needed in ordered:
            postings = self._postings.get(key)
            if not postings:
                return set()
            survivors &= {graph_id for graph_id, count in postings.items() if count >= needed}
            if not survivors:
                return set()
        return survivors

    def _supergraph_candidates(self, query_features: Counter[FeatureKey]) -> set[GraphId]:
        survivors: set[GraphId] = set()
        for graph_id in self._graph_ids:
            graph_features = self._graph_features[graph_id]
            if FeatureExtractor.multiset_contains(query_features, graph_features):
                survivors.add(graph_id)
        return survivors

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def graph_ids(self) -> list[GraphId]:
        """All indexed graph ids, in dataset order."""
        self._require_built()
        return list(self._graph_ids)

    def num_features(self) -> int:
        """Number of distinct features across the dataset."""
        return len(self._postings)

    def graph_features(self, graph_id: GraphId) -> Counter[FeatureKey]:
        """The stored feature multiset of one dataset graph."""
        self._require_built()
        try:
            return self._graph_features[graph_id]
        except KeyError:
            raise IndexError_(f"graph id {graph_id!r} is not indexed") from None

    def summary_vectors(self) -> tuple[Counter[FeatureKey], Counter[FeatureKey]]:
        """``(union, common)`` feature vectors over every indexed graph.

        The union is the pointwise maximum of the per-graph multisets, the
        common vector the pointwise minimum — the NeedleTail-style density
        summary a shard publishes so a scatter planner can prove the shard
        cannot contribute answers to a query.  Derived from the per-graph
        multisets the index already holds, so no re-extraction is needed —
        but pruning against these vectors is only sound for queries screened
        with the *same* extractor family this index was built with.  The
        sharded system deliberately does not use this shortcut: its
        summaries are built with a method-independent extractor
        (``ShardSummary.build``), so they stay sound for every Method M,
        including index-free direct SI.
        """
        self._require_built()
        multisets = list(self._graph_features.values())
        return (
            FeatureExtractor.multiset_union(multisets),
            FeatureExtractor.multiset_common(multisets),
        )

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the postings and per-graph multisets."""
        return estimate_object_bytes(self._postings) + estimate_object_bytes(
            self._graph_features
        )

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "extractor": self.extractor.describe(),
            "num_graphs": len(self._graph_ids),
            "num_features": len(self._postings),
        }

    def _require_built(self) -> None:
        if not self._built:
            raise IndexError_("index has not been built yet")
