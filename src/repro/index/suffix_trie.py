"""Suffix-trie index over label paths (GraphGrepSX, Bonnici et al. 2010).

Reference [1] of the paper — the Method M used in the demo — organises the
label paths of every dataset graph in a suffix-tree structure: each trie node
represents a label sequence and stores, per graph, how many paths with that
label sequence occur.  Filtering walks the trie with the query's paths and
keeps the graphs whose counts dominate the query's counts.

Functionally the candidate sets equal those of an
:class:`~repro.index.inverted.InvertedFeatureIndex` over the same path
features; the trie differs in storage layout (shared prefixes) and is kept as
a faithful reproduction of the paper's Method M, as well as the second data
point for the space-accounting experiment (E2).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.errors import IndexError_
from repro.features.base import FeatureExtractor
from repro.features.paths import PathFeatureExtractor
from repro.graph.graph import Graph
from repro.index.base import DatasetIndex, GraphId, estimate_object_bytes
from repro.query_model import QueryType


class _TrieNode:
    """One node of the label-path trie."""

    __slots__ = ("children", "graph_counts")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.graph_counts: dict[GraphId, int] = {}

    def child(self, label: str, create: bool = False) -> "_TrieNode | None":
        node = self.children.get(label)
        if node is None and create:
            node = _TrieNode()
            self.children[label] = node
        return node


class SuffixTrieIndex(DatasetIndex):
    """GraphGrepSX-style suffix trie over label paths of bounded length."""

    name = "suffix_trie"

    def __init__(self, max_path_length: int = 3) -> None:
        if max_path_length < 1:
            raise IndexError_("max_path_length must be at least 1")
        self.max_path_length = max_path_length
        self.extractor = PathFeatureExtractor(max_length=max_path_length)
        self._root = _TrieNode()
        self._graph_features: dict[GraphId, Counter] = {}
        self._graph_ids: list[GraphId] = []
        self._num_nodes = 1
        self._built = False

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #
    def build(self, dataset: Iterable[Graph]) -> None:
        """Insert every dataset graph's label paths into the trie."""
        if self._built:
            raise IndexError_("index is already built")
        for position, graph in enumerate(dataset):
            graph_id = graph.graph_id if graph.graph_id is not None else position
            if graph_id in self._graph_features:
                raise IndexError_(f"duplicate graph id {graph_id!r} in dataset")
            features = self.extractor.extract(graph)
            self._graph_ids.append(graph_id)
            self._graph_features[graph_id] = features
            for key, count in features.items():
                self._insert(key, graph_id, count)
        self._built = True

    def _insert(self, key: tuple[str, ...], graph_id: GraphId, count: int) -> None:
        node = self._root
        for label in key:
            existing = node.child(label)
            if existing is None:
                existing = node.child(label, create=True)
                self._num_nodes += 1
            node = existing
        node.graph_counts[graph_id] = count

    def _lookup(self, key: tuple[str, ...]) -> dict[GraphId, int] | None:
        node = self._root
        for label in key:
            node = node.child(label)
            if node is None:
                return None
        return node.graph_counts

    # ------------------------------------------------------------------ #
    # query
    # ------------------------------------------------------------------ #
    def candidates(self, query: Graph, query_type: QueryType) -> set[GraphId]:
        """Candidate graph ids by walking the trie with the query's paths."""
        self._require_built()
        query_type = QueryType.parse(query_type)
        query_features = self.extractor.extract(query)
        if query_type is QueryType.SUBGRAPH:
            survivors = set(self._graph_ids)
            for key, needed in sorted(query_features.items(), key=lambda item: -len(item[0])):
                counts = self._lookup(key)
                if not counts:
                    return set()
                survivors &= {graph_id for graph_id, count in counts.items() if count >= needed}
                if not survivors:
                    return set()
            return survivors
        survivors = set()
        for graph_id in self._graph_ids:
            if FeatureExtractor.multiset_contains(query_features, self._graph_features[graph_id]):
                survivors.add(graph_id)
        return survivors

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def graph_ids(self) -> list[GraphId]:
        """All indexed graph ids, in dataset order."""
        self._require_built()
        return list(self._graph_ids)

    def num_trie_nodes(self) -> int:
        """Number of trie nodes (shared-prefix storage)."""
        return self._num_nodes

    def memory_bytes(self) -> int:
        """Approximate footprint of the trie plus the per-graph multisets."""
        total = estimate_object_bytes(self._graph_features)
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 64  # node object overhead estimate
            total += estimate_object_bytes(node.graph_counts)
            total += sum(len(label) + 50 for label in node.children)
            stack.extend(node.children.values())
        return total

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "max_path_length": self.max_path_length,
            "num_graphs": len(self._graph_ids),
            "num_trie_nodes": self._num_nodes,
        }

    def _require_built(self) -> None:
        if not self._built:
            raise IndexError_("index has not been built yet")
