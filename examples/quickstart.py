#!/usr/bin/env python3
"""Quickstart: deploy GC over a Method M and run a few queries.

This is the five-minute tour of the library:

1. build (or load) a dataset of labelled graphs;
2. wrap it in a :class:`GraphCacheSystem` with a cache configuration;
3. run subgraph queries and look at per-query reports;
4. inspect the aggregate statistics the Demonstrator would show.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import GCConfig, GraphCacheSystem, molecule_dataset
from repro.dashboard import format_table
from repro.graph.operations import random_connected_subgraph


def main() -> None:
    # 1. an AIDS-like dataset of 100 synthetic molecules (the demo's setup)
    dataset = molecule_dataset(100, min_vertices=10, max_vertices=40, rng=7)

    # 2. GC deployed over the GraphGrepSX FTV method with the HD policy
    config = GCConfig(
        cache_capacity=50,
        window_size=1,          # admit every executed query immediately (interactive session)
        replacement_policy="HD",
        method="graphgrep-sx",
        method_options={"feature_size": 2},
    )
    system = GraphCacheSystem(dataset, config)

    # 3. run a handful of related queries: a pattern, the same pattern again
    #    (exact hit), a piece of it (sub-case hit) and an extension of it
    pattern = random_connected_subgraph(dataset[0], 8, rng=1)
    smaller = random_connected_subgraph(pattern, 5, rng=2)

    print("Running four related subgraph queries...\n")
    rows = []
    for name, graph in [
        ("pattern", pattern.copy()),
        ("pattern again", pattern.copy()),
        ("piece of pattern", smaller),
        ("unrelated", random_connected_subgraph(dataset[50], 7, rng=3)),
    ]:
        report = system.run_query(graph, "subgraph")
        rows.append(
            {
                "query": name,
                "answers": len(report.answer),
                "C_M": len(report.method_candidates),
                "verified": len(report.verified_candidates),
                "sub hits": len(report.sub_hit_entries),
                "super hits": len(report.super_hit_entries),
                "exact": report.exact_hit_entry is not None,
                "tests saved": report.tests_saved,
            }
        )
    print(format_table(rows))

    # 4. aggregate statistics
    aggregate = system.aggregate()
    print("\nAggregate over the session:")
    print(f"  queries processed : {aggregate.num_queries}")
    print(f"  cache hit ratio   : {aggregate.hit_ratio:.2f}")
    print(f"  sub-iso tests     : {aggregate.total_dataset_tests} "
          f"(Method M alone would need {aggregate.total_baseline_tests})")
    print(f"  sub-iso speedup   : {aggregate.test_speedup:.2f}x")
    print(f"  cache memory      : {system.cache_memory_bytes():,} bytes "
          f"({100 * system.memory_overhead_ratio():.1f}% of the FTV index)")


if __name__ == "__main__":
    main()
