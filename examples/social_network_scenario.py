#!/usr/bin/env python3
"""Domain scenario: social-network pattern queries that narrow over time.

The paper's introduction motivates GC with query sessions that "start off
broad (e.g., all the people in a geographic location) and become narrower
(e.g., those having specific demographics)".  This example models exactly
that: a dataset of community graphs (power-law labelled graphs) and an
analyst session in which each query is a refinement (supergraph) of the
previous pattern — so every earlier query is a sub-case hit for the later
ones, and GC keeps shrinking the candidate sets.

Run with:  python examples/social_network_scenario.py
"""

from __future__ import annotations

import random

from repro import GCConfig, GraphCacheSystem, QueryType, synthetic_dataset
from repro.dashboard import format_table
from repro.graph.operations import extend_graph, random_connected_subgraph


def main() -> None:
    rng = random.Random(99)

    # a dataset of 60 community graphs with 8 demographic labels
    dataset = synthetic_dataset(60, kind="powerlaw", rng=rng, num_vertices=45, num_labels=8)
    labels = sorted({label for graph in dataset for label in graph.label_set()})

    config = GCConfig(
        cache_capacity=30,
        window_size=1,          # interactive session: every query is admitted immediately
        replacement_policy="HD",
        method="grapes",
        method_options={"feature_size": 2},
    )
    system = GraphCacheSystem(dataset, config)

    # the analyst session: a broad 4-vertex pattern, then 4 successive
    # refinements, each adding constraints (vertices/edges) to the last
    broad = random_connected_subgraph(dataset[0], 4, rng=rng)
    session = [broad]
    for _ in range(4):
        session.append(extend_graph(session[-1], 1, labels=labels, rng=rng,
                                    extra_edge_probability=0.5))

    print("Analyst session: one broad pattern, four successive refinements.\n")
    rows = []
    for step, pattern in enumerate(session):
        report = system.run_query(pattern.copy(), QueryType.SUBGRAPH)
        rows.append(
            {
                "step": f"refinement {step}" if step else "broad pattern",
                "|V|": pattern.num_vertices,
                "answers": len(report.answer),
                "C_M": len(report.method_candidates),
                "verified": len(report.verified_candidates),
                "super hits": len(report.super_hit_entries),
                "tests saved": report.tests_saved,
            }
        )
    print(format_table(rows))

    aggregate = system.aggregate()
    print(
        f"\nSession total: {aggregate.total_dataset_tests} sub-iso tests with GC "
        f"vs {aggregate.total_baseline_tests} for Method M alone "
        f"(speedup {aggregate.test_speedup:.2f}x, hit ratio {aggregate.hit_ratio:.2f})."
    )


if __name__ == "__main__":
    main()
