#!/usr/bin/env python3
"""Developer scenario (paper §3.3): plug a custom replacement policy into GC.

The demo's developer dashboard shows the abstract ``Cache`` class whose three
methods an extension author overrides.  This example does exactly that in
Python: it defines a new policy ("ANSWER", which keeps the cached queries
with the largest answer sets), registers it, and benchmarks it against the
bundled policies on the same workload — without touching any library code.

Run with:  python examples/custom_policy_plugin.py
"""

from __future__ import annotations

from repro import GCConfig, molecule_dataset
from repro.cache import ReplacementPolicy, register_policy, available_policies
from repro.cache.entry import CacheEntry
from repro.dashboard import policy_speedup_table
from repro.workload import WorkloadGenerator, compare_policies


class AnswerSizePolicy(ReplacementPolicy):
    """Keep the cached queries whose answer sets are largest.

    Intuition: for subgraph queries, a cached query with a large answer set
    can guarantee many answers when it turns out to be a sub-case hit.  The
    three paper-mandated extension points are ``utility`` (ranking, used by
    the inherited ``get_replaced_content``/``update_cache_items``) and the
    inherited ``update_cache_sta_info`` statistics bookkeeping.
    """

    name = "ANSWER"

    def utility(self, entry: CacheEntry) -> float:
        # answer size dominates; recency breaks ties between equals
        return len(entry.answer) * 1000.0 + entry.stats.last_used_clock


def main() -> None:
    register_policy(AnswerSizePolicy.name, AnswerSizePolicy, overwrite=True)
    print(f"Registered policies: {', '.join(available_policies())}\n")

    dataset = molecule_dataset(80, min_vertices=10, max_vertices=30, rng=12)
    generator = WorkloadGenerator(dataset, rng=13)
    workload = generator.generate(80, mix="popular", name="plugin-benchmark")

    config = GCConfig(cache_capacity=25, window_size=5,
                      method="graphgrep-sx", method_options={"feature_size": 2})
    results = compare_policies(dataset, workload, ["LRU", "HD", "ANSWER"], config=config)

    print("Custom policy vs bundled policies on the same workload:\n")
    print(policy_speedup_table(results))
    best = max(results.items(), key=lambda item: item[1].test_speedup)
    print(f"\nBest policy on this workload: {best[0]} "
          f"({best[1].test_speedup:.2f}x fewer sub-iso tests than Method M alone)")


if __name__ == "__main__":
    main()
