#!/usr/bin/env python3
"""Sharded scatter-gather serving: the same traffic, partitioned N ways.

The sharding tour of the library:

1. route a dataset across 4 size-balanced shards and inspect the routing;
2. prove equivalence in-process: the sharded engine's answers are identical
   to a single unsharded system's on the same trace;
3. serve the sharded system over HTTP through the GraphService SDK, replay
   the trace, and read the per-shard sections of the typed metrics snapshot
   (merged + per-shard aggregates, merge overhead booked as its own
   pipeline stage);
4. show the snapshot fan-out: one manifest plus one file per shard.

Run with:  python examples/sharded_serving.py

Pass ``--shard-backend process`` to host every shard in a spawned worker
process (v2 envelopes over loopback) instead of in-process threads — same
answers, same metrics fan-in, but CPU-bound verification is no longer
GIL-bound.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import GCConfig, molecule_dataset
from repro.api import LocalGraphService, QueryRequest, RemoteGraphService
from repro.dashboard import format_table
from repro.server import QueryServer
from repro.sharding import ShardRouter
from repro.workload import generate_trace, replay_trace

NUM_SHARDS = 4


def clones(trace) -> list[QueryRequest]:
    return [QueryRequest(graph=q.graph.copy(), query_type=q.query_type)
            for q in trace]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shard-backend", choices=["thread", "process"],
                        default="thread",
                        help="host shards in-process ('thread') or in spawned "
                             "worker processes ('process')")
    args = parser.parse_args()

    dataset = molecule_dataset(60, min_vertices=10, max_vertices=25, rng=7)
    trace = generate_trace(dataset, 120, skew="zipfian", query_type="mixed", seed=9)

    # 1. the router: every graph lands on exactly one shard
    router = ShardRouter(dataset, NUM_SHARDS, "size-balanced")
    print(f"router: {router.describe()}")

    # 2. equivalence through one API: the sharded service's answers are
    #    identical to the unsharded service's on the same trace — whichever
    #    backend hosts the shards
    config = GCConfig(cache_capacity=30, window_size=5,
                      num_shards=NUM_SHARDS, shard_policy="size-balanced",
                      shard_backend=args.shard_backend)
    with LocalGraphService(dataset, GCConfig(cache_capacity=30, window_size=5)) as single:
        reference = [r.answer for r in single.run_batch(clones(trace)).raise_first()]
    with LocalGraphService(dataset, config) as sharded:
        answers = [r.answer for r in sharded.run_batch(clones(trace)).raise_first()]
        merge_rows = [row for row in sharded.system.stage_breakdown()
                      if row["stage"] == "merge"]
    assert answers == reference, "scatter-gather must not change any answer"
    print(f"equivalence      : {len(answers)} queries, "
          f"sharded({args.shard_backend}) == unsharded ✓")
    if merge_rows:
        print(f"merge overhead   : {merge_rows[0]['total_seconds'] * 1000:.2f} ms total "
              f"({merge_rows[0]['share'] * 100:.2f}% of stage time)")

    # 3. the same system behind the HTTP server, snapshot fan-out configured
    snapshot = Path(tempfile.mkdtemp()) / "sharded-snapshot.json"
    with QueryServer(dataset, config, max_batch_size=4,
                     snapshot_path=snapshot) as server:
        print(f"\nserving at {server.address} "
              f"({NUM_SHARDS} {args.shard_backend} shards)\n")
        client = RemoteGraphService.for_server(server)
        result = replay_trace(client, trace, num_threads=4)
        print(format_table([result.summary()]))

        metrics = client.metrics()
        per_shard = [
            {
                "shard": row["shard"],
                "graphs": row["dataset_size"],
                "cached": row["cache"]["population"],
                "queries": metrics.statistics["shards"][f"shard{row['shard']}"]
                ["num_queries"],
            }
            for row in metrics.shards
        ]
        print("\nper-shard view:")
        print(format_table(per_shard))

    # 4. snapshot fan-out: manifest + one file per shard
    files = sorted(path.name for path in snapshot.parent.iterdir())
    print(f"\nsnapshot files   : {files}")


if __name__ == "__main__":
    main()
