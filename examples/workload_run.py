#!/usr/bin/env python3
"""Scenario II — The Workload Run (paper §3.2, Fig. 2b/2c).

Runs a workload of queries over GC under every bundled replacement policy
(LRU, POP, PIN, PINC, HD) on identical fresh systems, then shows:

* the per-query cache-hit percentage of one run (Fig. 2b);
* which cached graphs each policy evicted — different policies evict
  different graphs (Fig. 2c);
* the policy comparison table (experiment I's "competition").

Run with:  python examples/workload_run.py
"""

from __future__ import annotations

from repro import GCConfig, molecule_dataset
from repro.cache import available_policies
from repro.dashboard import WorkloadRunView, policy_speedup_table, replacement_comparison
from repro.runtime.system import GraphCacheSystem
from repro.workload import WorkloadGenerator, WorkloadMix, run_workload


def main() -> None:
    dataset = molecule_dataset(100, min_vertices=10, max_vertices=35, rng=3)
    generator = WorkloadGenerator(dataset, rng=4)

    # the demo: a cache full of 50 executed queries, then a workload of 10
    warm_mix = WorkloadMix(pool_size=30, repeat_fraction=0.3, shrink_fraction=0.3,
                           extend_fraction=0.3, fresh_fraction=0.1,
                           min_pattern_vertices=6, max_pattern_vertices=12)
    warmup = generator.generate(50, mix=warm_mix, name="warmup")
    workload = generator.generate(10, mix="popular", name="the-workload-run")

    policies = [name for name in ["LRU", "POP", "PIN", "PINC", "HD"]
                if name in available_policies()]
    results = {}
    populations = {}
    for policy in policies:
        config = GCConfig(cache_capacity=50, window_size=10, replacement_policy=policy,
                          method="graphgrep-sx", method_options={"feature_size": 1})
        system = GraphCacheSystem(dataset, config)
        system.warm_cache(list(warmup))
        populations[policy] = [entry.entry_id for entry in system.cache.entries()]
        results[policy] = run_workload(system, workload)

    # Fig. 2(b): per-query hit percentages for the HD run
    view = WorkloadRunView(results["HD"])
    print(view.render_text())

    # Fig. 2(c): replacement decisions differ across policies
    print()
    print(replacement_comparison(results, populations))

    # experiment I flavour: the comparison table
    print("\nPolicy comparison on this workload:")
    print(policy_speedup_table(results))


if __name__ == "__main__":
    main()
