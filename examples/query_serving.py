#!/usr/bin/env python3
"""Query serving: run the embedded server and push a trace through it.

The serving tour of the library:

1. start a :class:`QueryServer` over a dataset (ephemeral port, request
   batching, bounded admission queue, cache snapshot for warm restarts);
2. generate a zipfian mixed sub/supergraph trace and replay it through the
   HTTP client at a target QPS;
3. read the live ``/metrics`` and ``/stats`` snapshots any monitoring
   system could scrape;
4. restart the server from the snapshot and show it starts warm.

Run with:  python examples/query_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import GCConfig, molecule_dataset
from repro.dashboard import format_table
from repro.server import QueryServer
from repro.workload import QueryServerClient, generate_trace, replay_trace


def main() -> None:
    dataset = molecule_dataset(60, min_vertices=10, max_vertices=25, rng=7)
    trace = generate_trace(dataset, 120, skew="zipfian", query_type="mixed", seed=9)
    config = GCConfig(cache_capacity=30, window_size=5, replacement_policy="HD")
    snapshot = Path(tempfile.mkdtemp()) / "cache-snapshot.json"

    # 1–2. serve and replay: 4-deep batches, open-loop at 150 QPS
    with QueryServer(dataset, config, max_batch_size=4,
                     snapshot_path=snapshot) as server:
        print(f"serving at {server.address}\n")
        client = QueryServerClient.for_server(server)
        result = replay_trace(client, trace, target_qps=150.0, num_threads=4)
        print(format_table([result.summary()]))

        # 3. the observability surface
        metrics = client.metrics()
        aggregate = metrics["statistics"]["aggregate"]
        print(f"\nhit ratio        : {aggregate['hit_ratio']:.2f}")
        print(f"tests saved      : "
              f"{aggregate['total_baseline_tests'] - aggregate['total_dataset_tests']}")
        print(f"cache population : {metrics['cache']['population']}")
        batcher = client.stats()["batcher"]
        print(f"batches          : {batcher['batches']} "
              f"(mean size {batcher['mean_batch_size']})")

    # 4. a restarted server starts warm from the snapshot
    with QueryServer(dataset, config, snapshot_path=snapshot) as restarted:
        print(f"\nrestarted warm with {restarted.restored_entries} cached entries")
        payload = QueryServerClient.for_server(restarted).run_query(
            trace[0].graph.copy(), trace[0].query_type
        )
        print(f"first query answered {len(payload['answer'])} graphs "
              f"(hits: {payload['hits']})")


if __name__ == "__main__":
    main()
