#!/usr/bin/env python3
"""Query serving through the GraphService SDK: serve, replay, record.

The serving tour of the library, on the unified service API:

1. start a :class:`QueryServer` over a dataset (ephemeral port, request
   batching, bounded admission queue, cache snapshot for warm restarts);
2. connect a :class:`RemoteGraphService` (protocol version negotiated,
   typed envelopes) and replay a zipfian mixed trace at a target QPS —
   while the server records the live request stream as a replayable trace;
3. read the typed ``/metrics`` and raw ``/stats`` snapshots any monitoring
   system could scrape;
4. restart the server from the snapshot and replay the *recorded* trace
   against it — the "replay production traffic against a candidate
   configuration" loop in four lines.

Run with:  python examples/query_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import GCConfig, molecule_dataset
from repro.api import QueryRequest, RemoteGraphService
from repro.dashboard import format_table
from repro.server import QueryServer
from repro.workload import generate_trace, replay_trace


def main() -> None:
    dataset = molecule_dataset(60, min_vertices=10, max_vertices=25, rng=7)
    trace = generate_trace(dataset, 120, skew="zipfian", query_type="mixed", seed=9)
    config = GCConfig(cache_capacity=30, window_size=5, replacement_policy="HD")
    snapshot = Path(tempfile.mkdtemp()) / "cache-snapshot.json"

    # 1–2. serve and replay: 4-deep batches, open-loop at 150 QPS, recording on
    with QueryServer(dataset, config, max_batch_size=4,
                     snapshot_path=snapshot) as server:
        print(f"serving at {server.address}\n")
        client = RemoteGraphService.for_server(server)
        print(f"negotiated protocol v{client.protocol_version}")
        client.start_recording(name="live-traffic")
        result = replay_trace(client, trace, target_qps=150.0, num_threads=4)
        recorded = client.stop_recording()
        print(format_table([result.summary()]))

        # 3. the observability surface — typed metrics, raw serving stats
        metrics = client.metrics()
        aggregate = metrics.aggregate
        print(f"\nhit ratio        : {aggregate['hit_ratio']:.2f}")
        print(f"tests saved      : "
              f"{aggregate['total_baseline_tests'] - aggregate['total_dataset_tests']}")
        print(f"cache population : {metrics.cache['population']}")
        batcher = client.stats()["batcher"]
        print(f"batches          : {batcher['batches']} "
              f"(mean size {batcher['mean_batch_size']})")
        print(f"recorded trace   : {len(recorded)} queries ({recorded.name})")

    # 4. a restarted server starts warm from the snapshot; the recorded
    #    trace replays against it through the same client surface
    with QueryServer(dataset, config, snapshot_path=snapshot) as restarted:
        print(f"\nrestarted warm with {restarted.restored_entries} cached entries")
        client = RemoteGraphService.for_server(restarted)
        response = client.run(QueryRequest(graph=trace[0].graph.copy(),
                                           query_type=trace[0].query_type))
        print(f"first query answered {len(response.answer)} graphs "
              f"(hits: {response.hits})")
        replayed = replay_trace(client, recorded, num_threads=4)
        print(f"recorded trace replayed: {replayed.served}/{len(recorded)} served "
              f"at {replayed.achieved_qps:.0f} QPS")


if __name__ == "__main__":
    main()
