#!/usr/bin/env python3
"""The async client: thousands of connections from one process.

The scale tour of the service API:

1. serve a 2-shard short-circuit system;
2. open an :class:`AsyncRemoteGraphService` and pre-warm a pool of 800
   keep-alive connections — a population a thread-per-connection client
   would need 800 OS threads to hold;
3. replay a mixed trace open-loop over the pool and compare tail latency
   and pool health with the sync client on the same trace;
4. show that the answer sets are identical — the async path changes the
   transport, never the semantics.

Run with:  python examples/async_client.py
"""

from __future__ import annotations

import asyncio

from repro import GCConfig, molecule_dataset
from repro.api import RemoteGraphService
from repro.api.aio import AsyncRemoteGraphService, replay_trace_async
from repro.dashboard import format_table
from repro.server import QueryServer
from repro.workload import generate_trace, replay_trace

CONNECTIONS = 800


def main() -> None:
    dataset = molecule_dataset(40, min_vertices=8, max_vertices=18, rng=7)
    trace = generate_trace(dataset, 800, skew="zipfian", query_type="mixed", seed=9)
    config = GCConfig(cache_capacity=25, window_size=5,
                      num_shards=2, scatter_mode="short-circuit")

    with QueryServer(dataset, config, max_batch_size=8, batch_workers=8,
                     max_queue_depth=4096) as server:
        print(f"serving at {server.address} (2 shards, short-circuit scatter)\n")

        # sync arm: 8 threads, 8 connections — the thread client's range
        sync_result = replay_trace(RemoteGraphService.for_server(server),
                                   trace, target_qps=300.0, num_threads=8)

        # async arm: one event loop holding CONNECTIONS pooled connections
        async def go():
            async with AsyncRemoteGraphService.for_server(
                    server, max_connections=CONNECTIONS) as client:
                result = await replay_trace_async(
                    client, trace, target_qps=300.0,
                    warm_connections=CONNECTIONS,
                )
                return result, client.pool_stats()

        async_result, pool = asyncio.run(go())

        rows = [
            {"client": "sync (8 threads)", **sync_result.summary()},
            {"client": f"async ({CONNECTIONS} conns)", **async_result.summary()},
        ]
        print(format_table(rows, columns=["client", "served", "rejected",
                                          "achieved_qps", "num_connections",
                                          "p50_ms", "p95_ms", "p99_ms"]))
        print(f"\npool held        : {pool['peak_open_connections']} open connections "
              f"(peak in-flight {pool['peak_in_flight']})")
        same = async_result.answers() == sync_result.answers()
        print(f"answers identical: {same} ✓" if same else "ANSWERS DIVERGED ✗")
        assert same


if __name__ == "__main__":
    main()
