#!/usr/bin/env python3
"""Domain scenario: chemistry — substructure and superstructure screening.

Chemical databases answer two classic questions:

* *substructure search* (subgraph query): which compounds contain this
  functional group / scaffold?
* *superstructure search* (supergraph query): which fragment library members
  are contained in this target molecule?

This example runs both over GC, shows how a warm cache accelerates a
screening campaign in which chemists iterate on closely related scaffolds,
and persists the warm cache to disk so the next session starts hot.  It also
demonstrates SDF export of the synthetic dataset (the format the real AIDS
Antiviral Screen data ships in).

Run with:  python examples/chemistry_screening.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import GCConfig, GraphCacheSystem, QueryType, molecule_dataset
from repro.cache import restore_cache, save_cache
from repro.dashboard import format_table
from repro.graph import save_sdf_file
from repro.graph.operations import extend_graph, random_connected_subgraph


def main() -> None:
    rng = random.Random(1234)
    workdir = Path(tempfile.mkdtemp(prefix="gc-chem-"))

    # 1. the compound library (and its SDF export, as a real deployment would keep)
    library = molecule_dataset(120, min_vertices=15, max_vertices=45, rng=rng)
    sdf_path = workdir / "library.sdf"
    save_sdf_file(library, sdf_path)
    print(f"Compound library: {len(library)} molecules (SDF written to {sdf_path})")

    config = GCConfig(cache_capacity=40, window_size=1, replacement_policy="HD",
                      method="graphgrep-sx", method_options={"feature_size": 1})
    system = GraphCacheSystem(library, config)

    # 2. a screening campaign: a scaffold and several close variants
    scaffold = random_connected_subgraph(library[0], 10, rng=rng)
    variants = [random_connected_subgraph(scaffold, 7, rng=rng) for _ in range(3)]
    labels = sorted({label for graph in library for label in graph.label_set()})
    decorated = [extend_graph(scaffold, 2, labels=labels, rng=rng) for _ in range(2)]

    print("\nSubstructure screening campaign (subgraph queries):")
    rows = []
    for name, pattern in [("scaffold", scaffold), ("fragment A", variants[0]),
                          ("fragment B", variants[1]), ("fragment C", variants[2]),
                          ("decorated 1", decorated[0]), ("decorated 2", decorated[1]),
                          ("scaffold (re-run)", scaffold.copy())]:
        report = system.run_query(pattern.copy(), QueryType.SUBGRAPH)
        rows.append({
            "pattern": name,
            "|V|": pattern.num_vertices,
            "hits in library": len(report.answer),
            "C_M": len(report.method_candidates),
            "verified": len(report.verified_candidates),
            "cache hits": report.num_hits,
        })
    print(format_table(rows))

    # 3. superstructure search: which cached fragments are inside a target?
    target = library[0]
    report = system.run_query(target.copy(), QueryType.SUPERGRAPH)
    print(f"\nSuperstructure search for compound {target.graph_id}: "
          f"{len(report.answer)} library molecules are contained in it "
          f"({report.dataset_tests} sub-iso tests).")

    aggregate = system.aggregate()
    print(f"\nCampaign summary: hit ratio {aggregate.hit_ratio:.2f}, "
          f"{aggregate.total_dataset_tests} sub-iso tests with GC vs "
          f"{aggregate.total_baseline_tests} for Method M alone "
          f"({aggregate.test_speedup:.2f}x).")

    # 4. persist the warm cache so the next session starts hot
    snapshot = workdir / "warm_cache.json"
    saved = save_cache(system.cache, snapshot)
    fresh = GraphCacheSystem(library, config)
    restored = restore_cache(fresh.cache, snapshot)
    repeat = fresh.run_query(scaffold.copy(), QueryType.SUBGRAPH)
    print(f"\nPersisted {saved} cached queries to {snapshot}; a fresh session restored "
          f"{restored} of them and answered the scaffold query with "
          f"{repeat.dataset_tests} sub-iso tests (exact hit: "
          f"{repeat.exact_hit_entry is not None}).")


if __name__ == "__main__":
    main()
