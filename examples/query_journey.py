#!/usr/bin/env python3
"""Scenario I — The Query Journey (paper §3.2, Fig. 3), chemistry flavour.

Reproduces the demo's walk-through: a dataset of 100 molecule-like graphs, a
cache warmed with 50 previously executed queries, and then one new query
whose journey through GC is narrated step by step — the cache hits H and H',
Method M's candidate set C_M, the savings S and S', the reduced candidate set
C, the verification result R and the final answer A.

Run with:  python examples/query_journey.py
"""

from __future__ import annotations

import random

from repro import GCConfig, GraphCacheSystem, molecule_dataset
from repro.dashboard import QueryJourney, render_graph_svg
from repro.graph.operations import random_connected_subgraph
from repro.workload import WorkloadGenerator, WorkloadMix


def main() -> None:
    rng = random.Random(2018)

    # the demo's setup: 100 AIDS-like molecules, Method M = GraphGrepSX,
    # a cache holding 50 executed queries
    dataset = molecule_dataset(100, min_vertices=12, max_vertices=40, rng=rng)
    config = GCConfig(
        cache_capacity=50,
        window_size=10,
        replacement_policy="HD",
        method="graphgrep-sx",
        method_options={"feature_size": 1},   # a permissive filter, as in the demo
    )
    system = GraphCacheSystem(dataset, config)

    # warm the cache with 50 executed queries drawn from a fixed pattern pool
    generator = WorkloadGenerator(dataset, rng=rng)
    warmup_mix = WorkloadMix(
        repeat_fraction=0.2, shrink_fraction=0.35, extend_fraction=0.35,
        fresh_fraction=0.1, pool_size=25, min_pattern_vertices=6, max_pattern_vertices=12,
    )
    pool = generator.build_pattern_pool(warmup_mix)
    warmup = generator.generate(50, mix=warmup_mix, name="warmup", pattern_pool=pool)
    print("Warming the cache with 50 executed queries ...")
    system.warm_cache(list(warmup))
    print(f"Cache population: {len(system.cache)} cached queries\n")

    # the journey query: derived from one of the pool patterns the warmed
    # queries came from, so that both sub-case and super-case hits are likely
    base = max(pool, key=lambda graph: graph.num_vertices)
    query = random_connected_subgraph(base, max(5, base.num_vertices - 2), rng=rng)

    report = system.run_query(query, "subgraph")

    journey = QueryJourney(
        report,
        dataset_ids=[graph.graph_id for graph in dataset],
        cache_entry_ids=[entry.entry_id for entry in system.cache.entries()],
    )
    print(journey.render_text(columns=20))

    # also export the query pattern as an SVG, as the demo's automatic
    # visualisation would
    svg = render_graph_svg(query, title="The Query Journey pattern")
    out_path = "query_journey_pattern.svg"
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    print(f"\nQuery pattern drawing written to {out_path}")


if __name__ == "__main__":
    main()
