"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in environments whose setuptools/pip lack the
``wheel`` package needed for PEP 660 editable installs (offline boxes).
"""

from setuptools import setup

setup()
