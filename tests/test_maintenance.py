"""Tests for the concurrency substrate: RW lock, maintenance worker,
thread-safe cache/statistics, and the shared parallel verifier."""

from __future__ import annotations

import threading
import time

import pytest

from repro.cache import CacheMaintenanceWorker, StatisticsManager
from repro.cache.locks import ReadWriteLock
from repro.graph import molecule_dataset
from repro.methods import DirectSIMethod, ParallelVerifier
from repro.runtime import GCConfig, GraphCacheSystem
from tests.conftest import make_subgraph_queries


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # only passes if all 3 readers are in together

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order: list[str] = []
        writer_in = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                time.sleep(0.05)
                order.append("writer")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read_locked():
                order.append("reader")

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert order == ["writer", "reader"]

    def test_write_lock_is_exclusive(self):
        lock = ReadWriteLock()
        counter = {"value": 0}

        def bump():
            for _ in range(200):
                with lock.write_locked():
                    current = counter["value"]
                    counter["value"] = current + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert counter["value"] == 800


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(14, min_vertices=7, max_vertices=12, rng=23)


class TestAsyncMaintenance:
    def test_async_admissions_converge_to_sync_population(self, dataset):
        queries = make_subgraph_queries(dataset, 20, 6, seed=2)

        sync_system = GraphCacheSystem(dataset, GCConfig(window_size=4, cache_capacity=10))
        sync_system.run_queries([q.graph.copy() for q in queries])

        async_config = GCConfig(window_size=4, cache_capacity=10, async_maintenance=True)
        with GraphCacheSystem(dataset, async_config) as async_system:
            async_system.run_queries([q.graph.copy() for q in queries])
            async_system.cache.drain_maintenance()
            # same sequential order + drained queue => identical population
            sync_graphs = sorted(
                (e.graph.num_vertices, e.graph.num_edges) for e in sync_system.cache.entries()
            )
            async_graphs = sorted(
                (e.graph.num_vertices, e.graph.num_edges) for e in async_system.cache.entries()
            )
            assert async_graphs == sync_graphs
            stats = async_system.cache.maintenance.stats()
            assert stats.processed == stats.submitted > 0

    def test_offer_returns_none_in_async_mode(self, dataset):
        with GraphCacheSystem(
            dataset, GCConfig(window_size=1, cache_capacity=5, async_maintenance=True)
        ) as system:
            query = make_subgraph_queries(dataset, 1, 6, seed=3)[0]
            report = system.run_query(query)
            system.cache.drain_maintenance()
            assert report.answer is not None
            assert len(system.cache) >= 1  # window_size=1 admits immediately

    def test_flush_window_drains_first(self, dataset):
        with GraphCacheSystem(
            dataset, GCConfig(window_size=50, cache_capacity=50, async_maintenance=True)
        ) as system:
            for query in make_subgraph_queries(dataset, 5, 6, seed=4):
                system.run_query(query)
            system.cache.flush_window()
            assert len(system.cache) == 5

    def test_close_is_idempotent(self, dataset):
        system = GraphCacheSystem(
            dataset, GCConfig(window_size=1, cache_capacity=5, async_maintenance=True)
        )
        cache = system.cache
        worker = cache.maintenance
        system.close()
        assert not worker.alive
        system.close()  # second close is a no-op

        # a submit racing close() is applied synchronously, never lost
        from repro.cache import CacheEntry
        from repro.query_model import QueryType

        entry = CacheEntry(
            graph=dataset[0].copy(), query_type=QueryType.SUBGRAPH,
            answer=frozenset(), admitted_clock=0, observed_test_cost=0.0,
        )
        before = len(cache)
        worker.submit(entry, tests_performed=1)
        assert len(cache) == before + 1  # window_size=1 admits immediately

    def test_worker_survives_admission_errors(self):
        class FlakyCache:
            def __init__(self):
                self.applied = []

            def apply_offer(self, entry, tests_performed):
                if entry == "boom":
                    raise ValueError("kaboom")
                self.applied.append(entry)

        cache = FlakyCache()
        worker = CacheMaintenanceWorker(cache)
        worker.submit("boom", 1)
        worker.submit("ok", 1)
        worker.drain()  # must not hang even though one offer raised
        stats = worker.stats()
        assert stats.errors == 1
        assert "kaboom" in stats.last_error
        assert stats.processed == 2
        assert cache.applied == ["ok"]
        assert worker.alive
        worker.stop()

    def test_describe_reports_async_flag(self, dataset):
        with GraphCacheSystem(
            dataset, GCConfig(window_size=2, cache_capacity=5, async_maintenance=True)
        ) as system:
            assert system.cache.describe()["async_maintenance"] is True
        sync_system = GraphCacheSystem(dataset, GCConfig(window_size=2, cache_capacity=5))
        assert sync_system.cache.describe()["async_maintenance"] is False

    def test_hammer_concurrent_queries_async_maintenance(self, dataset):
        """Many threads querying while maintenance admits must not corrupt state."""
        queries = make_subgraph_queries(dataset, 48, 6, seed=5)
        with GraphCacheSystem(
            dataset,
            GCConfig(window_size=3, cache_capacity=9, max_workers=8, async_maintenance=True),
        ) as system:
            reports = system.run_queries_concurrent(queries, max_workers=8)
            assert len(reports) == 48
            assert all(report.answer is not None for report in reports)
            # cache invariants: population within capacity, index consistent
            assert len(system.cache) <= system.cache.capacity
            resident = set(system.cache.store.entry_ids())
            indexed = {entry.entry_id for entry in system.cache.query_index.entries()}
            assert indexed == resident


class TestStatisticsManager:
    def test_empty_manager_is_truthy(self):
        manager = StatisticsManager()
        assert bool(manager) is True
        assert len(manager) == 0

    def test_concurrent_records(self):
        from repro.cache.statistics import QueryRecord
        from repro.query_model import QueryType

        manager = StatisticsManager()

        def record_many(base: int):
            for offset in range(100):
                manager.record(
                    QueryRecord(query_id=base + offset, query_type=QueryType.SUBGRAPH)
                )

        threads = [threading.Thread(target=record_many, args=(i * 1000,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(manager) == 400
        assert manager.aggregate().num_queries == 400


class TestParallelVerifier:
    def test_threaded_equals_sequential(self, dataset):
        method = DirectSIMethod()
        method.build(dataset)
        query = make_subgraph_queries(dataset, 1, 6, seed=7)[0]
        candidates = method.graph_ids()

        sequential = method.verify_candidates(query.graph, candidates, query.query_type)
        method.verify_threads = 4
        assert method.verify_threads == 4
        threaded = method.verify_candidates(query.graph, candidates, query.query_type)
        method.parallel_verifier.close()

        assert threaded.answers == sequential.answers
        assert threaded.num_tests == sequential.num_tests == len(candidates)

    def test_pool_is_reused_across_batches(self):
        verifier = ParallelVerifier(threads=3)
        outcome_a = verifier.verify([1, 2, 3, 4], lambda gid: gid % 2 == 0)
        pool_a = verifier._pool
        outcome_b = verifier.verify([5, 6, 7, 8], lambda gid: gid % 2 == 0)
        assert verifier._pool is pool_a
        assert outcome_a.answers == {2, 4}
        assert outcome_b.answers == {6, 8}
        verifier.close()
        assert verifier._pool is None

    def test_thread_change_recreates_pool(self):
        verifier = ParallelVerifier(threads=2)
        verifier.verify([1, 2], lambda gid: True)
        assert verifier._pool is not None
        verifier.threads = 5
        assert verifier._pool is None
        assert verifier.threads == 5
        verifier.threads = 0  # clamped
        assert verifier.threads == 1

    def test_config_verify_threads_reaches_pool(self, dataset):
        system = GraphCacheSystem(
            dataset, GCConfig(verify_threads=3, window_size=2, cache_capacity=5)
        )
        assert system.method.verify_threads == 3
        assert system.method.parallel_verifier.threads == 3
