"""Envelope + protocol tests: v1→v2 round trips, negotiation, taxonomy.

Three invariants lock the service boundary:

* **serialisation is lossless** — every envelope survives
  ``to_wire`` → ``json`` → ``from_wire`` in both wire versions (hypothesis
  drives random graphs/metadata through the round trip);
* **v1 is auto-upgraded** — a legacy flat payload parses into the same
  :class:`QueryRequest` a v2 envelope does, and the server answers each
  client in the version it spoke;
* **the error taxonomy is exhaustive** — every exception class in
  :mod:`repro.errors` has exactly one row in ``ERROR_TABLE`` (adding an
  exception without classifying it fails here), codes are unique, no row is
  shadowed by an earlier superclass row, and typed exceptions survive the
  wire round trip with their structured attributes intact.
"""

from __future__ import annotations

import inspect
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import errors as errors_module
from repro.api.envelopes import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ErrorEnvelope,
    MetricsSnapshot,
    QueryRequest,
    QueryResponse,
    detect_version,
    negotiate_version,
    parse_request,
    parse_response,
)
from repro.api.taxonomy import ERROR_TABLE, UNKNOWN_CODE, rule_for
from repro.errors import (
    AdmissionRejectedError,
    GraphCacheError,
    ProtocolError,
    ServerClosedError,
    ServerError,
)
from repro.graph.graph import Graph
from repro.query_model import Query, QueryType


def small_graph(num_vertices: int = 4, graph_id=7) -> Graph:
    graph = Graph(graph_id=graph_id)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, label=f"L{vertex % 2}")
    for vertex in range(1, num_vertices):
        graph.add_edge(vertex - 1, vertex)
    return graph


# ---------------------------------------------------------------------- #
# request envelopes
# ---------------------------------------------------------------------- #
class TestQueryRequest:
    def test_v2_round_trip(self):
        request = QueryRequest(graph=small_graph(), query_type="supergraph",
                               metadata={"origin": "test"}, request_id="r-1")
        wire = json.loads(json.dumps(request.to_wire(2)))
        assert wire["version"] == 2 and wire["request_id"] == "r-1"
        parsed, version = parse_request(wire)
        assert version == 2
        assert parsed.request_id == "r-1"
        assert parsed.query_type is QueryType.SUPERGRAPH
        assert parsed.metadata == {"origin": "test"}
        assert parsed.graph.to_dict() == request.graph.to_dict()

    def test_v1_payload_auto_upgrades(self):
        """A legacy flat payload parses into the same envelope as v2."""
        request = QueryRequest(graph=small_graph(), metadata={"k": 1})
        v1, version = parse_request(json.loads(json.dumps(request.to_wire(1))))
        assert version == 1
        v2, _ = parse_request(request.to_wire(2))
        assert v1.graph.to_dict() == v2.graph.to_dict()
        assert v1.query_type is v2.query_type
        assert v1.metadata == v2.metadata
        assert v1.request_id is None  # v1 has no correlation ids

    def test_from_query_and_back(self):
        query = Query(graph=small_graph(), query_type=QueryType.SUBGRAPH,
                      metadata={"tag": "x"})
        request = QueryRequest.from_query(query, request_id=3)
        rebuilt = request.to_query()
        assert rebuilt.query_type is query.query_type
        assert rebuilt.metadata == {"tag": "x"}
        assert rebuilt.query_id != query.query_id  # fresh executable identity

    @pytest.mark.parametrize("payload,message", [
        ("not a dict", "JSON object"),
        ({"version": 3, "query": {}}, "unsupported protocol version"),
        ({"version": True, "query": {}}, "unsupported protocol version"),
        ({"version": 2}, "no 'query' object"),
        ({"version": 2, "query": {"query_type": "subgraph"}}, "no 'graph'"),
        ({"version": 2, "query": {"graph": {"vertices": []}},
          "request_id": ["no"]}, "request_id"),
        ({}, "no 'graph'"),
        ({"graph": {"vertices": [[0, "A"]], "edges": []},
          "query_type": "sideways"}, "unknown query type"),
        ({"graph": {"vertices": [[0, "A"]], "edges": []},
          "metadata": "nope"}, "'metadata'"),
    ])
    def test_malformed_requests_raise_protocol_error(self, payload, message):
        with pytest.raises(ProtocolError, match=message):
            parse_request(payload)


# ---------------------------------------------------------------------- #
# response envelopes
# ---------------------------------------------------------------------- #
class TestQueryResponse:
    def make_response(self, **overrides) -> QueryResponse:
        fields = dict(
            answer=frozenset({1, 5, "g9"}),
            query_id=12,
            query_type=QueryType.SUBGRAPH,
            hits={"exact": False, "sub": 2, "super": 0},
            tests={"dataset": 3, "baseline": 11, "probe": 4},
            stage_seconds={"filter": 0.001, "verify": 0.02},
            total_seconds=0.025,
            queue_seconds=0.004,
            batch_size=4,
            request_id="q-9",
        )
        fields.update(overrides)
        return QueryResponse(**fields)

    @pytest.mark.parametrize("version", SUPPORTED_VERSIONS)
    def test_round_trip(self, version):
        response = self.make_response(
            request_id=None if version == 1 else "q-9")
        wire = json.loads(json.dumps(response.to_wire(version)))
        assert detect_version(wire) == version
        parsed = QueryResponse.from_wire(wire)
        assert parsed == response

    def test_v1_shape_matches_legacy_protocol(self):
        """The v1 rendering is byte-compatible with the pre-envelope wire."""
        wire = self.make_response().to_wire(1)
        assert set(wire) == {"answer", "query_id", "query_type", "hits",
                             "tests", "stage_seconds", "total_seconds", "server"}
        assert wire["server"] == {"queue_seconds": 0.004, "batch_size": 4}
        assert "version" not in wire

    def test_parse_response_picks_the_right_envelope(self):
        ok = parse_response(self.make_response().to_wire(2))
        assert isinstance(ok, QueryResponse)
        err = parse_response(
            ErrorEnvelope.from_exception(ServerClosedError("draining")).to_wire(2))
        assert isinstance(err, ErrorEnvelope)
        assert err.code == "server-closed"


# ---------------------------------------------------------------------- #
# negotiation
# ---------------------------------------------------------------------- #
class TestNegotiation:
    def test_picks_highest_common(self):
        assert negotiate_version([1, 2]) == PROTOCOL_VERSION
        assert negotiate_version([1]) == 1
        assert negotiate_version([1, 2, 99]) == 2

    def test_no_common_version_raises(self):
        with pytest.raises(ProtocolError, match="no common protocol version"):
            negotiate_version([99])

    def test_detect_version_defaults_to_v1(self):
        assert detect_version({"graph": {}}) == 1
        assert detect_version({"version": 2, "query": {}}) == 2


# ---------------------------------------------------------------------- #
# the error taxonomy
# ---------------------------------------------------------------------- #
def library_exception_classes() -> list[type]:
    return [
        obj for obj in vars(errors_module).values()
        if inspect.isclass(obj) and issubclass(obj, GraphCacheError)
    ]


class TestTaxonomy:
    def test_table_is_exhaustive_over_repro_errors(self):
        """Every library exception class has its *own* row (not inherited)."""
        classified = {rule.exception for rule in ERROR_TABLE}
        missing = [cls.__name__ for cls in library_exception_classes()
                   if cls not in classified]
        assert not missing, (
            f"exception classes without a taxonomy row: {missing}; "
            "add them to repro.api.taxonomy.ERROR_TABLE"
        )

    def test_codes_are_unique(self):
        codes = [rule.code for rule in ERROR_TABLE]
        assert len(codes) == len(set(codes))

    def test_no_row_is_shadowed_by_an_earlier_superclass(self):
        """First-match lookup requires subclasses before their bases."""
        for later_index, later in enumerate(ERROR_TABLE):
            for earlier in ERROR_TABLE[:later_index]:
                assert not (
                    issubclass(later.exception, earlier.exception)
                    and later.exception is not earlier.exception
                ), (
                    f"{later.exception.__name__} (code {later.code!r}) is "
                    f"unreachable behind {earlier.exception.__name__}"
                )

    def test_rule_for_picks_most_specific(self):
        exc = AdmissionRejectedError(8, shard=2, estimated_cost_seconds=0.1)
        assert rule_for(exc).code == "admission-rejected"
        assert rule_for(ServerError("x")).code == "server"
        assert rule_for(GraphCacheError("x")).code == "internal"

    def test_admission_rejection_round_trips_with_shard_blame(self):
        """The 429 shard blame travels as structured details, not text."""
        original = AdmissionRejectedError(16, shard=3, estimated_cost_seconds=0.02)
        envelope = ErrorEnvelope.from_exception(original, request_id="r")
        assert envelope.code == "admission-rejected"
        assert envelope.http_status == 429 and envelope.retryable
        assert envelope.details["shard"] == 3
        assert envelope.details["queue_depth"] == 16

        for version in SUPPORTED_VERSIONS:
            wire = json.loads(json.dumps(envelope.to_wire(version)))
            parsed = ErrorEnvelope.from_wire(wire, http_status=429)
            rebuilt = parsed.to_exception()
            assert isinstance(rebuilt, AdmissionRejectedError)
            assert rebuilt.shard == 3
            assert rebuilt.queue_depth == 16
            assert rebuilt.estimated_cost_seconds == pytest.approx(0.02)
            assert str(rebuilt) == str(original)

    def test_v1_errors_recover_taxonomy_retryability(self):
        """A v1 wire error (bare message) must give the same retry advice as
        v2: backpressure/draining/timeout are retryable on both wires."""
        for status, expected in ((429, True), (503, True), (504, True),
                                 (400, False), (500, False)):
            envelope = ErrorEnvelope.from_wire({"error": "x"}, http_status=status)
            assert envelope.retryable is expected, (status, envelope.code)

    def test_v1_error_shape_is_legacy_compatible(self):
        wire = ErrorEnvelope.from_exception(
            AdmissionRejectedError(4, shard=1, estimated_cost_seconds=0.5)
        ).to_wire(1)
        assert set(wire) == {"error", "queue_depth", "shard",
                             "estimated_cost_seconds"}
        plain = ErrorEnvelope.from_exception(ProtocolError("bad")).to_wire(1)
        assert plain == {"error": "bad"}

    def test_every_code_reconstructs_its_class(self):
        for rule in ERROR_TABLE:
            envelope = ErrorEnvelope(code=rule.code, message="boom",
                                     http_status=rule.http_status)
            rebuilt = envelope.to_exception()
            assert isinstance(rebuilt, rule.exception), rule.code
            assert str(rebuilt) == "boom"

    def test_unknown_and_timeout_codes_degrade_to_server_error(self):
        assert isinstance(
            ErrorEnvelope(code=UNKNOWN_CODE, message="x").to_exception(), ServerError)
        assert isinstance(
            ErrorEnvelope.timeout("slow").to_exception(), ServerError)
        assert isinstance(
            ErrorEnvelope(code="never-heard-of-it", message="x").to_exception(),
            ServerError)

    def test_non_library_exception_classifies_as_unexpected(self):
        envelope = ErrorEnvelope.from_exception(RuntimeError("kaput"))
        assert envelope.code == UNKNOWN_CODE
        assert envelope.http_status == 500
        assert "RuntimeError" in envelope.message


# ---------------------------------------------------------------------- #
# metrics snapshot
# ---------------------------------------------------------------------- #
class TestMetricsSnapshot:
    def test_wire_round_trip(self):
        snapshot = MetricsSnapshot(
            statistics={"aggregate": {"num_queries": 3, "hit_ratio": 0.5}},
            hit_percentages=[0.0, 50.0],
            cache={"population": 2},
        )
        parsed = MetricsSnapshot.from_wire(json.loads(json.dumps(snapshot.to_wire())))
        assert parsed == snapshot
        assert parsed.aggregate["num_queries"] == 3

    def test_missing_statistics_rejected(self):
        with pytest.raises(ProtocolError):
            MetricsSnapshot.from_wire({"hit_percentages": []})


# ---------------------------------------------------------------------- #
# property test: serialisation survives arbitrary graphs and metadata
# ---------------------------------------------------------------------- #
vertex_labels = st.sampled_from(["A", "B", "C", ""])
json_values = st.one_of(st.integers(-1000, 1000), st.booleans(),
                        st.text(max_size=8), st.none())


@st.composite
def wire_graphs(draw) -> Graph:
    graph_id = draw(st.one_of(st.integers(0, 99), st.text(min_size=1, max_size=6)))
    graph = Graph(graph_id=graph_id)
    num_vertices = draw(st.integers(1, 8))
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, label=draw(vertex_labels))
    possible = [(u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)]
    for u, v in draw(st.lists(st.sampled_from(possible), unique=True, max_size=12)
                     if possible else st.just([])):
        graph.add_edge(u, v)
    return graph


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph=wire_graphs(),
       query_type=st.sampled_from(list(QueryType)),
       metadata=st.dictionaries(st.text(max_size=6), json_values, max_size=4),
       request_id=st.one_of(st.none(), st.integers(0, 999), st.text(min_size=1, max_size=8)),
       version=st.sampled_from(SUPPORTED_VERSIONS))
def test_request_envelope_serialisation_round_trips(graph, query_type, metadata,
                                                    request_id, version):
    request = QueryRequest(graph=graph, query_type=query_type,
                           metadata=metadata, request_id=request_id)
    wire = json.loads(json.dumps(request.to_wire(version)))  # must be JSON-safe
    parsed, parsed_version = parse_request(wire)
    assert parsed_version == version
    assert parsed.graph.to_dict() == graph.to_dict()
    assert parsed.query_type is query_type
    assert parsed.metadata == metadata
    assert parsed.request_id == (request_id if version >= 2 else None)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(answer=st.sets(st.one_of(st.integers(0, 999), st.text(min_size=1, max_size=6)),
                      max_size=10),
       hits=st.fixed_dictionaries({"exact": st.booleans(), "sub": st.integers(0, 9),
                                   "super": st.integers(0, 9)}),
       tests=st.fixed_dictionaries({"dataset": st.integers(0, 99),
                                    "baseline": st.integers(0, 99),
                                    "probe": st.integers(0, 99)}),
       stage_seconds=st.dictionaries(st.sampled_from(["filter", "probe", "verify"]),
                                     st.floats(0, 1, allow_nan=False), max_size=3),
       total=st.floats(0, 10, allow_nan=False),
       version=st.sampled_from(SUPPORTED_VERSIONS))
def test_response_envelope_serialisation_round_trips(answer, hits, tests,
                                                     stage_seconds, total, version):
    response = QueryResponse(
        answer=frozenset(answer), query_id=1, query_type=QueryType.SUBGRAPH,
        hits=hits, tests=tests, stage_seconds=stage_seconds, total_seconds=total,
    )
    wire = json.loads(json.dumps(response.to_wire(version)))
    parsed = QueryResponse.from_wire(wire)
    assert parsed.answer == frozenset(answer)
    assert parsed.hits == hits and parsed.tests == tests
    assert parsed.stage_seconds == stage_seconds
    assert parsed.total_seconds == pytest.approx(total)
