"""Unit tests for the VF2 subgraph isomorphism engine."""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError
from repro.graph import Graph, complete_graph, cycle_graph, path_graph
from repro.isomorphism import VF2Matcher


def verify_mapping(query: Graph, target: Graph, mapping: dict) -> None:
    """Check that a returned mapping really is a monomorphism."""
    assert len(set(mapping.values())) == len(mapping) == query.num_vertices
    for q_vertex, t_vertex in mapping.items():
        assert query.label(q_vertex) == target.label(t_vertex)
    for u, v in query.edges():
        assert target.has_edge(mapping[u], mapping[v])


class TestBasicMatching:
    def test_path_in_triangle(self, triangle):
        query = path_graph(["C", "O"])
        result = VF2Matcher().find_embedding(query, triangle)
        assert result.found
        verify_mapping(query, triangle, result.mapping)

    def test_missing_label_rejected(self, triangle):
        query = path_graph(["C", "S"])
        assert not VF2Matcher().is_subgraph(query, triangle)

    def test_query_larger_than_target_rejected(self, triangle):
        query = complete_graph(["C", "C", "O", "O"])
        assert not VF2Matcher().is_subgraph(query, triangle)

    def test_empty_query_always_matches(self, triangle):
        result = VF2Matcher().find_embedding(Graph(), triangle)
        assert result.found
        assert result.mapping == {}

    def test_exact_graph_matches_itself(self, square_with_tail):
        assert VF2Matcher().is_subgraph(square_with_tail, square_with_tail)

    def test_triangle_not_in_square(self):
        square = cycle_graph(["C", "C", "C", "C"])
        triangle = cycle_graph(["C", "C", "C"])
        assert not VF2Matcher().is_subgraph(triangle, square)

    def test_non_induced_semantics(self):
        # a path C-C-C embeds into a triangle even though the triangle has an
        # extra edge between the images of the path's endpoints
        path = path_graph(["C", "C", "C"])
        triangle = cycle_graph(["C", "C", "C"])
        assert VF2Matcher().is_subgraph(path, triangle)

    def test_induced_mode_rejects_extra_edges(self):
        path = path_graph(["C", "C", "C"])
        triangle = cycle_graph(["C", "C", "C"])
        assert not VF2Matcher(induced=True).is_subgraph(path, triangle)

    def test_disconnected_query(self):
        query = Graph()
        query.add_vertex(0, "C")
        query.add_vertex(1, "O")
        target = path_graph(["C", "N", "O"])
        assert VF2Matcher().is_subgraph(query, target)

    def test_mapping_is_reported(self, square_with_tail):
        query = path_graph(["O", "N"])
        result = VF2Matcher().find_embedding(query, square_with_tail)
        assert result.found
        verify_mapping(query, square_with_tail, result.mapping)


class TestEdgeLabels:
    def make_target(self) -> Graph:
        target = Graph()
        target.add_vertices([(0, "C"), (1, "C"), (2, "O")])
        target.add_edge(0, 1, "single")
        target.add_edge(1, 2, "double")
        return target

    def test_edge_label_respected(self):
        target = self.make_target()
        query = Graph()
        query.add_vertices([(0, "C"), (1, "O")])
        query.add_edge(0, 1, "double")
        assert VF2Matcher().is_subgraph(query, target)

    def test_wrong_edge_label_rejected(self):
        target = self.make_target()
        query = Graph()
        query.add_vertices([(0, "C"), (1, "O")])
        query.add_edge(0, 1, "single")
        assert not VF2Matcher().is_subgraph(query, target)

    def test_unlabelled_query_edge_matches_any(self):
        target = self.make_target()
        query = Graph()
        query.add_vertices([(0, "C"), (1, "O")])
        query.add_edge(0, 1)
        assert VF2Matcher().is_subgraph(query, target)


class TestEnumerationAndStats:
    def test_find_all_embeddings_count(self):
        # a C-C edge embeds into a C-triangle in 6 ways (3 edges x 2 directions)
        query = path_graph(["C", "C"])
        target = cycle_graph(["C", "C", "C"])
        embeddings = VF2Matcher().find_all_embeddings(query, target)
        assert len(embeddings) == 6

    def test_find_all_respects_limit(self):
        query = path_graph(["C", "C"])
        target = complete_graph(["C"] * 5)
        embeddings = VF2Matcher().find_all_embeddings(query, target, limit=3)
        assert len(embeddings) == 3

    def test_count_embeddings(self):
        query = path_graph(["C", "C"])
        target = cycle_graph(["C", "C", "C"])
        assert VF2Matcher().count_embeddings(query, target) == 6

    def test_stats_populated(self, square_with_tail):
        query = path_graph(["C", "C", "N"])
        result = VF2Matcher().find_embedding(query, square_with_tail)
        assert result.stats.states_visited > 0
        assert result.stats.elapsed_seconds >= 0.0

    def test_budget_enforced(self):
        query = complete_graph(["C"] * 6)
        target = complete_graph(["C"] * 10)
        with pytest.raises(BudgetExceededError):
            VF2Matcher(node_budget=3).find_embedding(query, target)

    def test_no_embeddings_empty_list(self, triangle):
        query = path_graph(["S", "S"])
        assert VF2Matcher().find_all_embeddings(query, triangle) == []
