"""Tests for the convenience graph constructors."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import (
    complete_graph,
    cycle_graph,
    graph_from_edges,
    path_graph,
    star_graph,
)


class TestPathGraph:
    def test_sizes(self):
        graph = path_graph(["C", "C", "O", "N"])
        assert graph.num_vertices == 4
        assert graph.num_edges == 3

    def test_single_vertex(self):
        graph = path_graph(["C"])
        assert graph.num_vertices == 1
        assert graph.num_edges == 0

    def test_labels_in_order(self):
        graph = path_graph(["C", "O"])
        assert graph.label(0) == "C"
        assert graph.label(1) == "O"


class TestCycleGraph:
    def test_sizes(self):
        graph = cycle_graph(["C", "C", "C", "O"])
        assert graph.num_vertices == 4
        assert graph.num_edges == 4

    def test_every_vertex_has_degree_two(self):
        graph = cycle_graph(["C"] * 6)
        assert all(graph.degree(v) == 2 for v in graph.vertices())

    def test_too_small_cycle_raises(self):
        with pytest.raises(GraphError):
            cycle_graph(["C", "O"])


class TestCompleteGraph:
    def test_edge_count(self):
        graph = complete_graph(["C"] * 5)
        assert graph.num_edges == 10

    def test_two_vertices(self):
        graph = complete_graph(["C", "O"])
        assert graph.num_edges == 1


class TestStarGraph:
    def test_structure(self):
        graph = star_graph("N", ["C", "C", "O"])
        assert graph.num_vertices == 4
        assert graph.num_edges == 3
        assert graph.degree(0) == 3
        assert graph.label(0) == "N"

    def test_no_leaves(self):
        graph = star_graph("N", [])
        assert graph.num_vertices == 1
        assert graph.num_edges == 0


class TestGraphFromEdges:
    def test_basic(self):
        graph = graph_from_edges([(0, 1), (1, 2)], labels={0: "C", 1: "O", 2: "N"})
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert graph.label(1) == "O"

    def test_unlabelled_vertices_get_empty_label(self):
        graph = graph_from_edges([(0, 1)])
        assert graph.label(0) == ""

    def test_isolated_vertices_from_labels(self):
        graph = graph_from_edges([(0, 1)], labels={0: "C", 1: "O", 5: "S"})
        assert graph.has_vertex(5)
        assert graph.degree(5) == 0

    def test_graph_id_propagated(self):
        graph = graph_from_edges([(0, 1)], graph_id=99)
        assert graph.graph_id == 99
