"""Unit tests for the core Graph data structure."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicateVertexError,
    EdgeNotFoundError,
    GraphError,
    VertexNotFoundError,
)
from repro.graph import Graph


class TestVertexOperations:
    def test_add_vertex_and_label(self):
        graph = Graph()
        graph.add_vertex(0, "C")
        assert graph.num_vertices == 1
        assert graph.label(0) == "C"

    def test_add_duplicate_vertex_raises(self):
        graph = Graph()
        graph.add_vertex(0, "C")
        with pytest.raises(DuplicateVertexError):
            graph.add_vertex(0, "O")

    def test_label_of_missing_vertex_raises(self):
        graph = Graph()
        with pytest.raises(VertexNotFoundError):
            graph.label(3)

    def test_set_label(self):
        graph = Graph()
        graph.add_vertex(0, "C")
        graph.set_label(0, "N")
        assert graph.label(0) == "N"

    def test_set_label_missing_vertex_raises(self):
        graph = Graph()
        with pytest.raises(VertexNotFoundError):
            graph.set_label(0, "N")

    def test_add_vertices_bulk(self):
        graph = Graph()
        graph.add_vertices([(0, "C"), (1, "O"), (2, "N")])
        assert graph.vertices() == [0, 1, 2]
        assert graph.label_set() == {"C", "O", "N"}

    def test_remove_vertex_removes_incident_edges(self):
        graph = Graph()
        graph.add_vertices([(0, "C"), (1, "O"), (2, "N")])
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.remove_vertex(1)
        assert graph.num_vertices == 2
        assert graph.num_edges == 0

    def test_remove_missing_vertex_raises(self):
        graph = Graph()
        with pytest.raises(VertexNotFoundError):
            graph.remove_vertex(9)

    def test_contains_and_len(self):
        graph = Graph()
        graph.add_vertex("a", "C")
        assert "a" in graph
        assert "b" not in graph
        assert len(graph) == 1

    def test_string_vertex_ids_supported(self):
        graph = Graph()
        graph.add_vertex("alice", "person")
        graph.add_vertex("bob", "person")
        graph.add_edge("alice", "bob")
        assert graph.has_edge("bob", "alice")


class TestEdgeOperations:
    def test_add_edge_both_directions(self):
        graph = Graph()
        graph.add_vertices([(0, "C"), (1, "O")])
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.num_edges == 1

    def test_add_edge_missing_endpoint_raises(self):
        graph = Graph()
        graph.add_vertex(0, "C")
        with pytest.raises(VertexNotFoundError):
            graph.add_edge(0, 1)

    def test_self_loop_rejected(self):
        graph = Graph()
        graph.add_vertex(0, "C")
        with pytest.raises(GraphError):
            graph.add_edge(0, 0)

    def test_duplicate_edge_is_idempotent(self):
        graph = Graph()
        graph.add_vertices([(0, "C"), (1, "O")])
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        assert graph.num_edges == 1

    def test_edge_labels(self):
        graph = Graph()
        graph.add_vertices([(0, "C"), (1, "O")])
        graph.add_edge(0, 1, "double")
        assert graph.edge_label(0, 1) == "double"
        assert graph.edge_label(1, 0) == "double"

    def test_edge_label_missing_edge_raises(self):
        graph = Graph()
        graph.add_vertices([(0, "C"), (1, "O")])
        with pytest.raises(EdgeNotFoundError):
            graph.edge_label(0, 1)

    def test_remove_edge(self):
        graph = Graph()
        graph.add_vertices([(0, "C"), (1, "O")])
        graph.add_edge(0, 1)
        graph.remove_edge(1, 0)
        assert graph.num_edges == 0
        assert not graph.has_edge(0, 1)

    def test_remove_missing_edge_raises(self):
        graph = Graph()
        graph.add_vertices([(0, "C"), (1, "O")])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(0, 1)

    def test_edges_listed_once(self):
        graph = Graph()
        graph.add_vertices([(0, "C"), (1, "O"), (2, "N")])
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert len(graph.edges()) == 2

    def test_degree_and_neighbors(self, triangle):
        assert triangle.degree(0) == 2
        assert triangle.neighbors(1) == {0, 2}

    def test_degree_sequence_sorted_descending(self, square_with_tail):
        assert square_with_tail.degree_sequence() == [3, 2, 2, 2, 1]


class TestStructure:
    def test_empty_graph_is_connected(self):
        assert Graph().is_connected()

    def test_connected_detection(self, triangle):
        assert triangle.is_connected()
        triangle.add_vertex(99, "S")
        assert not triangle.is_connected()
        assert len(triangle.connected_components()) == 2

    def test_bfs_order_starts_at_start(self, square_with_tail):
        order = square_with_tail.bfs_order(0)
        assert order[0] == 0
        assert set(order) == set(square_with_tail.vertices())

    def test_bfs_order_missing_start_raises(self, triangle):
        with pytest.raises(VertexNotFoundError):
            triangle.bfs_order(42)

    def test_subgraph_preserves_labels_and_edges(self, square_with_tail):
        sub = square_with_tail.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert sub.label(0) == "C"

    def test_subgraph_missing_vertex_raises(self, triangle):
        with pytest.raises(VertexNotFoundError):
            triangle.subgraph([0, 7])

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_relabel_vertices_default_dense(self, square_with_tail):
        relabelled = square_with_tail.relabel_vertices()
        assert set(relabelled.vertices()) == set(range(5))
        assert relabelled.num_edges == square_with_tail.num_edges

    def test_relabel_vertices_explicit_mapping(self, triangle):
        relabelled = triangle.relabel_vertices({0: "x", 1: "y", 2: "z"})
        assert relabelled.has_edge("x", "y")
        assert relabelled.label("z") == "O"

    def test_relabel_non_injective_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.relabel_vertices({0: "x", 1: "x", 2: "z"})


class TestHashingAndConversion:
    def test_wl_hash_isomorphic_graphs_match(self):
        first = Graph()
        first.add_vertices([(0, "C"), (1, "O"), (2, "N")])
        first.add_edge(0, 1)
        first.add_edge(1, 2)
        second = Graph()
        second.add_vertices([("b", "O"), ("c", "N"), ("a", "C")])
        second.add_edge("a", "b")
        second.add_edge("b", "c")
        assert first.wl_hash() == second.wl_hash()

    def test_wl_hash_differs_on_label_change(self, triangle):
        other = triangle.copy()
        other.set_label(2, "S")
        assert triangle.wl_hash() != other.wl_hash()

    def test_fingerprint_counts_labels(self, triangle):
        n, m, histogram = triangle.fingerprint()
        assert (n, m) == (3, 3)
        assert dict(histogram) == {"C": 2, "O": 1}

    def test_label_counts_and_edge_label_counts(self, triangle):
        assert triangle.label_counts()["C"] == 2
        assert triangle.edge_label_counts()[("C", "C")] == 1
        assert triangle.edge_label_counts()[("C", "O")] == 2

    def test_networkx_round_trip(self, square_with_tail):
        nx_graph = square_with_tail.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back.num_vertices == square_with_tail.num_vertices
        assert back.num_edges == square_with_tail.num_edges
        assert back.label(3) == "O"

    def test_dict_round_trip(self, square_with_tail):
        square_with_tail.add_edge(1, 3, "aromatic")
        payload = square_with_tail.to_dict()
        back = Graph.from_dict(payload)
        assert back.structural_equal(square_with_tail)

    def test_structural_equal_detects_difference(self, triangle):
        other = triangle.copy()
        other.remove_edge(0, 1)
        assert not triangle.structural_equal(other)

    def test_repr_contains_sizes(self, triangle):
        assert "|V|=3" in repr(triangle)
        assert "|E|=3" in repr(triangle)
