"""Differential correctness: short-circuit scatter ≡ full scatter ≡ direct.

The acceptance property of the short-circuit PR: on a ≥200-query seeded
mixed sub/supergraph workload, the scatter-gather engine with
``scatter_mode="short-circuit"`` (summary-driven shard pruning) returns
answer sets byte-identical to direct execution, the cached single system,
full scatter at the same shard count, and the served path — while actually
pruning (mean fan-out strictly below the shard count on this workload).
On a mismatch the harness's :func:`diff_short_circuit` names the shard
whose pruning was unsound, which the last test locks in on a synthetic
mismatch.
"""

from __future__ import annotations

import pytest

from repro.graph import molecule_dataset
from repro.workload import generate_trace

from tests.differential import (
    ArmResult,
    assert_answers_equal,
    diff_short_circuit,
    run_cached,
    run_direct,
    run_served,
    run_sharded,
)

SHARD_COUNTS = (2, 4)


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(16, min_vertices=7, max_vertices=13, rng=77)


@pytest.fixture(scope="module")
def workload(dataset):
    trace = generate_trace(dataset, 200, skew="zipfian", query_type="mixed", seed=13)
    assert len(trace) >= 200
    return trace


@pytest.fixture(scope="module")
def direct(dataset, workload):
    return run_direct(dataset, workload)


@pytest.fixture(scope="module")
def cached(dataset, workload):
    return run_cached(dataset, workload)


class TestShortCircuitEquivalence:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_short_circuit_matches_direct_cached_and_full(self, dataset, workload,
                                                          direct, cached, num_shards):
        full = run_sharded(dataset, workload, num_shards)
        short = run_sharded(dataset, workload, num_shards,
                            scatter_mode="short-circuit")
        assert_answers_equal(direct, short)
        assert_answers_equal(cached, short)
        assert_answers_equal(full, short)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_short_circuit_actually_prunes(self, dataset, workload, num_shards):
        """On the zipfian mixed trace the planner must skip real work:
        mean fan-out strictly below the shard count, with recorded reasons."""
        short = run_sharded(dataset, workload, num_shards,
                            scatter_mode="short-circuit")
        stats = short.scatter_stats
        assert stats is not None and stats["queries"] == len(workload)
        assert 0.0 < short.mean_fanout < num_shards
        assert stats["skipped_total"] > 0
        assert stats["summary_fallbacks"] == 0
        assert sum(stats["skip_reasons"].values()) == stats["skipped_total"]
        # every plan is consistent: targets + skipped partition the shards
        for plan in short.plans:
            targets = set(plan["targets"])
            skipped = {int(shard) for shard in plan["skipped"]}
            assert not (targets & skipped)
            assert targets | skipped == set(range(num_shards))

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_concurrent_short_circuit_matches_direct(self, dataset, workload,
                                                     direct, num_shards):
        """Per-shard worker pools + shard pruning must not change answers."""
        short = run_sharded(dataset, workload, num_shards,
                            concurrent_workers=4, scatter_mode="short-circuit")
        assert_answers_equal(direct, short)

    def test_short_circuit_never_creates_work(self, dataset, workload, direct):
        """Pruning can only remove candidate universes, never add them."""
        short = run_sharded(dataset, workload, 4, scatter_mode="short-circuit")
        assert short.aggregate.total_baseline_tests <= direct.aggregate.total_baseline_tests
        assert short.aggregate.total_dataset_tests <= direct.aggregate.total_dataset_tests


class TestServedShortCircuit:
    def test_served_short_circuit_matches_direct(self, dataset, workload, direct):
        """The full production path: sharded + short-circuit + batching +
        client concurrency behind the HTTP server."""
        served = run_served(dataset, workload, num_shards=2, num_threads=4,
                            max_batch_size=4, scatter_mode="short-circuit")
        assert_answers_equal(direct, served)

    def test_served_cost_admission_matches_direct(self, dataset, workload, direct):
        """Cost-based shard-aware admission with a sane budget must not
        change answers or drop queries on a modest closed-loop load."""
        served = run_served(dataset, workload, num_shards=2, num_threads=4,
                            max_batch_size=4, scatter_mode="short-circuit",
                            admission_mode="cost-based")
        assert_answers_equal(direct, served)


class TestShortCircuitBlameDiff:
    def _arm(self, answers, plans, shard_of, name="sc"):
        return ArmResult(name=name, answers=answers, plans=plans, shard_of=shard_of)

    def test_equal_arms_produce_no_diff(self):
        reference = ArmResult(name="ref", answers=[frozenset({"a", "b"})])
        short = self._arm([frozenset({"a", "b"})],
                          plans=[{"targets": [0], "skipped": {"1": "label-gap"}}],
                          shard_of={"a": 0, "b": 0})
        assert diff_short_circuit(reference, short) is None

    def test_unsound_pruning_names_the_shard_and_reason(self):
        reference = ArmResult(name="ref", answers=[frozenset({"a", "b"})])
        # "b" lives on shard 1, which the plan pruned: unsound
        short = self._arm([frozenset({"a"})],
                          plans=[{"targets": [0], "skipped": {"1": "feature-gap"}}],
                          shard_of={"a": 0, "b": 1})
        diff = diff_short_circuit(reference, short)
        assert diff is not None
        assert "shard 1 was pruned" in diff
        assert "'feature-gap'" in diff
        assert "UNSOUND PRUNING" in diff

    def test_non_pruning_loss_is_distinguished(self):
        reference = ArmResult(name="ref", answers=[frozenset({"a", "b"})])
        # "b" lives on shard 0 which WAS scattered to: not a planner bug
        short = self._arm([frozenset({"a"})],
                          plans=[{"targets": [0, 1], "skipped": {}}],
                          shard_of={"a": 0, "b": 0})
        diff = diff_short_circuit(reference, short)
        assert diff is not None
        assert "merge/execution bug, not pruning" in diff
        assert "UNSOUND" not in diff
