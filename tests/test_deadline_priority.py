"""Deadline- & priority-aware serving: EDF ordering, dead-work shedding,
streamed batches, hedged scatter.

The batcher's admission queue must spend every batch slot on the most
urgent work still worth doing: higher priority bands first, earliest
deadline first within a band, FIFO among peers.  Work that went dead while
queued — deadline expired, or the waiter's request timed out (the old
zombie-work 504 path) — is *shed* before execution: its future resolves
with the typed error (or a cancel), its cost reservation is released the
moment it dies, and both reasons are counted.  Hedged scatter must be
answer-equivalent to the unhedged plan.  All timing in these tests is
gated on events, not sleeps racing the dispatcher.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

import pytest

from repro.api.envelopes import QueryRequest, QueryResponse
from repro.api.remote import RemoteGraphService
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ProtocolError,
    WorkloadError,
)
from repro.graph import molecule_dataset
from repro.graph.graph import Graph
from repro.isomorphism.base import MatchResult, SubgraphMatcher
from repro.isomorphism.vf2 import VF2Matcher
from repro.methods import DirectSIMethod
from repro.query_model import Query
from repro.runtime import GCConfig, GraphCacheSystem
from repro.server import QueryServer, RequestBatcher
from repro.sharding.system import ShardedGraphCacheSystem
from repro.workload import (
    generate_trace,
    parse_priority_mix,
    with_serving_fields,
)


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(16, min_vertices=7, max_vertices=13, rng=77)


def wait_until(predicate, timeout: float = 10.0) -> bool:
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class GateMatcher(SubgraphMatcher):
    """VF2 behind a gate: blocks the dispatcher until the test releases it.

    ``entered`` fires when the first embedding test begins, so tests can
    build queue state *knowing* the head query is already executing.
    """

    name = "vf2+gate"

    def __init__(self) -> None:
        self._inner = VF2Matcher()
        self.entered = threading.Event()
        self.gate = threading.Event()

    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        self.entered.set()
        assert self.gate.wait(30), "test never released the gate"
        return self._inner.find_embedding(query, target)


class FailingMatcher(GateMatcher):
    """Gate matcher whose queries fail once released — a late pipeline error."""

    name = "vf2+gate+fail"

    def find_embedding(self, query: Graph, target: Graph) -> MatchResult:
        self.entered.set()
        assert self.gate.wait(30), "test never released the gate"
        raise RuntimeError("pipeline blew up after the waiter left")


def spy_on_execution(system) -> list:
    """Record each executed query's ``metadata['tag']`` in dispatch order."""
    executed: list = []
    original = system.run_queries_concurrent

    def recording(queries, *args, **kwargs):
        queries = list(queries)
        executed.extend(q.metadata.get("tag") for q in queries)
        return original(queries, *args, **kwargs)

    system.run_queries_concurrent = recording
    return executed


def tagged(dataset, tag: str) -> Query:
    return Query(graph=dataset[0].copy(), metadata={"tag": tag})


class TestQueueOrdering:
    def test_priority_bands_then_edf_then_fifo(self, dataset):
        """Dispatch order: priority desc, deadline asc within a band, FIFO."""
        matcher = GateMatcher()
        method = DirectSIMethod(verifier=matcher)
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5),
                              method=method) as system:
            executed = spy_on_execution(system)
            batcher = RequestBatcher(system, max_batch_size=1,
                                     max_delay_seconds=0.0, max_queue_depth=32)
            futures = [batcher.submit(tagged(dataset, "head"))]
            assert matcher.entered.wait(10)  # head is executing, queue is ours
            futures.append(batcher.submit(tagged(dataset, "low-late")))
            futures.append(batcher.submit(
                tagged(dataset, "low-soon"), deadline_seconds=30.0))
            futures.append(batcher.submit(tagged(dataset, "high"), priority=10))
            futures.append(batcher.submit(
                tagged(dataset, "mid"), deadline_seconds=60.0, priority=5))
            matcher.gate.set()
            for future in futures:
                future.result(timeout=30)
            batcher.close()
        assert executed == ["head", "high", "mid", "low-soon", "low-late"]

    def test_fifo_among_equal_priority_no_deadline(self, dataset):
        matcher = GateMatcher()
        method = DirectSIMethod(verifier=matcher)
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5),
                              method=method) as system:
            executed = spy_on_execution(system)
            batcher = RequestBatcher(system, max_batch_size=1,
                                     max_delay_seconds=0.0, max_queue_depth=32)
            futures = [batcher.submit(tagged(dataset, "head"))]
            assert matcher.entered.wait(10)
            tags = [f"q{i}" for i in range(5)]
            futures += [batcher.submit(tagged(dataset, tag)) for tag in tags]
            matcher.gate.set()
            for future in futures:
                future.result(timeout=30)
            batcher.close()
        assert executed == ["head"] + tags

    def test_envelope_carries_its_own_deadline_and_priority(self, dataset):
        """A v2 QueryRequest's fields apply without explicit kwargs."""
        matcher = GateMatcher()
        method = DirectSIMethod(verifier=matcher)
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5),
                              method=method) as system:
            executed = spy_on_execution(system)
            batcher = RequestBatcher(system, max_batch_size=1,
                                     max_delay_seconds=0.0, max_queue_depth=32)
            futures = [batcher.submit(tagged(dataset, "head"))]
            assert matcher.entered.wait(10)
            futures.append(batcher.submit(QueryRequest(
                graph=dataset[0].copy(), metadata={"tag": "background"})))
            futures.append(batcher.submit(QueryRequest(
                graph=dataset[0].copy(), metadata={"tag": "urgent"},
                priority=7, deadline_seconds=30.0)))
            matcher.gate.set()
            for future in futures:
                future.result(timeout=30)
            batcher.close()
        assert executed == ["head", "urgent", "background"]


class TestDeadlineShedding:
    def test_expired_entry_is_shed_not_executed(self, dataset):
        matcher = GateMatcher()
        method = DirectSIMethod(verifier=matcher)
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5),
                              method=method) as system:
            executed = spy_on_execution(system)
            batcher = RequestBatcher(system, max_batch_size=1,
                                     max_delay_seconds=0.0, max_queue_depth=32)
            head = batcher.submit(tagged(dataset, "head"))
            assert matcher.entered.wait(10)
            doomed = batcher.submit(tagged(dataset, "doomed"),
                                    deadline_seconds=0.05, priority=100)
            safe = batcher.submit(tagged(dataset, "safe"))
            time.sleep(0.15)  # the doomed deadline expires while queued
            matcher.gate.set()
            with pytest.raises(DeadlineExceededError) as excinfo:
                doomed.result(timeout=30)
            head.result(timeout=30)
            safe.result(timeout=30)
            stats = batcher.stats()
            batcher.close()
        # never reached the engine: highest priority, yet shed at batch build
        assert executed == ["head", "safe"]
        assert excinfo.value.deadline_seconds == pytest.approx(0.05)
        assert stats.shed_expired == 1 and stats.shed_abandoned == 0
        assert stats.shed == 1
        assert stats.to_dict()["shed"] == 1
        assert stats.served == 2

    def test_generous_deadline_serves_normally(self, dataset):
        with GraphCacheSystem(dataset,
                              GCConfig(cache_capacity=10, window_size=5)) as system:
            batcher = RequestBatcher(system, max_batch_size=2, max_queue_depth=32)
            future = batcher.submit(Query(graph=dataset[0].copy()),
                                    deadline_seconds=60.0, priority=3)
            served = future.result(timeout=30)
            stats = batcher.stats()
            batcher.close()
        assert dataset[0].graph_id in served.report.answer
        assert stats.shed == 0 and stats.served == 1


class TestZombieWorkRegression:
    """The 504 path: an abandoned waiter's entry must die cheaply."""

    def test_abandon_releases_cost_before_batch_completes(self, dataset):
        matcher = GateMatcher()
        matcher.gate.set()  # warm-up runs flow freely to observe real costs
        method = DirectSIMethod(verifier=matcher)
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5),
                              method=method) as system:
            batcher = RequestBatcher(system, max_batch_size=1,
                                     max_delay_seconds=0.0, max_queue_depth=32,
                                     admission_mode="cost-based",
                                     max_shard_cost_seconds=10.0)
            for _ in range(2):
                batcher.submit(Query(graph=dataset[1].copy())).result(timeout=30)
            matcher.gate.clear()
            matcher.entered.clear()
            head = batcher.submit(tagged(dataset, "head"))
            assert matcher.entered.wait(10)
            baseline = batcher.stats().shard_outstanding
            zombie = batcher.submit(tagged(dataset, "zombie"))
            reserved = batcher.stats().shard_outstanding
            assert sum(reserved.values()) >= sum(baseline.values())
            with pytest.raises(FutureTimeoutError):
                zombie.result(timeout=0.05)
            # the waiter gives up: the reservation must drop back to the
            # head's alone *immediately*, while the head batch still runs
            assert batcher.abandon(zombie) is True
            released = batcher.stats().shard_outstanding
            assert set(released) == set(baseline)
            for shard, cost in baseline.items():
                assert released[shard] == pytest.approx(cost)
            matcher.gate.set()
            head.result(timeout=30)
            assert wait_until(lambda: batcher.stats().shed_abandoned == 1)
            assert zombie.cancelled()
            stats = batcher.stats()
            batcher.close()
        assert stats.shard_outstanding == {}
        assert stats.shed == 1 and stats.served == 3

    def test_abandon_foreign_future_is_refused(self, dataset):
        with GraphCacheSystem(dataset,
                              GCConfig(cache_capacity=10, window_size=5)) as system:
            batcher = RequestBatcher(system, max_queue_depth=8)
            assert batcher.abandon(Future()) is False
            batcher.close()

    def test_abandoned_future_late_failure_is_logged(self, dataset, caplog):
        """Satellite: an abandoned entry that still fails leaves a trail."""
        matcher = FailingMatcher()
        method = DirectSIMethod(verifier=matcher)
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5),
                              method=method) as system:
            batcher = RequestBatcher(system, max_batch_size=1,
                                     max_delay_seconds=0.0, max_queue_depth=8)
            request = QueryRequest(graph=dataset[0].copy(), request_id="zombie-1")
            future = batcher.submit(request)
            assert matcher.entered.wait(10)  # already inside a batch
            with caplog.at_level(logging.WARNING, logger="repro.server.batcher"):
                assert batcher.abandon(future) is True
                matcher.gate.set()
                assert wait_until(lambda: future.done())
            batcher.close()
        assert "zombie-1" in caplog.text
        assert "failed later in the pipeline" in caplog.text

    def test_http_504_sheds_and_counts(self, dataset):
        """End to end: timed-out request → 504, entry shed, counters surface."""
        matcher = GateMatcher()
        method = DirectSIMethod(verifier=matcher)
        with QueryServer(dataset, GCConfig(cache_capacity=10, window_size=5),
                         method=method, max_batch_size=1, max_queue_depth=32,
                         request_timeout_seconds=30.0) as server:
            head_answer: list = []
            def run_head():
                client = RemoteGraphService.for_server(server)
                head_answer.append(client.run(dataset[0].copy()).answer)
            head = threading.Thread(target=run_head, daemon=True)
            head.start()
            assert matcher.entered.wait(10)
            client = RemoteGraphService.for_server(server)
            status, payload = client.send(QueryRequest(
                graph=dataset[1].copy(), request_id="urgent-q",
                deadline_seconds=0.2))
            assert status == 504
            assert payload["error"]["code"] == "timeout"
            assert payload["request_id"] == "urgent-q"
            # the typed client raises the reconstructed deadline error
            with pytest.raises(DeadlineExceededError):
                client.run(QueryRequest(graph=dataset[1].copy(),
                                        deadline_seconds=0.2))
            matcher.gate.set()
            head.join(timeout=30)
            assert head_answer and dataset[0].graph_id in head_answer[0]
            assert wait_until(
                lambda: client.stats()["batcher"]["shed"] >= 2)
            stats = client.stats()["batcher"]
            assert stats["shed_expired"] + stats["shed_abandoned"] == stats["shed"]
            text = client.metrics_text()
        assert "gc_server_shed_total" in text
        assert 'outcome="timeout"' in text


class TestStreamedBatch:
    def test_streamed_answers_match_sequential(self, dataset):
        trace = generate_trace(dataset, 24, skew="zipfian",
                               query_type="mixed", seed=13)
        with GraphCacheSystem(dataset, GCConfig(cache_capacity=25,
                                                window_size=5)) as system:
            clones = [Query(graph=q.graph.copy(), query_type=q.query_type)
                      for q in trace]
            reference = [frozenset(r.answer) for r in system.run_queries(clones)]
        with QueryServer(dataset, GCConfig(cache_capacity=25, window_size=5),
                         max_batch_size=4, max_queue_depth=256) as server:
            client = RemoteGraphService.for_server(server)
            result = client.run_batch_streamed(
                [Query(graph=q.graph.copy(), query_type=q.query_type)
                 for q in trace],
                deadline_seconds=60.0, priority=2)
            result.raise_first()
        answers = [frozenset(item.answer) for item in result.items]
        assert answers == reference
        assert all(isinstance(item, QueryResponse) for item in result.items)

    def test_stream_yields_every_index_exactly_once(self, dataset):
        trace = generate_trace(dataset, 12, skew="uniform", seed=5)
        with QueryServer(dataset, GCConfig(cache_capacity=10,
                                           window_size=5)) as server:
            client = RemoteGraphService.for_server(server)
            seen = [index for index, _ in client.stream_batch(
                [Query(graph=q.graph.copy(), query_type=q.query_type)
                 for q in trace])]
        assert sorted(seen) == list(range(len(trace)))

    def test_v1_client_cannot_stream(self, dataset):
        with QueryServer(dataset, GCConfig(cache_capacity=10,
                                           window_size=5)) as server:
            client = RemoteGraphService.for_server(server, protocol_version=1)
            with pytest.raises(ProtocolError):
                list(client.stream_batch([dataset[0].copy()]))

    def test_malformed_batch_payload_is_400(self, dataset):
        with QueryServer(dataset, GCConfig(cache_capacity=10,
                                           window_size=5)) as server:
            client = RemoteGraphService.for_server(server)
            status, payload = client._request("POST", "/batch", {"queries": []})
            assert status == 400
            assert payload["error"]["code"] == "protocol"


class TestHedgedScatter:
    def test_config_rejects_unknown_mode_and_bad_delay(self, dataset):
        with pytest.raises(ConfigurationError):
            GCConfig(scatter_hedge="always").validate()
        with pytest.raises(ConfigurationError):
            GCConfig(scatter_hedge="p95", hedge_delay_seconds=-0.1).validate()

    def test_hedged_answers_match_unhedged(self, dataset):
        trace = generate_trace(dataset, 30, skew="zipfian",
                               query_type="mixed", seed=21)
        plain = GCConfig(cache_capacity=25, window_size=5, num_shards=2)
        with ShardedGraphCacheSystem(dataset, plain) as system:
            clones = [Query(graph=q.graph.copy(), query_type=q.query_type)
                      for q in trace]
            reference = [frozenset(r.answer)
                         for r in system.run_queries_concurrent(clones,
                                                                max_workers=4)]
        hedged = GCConfig(cache_capacity=25, window_size=5, num_shards=2,
                          scatter_hedge="p95", hedge_delay_seconds=1e-6)
        with ShardedGraphCacheSystem(dataset, hedged) as system:
            clones = [Query(graph=q.graph.copy(), query_type=q.query_type)
                      for q in trace]
            reports = system.run_queries_concurrent(clones, max_workers=4)
            answers = [frozenset(r.answer) for r in reports]
            stats = system.hedge_stats()
            metrics = system.scatter_metrics()
        assert answers == reference
        # a 1µs delay makes virtually every shard a straggler — hedges fired
        assert stats["hedges_issued"] > 0
        assert stats["mode"] == "p95"
        assert stats["delay_seconds"] == pytest.approx(1e-6)
        assert metrics["hedging"]["hedges_issued"] == stats["hedges_issued"]

    def test_p95_delay_engages_after_enough_observations(self, dataset):
        config = GCConfig(cache_capacity=25, window_size=5, num_shards=2,
                          scatter_hedge="p95")
        trace = generate_trace(dataset, 12, skew="uniform",
                               query_type="mixed", seed=9)
        with ShardedGraphCacheSystem(dataset, config) as system:
            assert system.hedge_stats()["delay_seconds"] is None  # cold window
            for query in trace:
                system.run_query(Query(graph=query.graph.copy(),
                                       query_type=query.query_type))
            stats = system.hedge_stats()
        assert stats["observed_window"] >= 8
        assert stats["delay_seconds"] is not None
        assert stats["delay_seconds"] > 0.0

    def test_hedging_off_by_default(self, dataset):
        config = GCConfig(cache_capacity=10, window_size=5, num_shards=2)
        with ShardedGraphCacheSystem(dataset, config) as system:
            system.run_query(dataset[0].copy())
            stats = system.hedge_stats()
        assert stats["mode"] == "off"
        assert stats["delay_seconds"] is None
        assert stats["hedges_issued"] == 0


class TestServingWorkloadHelpers:
    def test_parse_priority_mix(self):
        assert parse_priority_mix("0:0.8,10:0.2") == [(0, 0.8), (10, 0.2)]
        assert parse_priority_mix("5") == [(5, 1.0)]  # weight defaults to 1
        for bad in ("", "a:1", "1:zero", "3:-2", "2:0"):
            with pytest.raises(WorkloadError):
                parse_priority_mix(bad)

    def test_with_serving_fields_passthrough(self, dataset):
        trace = generate_trace(dataset, 6, skew="uniform", seed=3)
        assert with_serving_fields(list(trace)) == list(trace)

    def test_with_serving_fields_is_deterministic(self, dataset):
        trace = generate_trace(dataset, 40, skew="uniform", seed=3)
        first = with_serving_fields(list(trace), deadline_seconds=1.5,
                                    priority_mix="0:0.8,10:0.2", seed=7)
        second = with_serving_fields(list(trace), deadline_seconds=1.5,
                                     priority_mix=[(0, 0.8), (10, 0.2)], seed=7)
        assert all(isinstance(r, QueryRequest) for r in first)
        assert [r.priority for r in first] == [r.priority for r in second]
        assert {r.priority for r in first} == {0, 10}
        assert all(r.deadline_seconds == 1.5 for r in first)
