"""Tests for the networkx-backed matcher and the matcher registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graph import Graph, cycle_graph, molecule_graph, path_graph
from repro.graph.operations import random_connected_subgraph
from repro.isomorphism import (
    MATCHERS,
    CountingMatcher,
    NetworkXMatcher,
    UllmannMatcher,
    VF2Matcher,
    make_matcher,
)


class TestNetworkXMatcher:
    def test_positive_match(self, triangle):
        assert NetworkXMatcher().is_subgraph(path_graph(["C", "O"]), triangle)

    def test_negative_match(self, triangle):
        assert not NetworkXMatcher().is_subgraph(path_graph(["S", "S"]), triangle)

    def test_empty_query(self, triangle):
        result = NetworkXMatcher().find_embedding(Graph(), triangle)
        assert result.found

    def test_mapping_direction_is_query_to_target(self, square_with_tail):
        query = path_graph(["N", "O"])
        result = NetworkXMatcher().find_embedding(query, square_with_tail)
        assert result.found
        for q_vertex, t_vertex in result.mapping.items():
            assert query.label(q_vertex) == square_with_tail.label(t_vertex)

    def test_enumeration(self):
        embeddings = NetworkXMatcher().find_all_embeddings(
            path_graph(["C", "C"]), cycle_graph(["C", "C", "C"])
        )
        assert len(embeddings) == 6

    def test_enumeration_limit(self):
        embeddings = NetworkXMatcher().find_all_embeddings(
            path_graph(["C", "C"]), cycle_graph(["C", "C", "C"]), limit=2
        )
        assert len(embeddings) == 2

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_with_vf2(self, seed):
        target = molecule_graph(14, rng=seed)
        query = random_connected_subgraph(target, 6, rng=seed + 7)
        assert NetworkXMatcher().is_subgraph(query, target)
        other = molecule_graph(8, rng=seed + 500)
        assert NetworkXMatcher().is_subgraph(other, target) == VF2Matcher().is_subgraph(
            other, target
        )


class TestRegistry:
    def test_all_registered(self):
        assert set(MATCHERS) == {"vf2", "ullmann", "networkx"}

    def test_make_matcher(self):
        assert isinstance(make_matcher("vf2"), VF2Matcher)
        assert isinstance(make_matcher("ullmann"), UllmannMatcher)
        assert isinstance(make_matcher("networkx"), NetworkXMatcher)

    def test_make_matcher_kwargs(self):
        matcher = make_matcher("vf2", node_budget=10)
        assert matcher.node_budget == 10

    def test_unknown_matcher_raises(self):
        with pytest.raises(ConfigurationError):
            make_matcher("nope")


class TestCountingMatcher:
    def test_counts_tests(self, triangle):
        counting = CountingMatcher(VF2Matcher())
        counting.is_subgraph(path_graph(["C", "O"]), triangle)
        counting.is_subgraph(path_graph(["S", "S"]), triangle)
        assert counting.tally.tests == 2
        assert counting.tally.positives == 1
        assert counting.tally.negatives == 1
        assert counting.tally.total_seconds >= 0.0

    def test_average_seconds(self, triangle):
        counting = CountingMatcher(VF2Matcher())
        assert counting.tally.average_seconds == 0.0
        counting.is_subgraph(path_graph(["C", "O"]), triangle)
        assert counting.tally.average_seconds >= 0.0

    def test_reset(self, triangle):
        counting = CountingMatcher(VF2Matcher())
        counting.is_subgraph(path_graph(["C", "O"]), triangle)
        counting.reset()
        assert counting.tally.tests == 0

    def test_snapshot_keys(self, triangle):
        counting = CountingMatcher(VF2Matcher())
        counting.is_subgraph(path_graph(["C", "O"]), triangle)
        snapshot = counting.tally.snapshot()
        assert {"tests", "positives", "negatives", "total_seconds"} <= set(snapshot)

    def test_enumeration_counted(self, triangle):
        counting = CountingMatcher(VF2Matcher())
        counting.find_all_embeddings(path_graph(["C", "O"]), triangle)
        assert counting.tally.tests == 1
        assert counting.tally.positives == 1
