"""Tests for the query model and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors
from repro.graph import path_graph
from repro.query_model import Query, QueryType


class TestQueryType:
    def test_parse_strings(self):
        assert QueryType.parse("subgraph") is QueryType.SUBGRAPH
        assert QueryType.parse("SUPERGRAPH") is QueryType.SUPERGRAPH

    def test_parse_enum_passthrough(self):
        assert QueryType.parse(QueryType.SUBGRAPH) is QueryType.SUBGRAPH

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            QueryType.parse("sideways")


class TestQuery:
    def test_defaults(self):
        query = Query(graph=path_graph(["C", "O"]))
        assert query.query_type is QueryType.SUBGRAPH
        assert query.num_vertices == 2
        assert query.num_edges == 1

    def test_query_ids_increase(self):
        first = Query(graph=path_graph(["C"]))
        second = Query(graph=path_graph(["C"]))
        assert second.query_id > first.query_id

    def test_string_query_type_coerced(self):
        query = Query(graph=path_graph(["C"]), query_type="supergraph")
        assert query.query_type is QueryType.SUPERGRAPH

    def test_repr(self):
        assert "subgraph" in repr(Query(graph=path_graph(["C", "O"])))


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.GraphError,
            errors.GraphFormatError,
            errors.IsomorphismError,
            errors.IndexError_,
            errors.MethodError,
            errors.CacheError,
            errors.WorkloadError,
            errors.ConfigurationError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, errors.GraphCacheError)

    def test_vertex_not_found_payload(self):
        error = errors.VertexNotFoundError(7)
        assert error.vertex == 7
        assert "7" in str(error)

    def test_unknown_policy_lists_alternatives(self):
        error = errors.UnknownPolicyError("FIFO", ["LRU", "HD"])
        assert "FIFO" in str(error)
        assert "LRU" in str(error)

    def test_unknown_method_message(self):
        error = errors.UnknownMethodError("x", ["direct-si"])
        assert "direct-si" in str(error)

    def test_budget_exceeded_payload(self):
        error = errors.BudgetExceededError(100)
        assert error.budget == 100
