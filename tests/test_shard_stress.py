"""Concurrency stress: hammer a 4-shard system from 8 threads.

Eight client threads pull queries off a shared cursor and fire them at one
:class:`ShardedGraphCacheSystem` (4 shards, async maintenance workers
running, per-shard verify pools live).  The assertions:

* **no deadlock** — every thread finishes within a hard timeout;
* **no dropped queries** — every query produces a report, and every report
  carries the correct answer (checked against a fresh sequential reference);
* **deterministic merged ordering** — ``run_queries_concurrent`` returns
  reports in submission order with identical answers on repeated runs.
"""

from __future__ import annotations

import threading

import pytest

from repro.graph import molecule_dataset
from repro.query_model import Query
from repro.runtime import GCConfig, GraphCacheSystem
from repro.sharding import ShardedGraphCacheSystem
from repro.workload import generate_trace

NUM_SHARDS = 4
NUM_THREADS = 8
JOIN_TIMEOUT_SECONDS = 120.0


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(20, min_vertices=6, max_vertices=12, rng=5)


@pytest.fixture(scope="module")
def trace(dataset):
    return generate_trace(dataset, 160, skew="zipfian", query_type="mixed", seed=3)


@pytest.fixture(scope="module")
def reference_answers(dataset, trace):
    with GraphCacheSystem(dataset, GCConfig(cache_capacity=20, window_size=5)) as system:
        clones = [Query(graph=q.graph.copy(), query_type=q.query_type) for q in trace]
        return [frozenset(report.answer) for report in system.run_queries(clones)]


def _clones(trace):
    return [Query(graph=q.graph.copy(), query_type=q.query_type) for q in trace]


def test_hammered_shards_no_deadlock_no_drops(dataset, trace, reference_answers):
    config = GCConfig(
        cache_capacity=20,
        window_size=5,
        num_shards=NUM_SHARDS,
        async_maintenance=True,  # maintenance workers run during the storm
        verify_threads=2,
    )
    queries = _clones(trace)
    answers: list[frozenset | None] = [None] * len(queries)
    failures: list[BaseException] = []
    cursor = iter(range(len(queries)))
    cursor_lock = threading.Lock()

    with ShardedGraphCacheSystem(dataset, config) as system:

        def worker() -> None:
            while True:
                with cursor_lock:
                    index = next(cursor, None)
                if index is None:
                    return
                try:
                    report = system.run_query(queries[index])
                    answers[index] = frozenset(report.answer)
                except BaseException as exc:  # pragma: no cover - failure path
                    failures.append(exc)

        threads = [
            threading.Thread(target=worker, name=f"stress-{i}", daemon=True)
            for i in range(NUM_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=JOIN_TIMEOUT_SECONDS)
        stuck = [thread.name for thread in threads if thread.is_alive()]
        assert not stuck, f"deadlock: threads still running: {stuck}"
        assert not failures, f"queries raised under stress: {failures[:3]}"

        # no dropped queries: every position produced an answer...
        dropped = [index for index, answer in enumerate(answers) if answer is None]
        assert not dropped, f"dropped queries at positions {dropped[:10]}"
        # ...every answer is correct despite arbitrary interleaving...
        assert answers == reference_answers
        # ...and the merged statistics saw exactly one record per query
        assert len(system.records()) == len(queries)

        # async maintenance settled: caches drained without hanging
        for cache in system.all_caches():
            cache.drain_maintenance()


def test_concurrent_batches_keep_submission_order(dataset, trace, reference_answers):
    """run_queries_concurrent merges deterministically: report i belongs to
    query i and answers are identical across independent runs."""
    config = GCConfig(
        cache_capacity=20, window_size=5, num_shards=NUM_SHARDS,
        async_maintenance=True,
    )
    runs = []
    for _ in range(2):
        queries = _clones(trace)
        with ShardedGraphCacheSystem(dataset, config) as system:
            reports = system.run_queries_concurrent(queries, max_workers=4)
            assert [report.query.query_id for report in reports] == [
                query.query_id for query in queries
            ]
            # merged statistics line up with the report list position-wise
            assert [record.query_id for record in system.records()] == [
                query.query_id for query in queries
            ]
            runs.append([frozenset(report.answer) for report in reports])
    assert runs[0] == runs[1] == reference_answers
