"""Tests for Method M implementations (filter-then-verify and plain SI)."""

from __future__ import annotations

import random

import pytest

from repro.errors import MethodError, UnknownMethodError
from repro.graph import molecule_dataset
from repro.graph.operations import extend_graph, random_connected_subgraph
from repro.isomorphism import UllmannMatcher, VF2Matcher
from repro.methods import (
    CTIndexMethod,
    DirectSIMethod,
    GraphGrepSXMethod,
    GrapesMethod,
    available_methods,
    make_method,
    register_method,
)
from repro.query_model import QueryType

ALL_METHOD_NAMES = ["direct-si", "graphgrep-sx", "grapes", "ct-index"]


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(18, min_vertices=8, max_vertices=14, rng=23)


@pytest.fixture(scope="module")
def reference_answers(dataset):
    """Ground-truth answers computed by brute force (direct SI)."""
    rng = random.Random(31)
    matcher = VF2Matcher()
    queries = []
    for _ in range(6):
        source = dataset[rng.randrange(len(dataset))]
        queries.append(random_connected_subgraph(source, 6, rng=rng))
    answers = [
        {g.graph_id for g in dataset if matcher.is_subgraph(q, g)} for q in queries
    ]
    return queries, answers


@pytest.mark.parametrize("name", ALL_METHOD_NAMES)
class TestMethodCorrectness:
    def test_subgraph_answers_match_reference(self, dataset, reference_answers, name):
        queries, answers = reference_answers
        method = make_method(name)
        method.build(dataset)
        for query, expected in zip(queries, answers):
            result = method.execute(query, QueryType.SUBGRAPH)
            assert result.answer == expected
            assert expected <= result.candidates

    def test_supergraph_answers(self, dataset, name):
        rng = random.Random(37)
        labels = sorted({label for g in dataset for label in g.label_set()})
        query = extend_graph(dataset[2], 4, labels=labels, rng=rng)
        matcher = VF2Matcher()
        expected = {g.graph_id for g in dataset if matcher.is_subgraph(g, query)}
        method = make_method(name)
        method.build(dataset)
        result = method.execute(query, QueryType.SUPERGRAPH)
        assert result.answer == expected

    def test_result_accounting(self, dataset, name):
        method = make_method(name)
        method.build(dataset)
        query = random_connected_subgraph(dataset[0], 5, rng=1)
        result = method.execute(query, QueryType.SUBGRAPH)
        assert result.num_subiso_tests == len(result.candidates)
        assert result.total_seconds >= result.verify_seconds >= 0.0

    def test_requires_build(self, dataset, name):
        method = make_method(name)
        query = random_connected_subgraph(dataset[0], 5, rng=2)
        with pytest.raises(MethodError):
            method.execute(query, QueryType.SUBGRAPH)

    def test_double_build_rejected(self, dataset, name):
        method = make_method(name)
        method.build(dataset)
        with pytest.raises(MethodError):
            method.build(dataset)

    def test_describe(self, dataset, name):
        method = make_method(name)
        method.build(dataset)
        description = method.describe()
        assert description["name"] == name
        assert description["dataset_size"] == len(dataset)


class TestFiltering:
    def test_ftv_filters_more_than_direct(self, dataset):
        direct = DirectSIMethod()
        ftv = GraphGrepSXMethod(feature_size=3)
        direct.build(dataset)
        ftv.build(dataset)
        rng = random.Random(41)
        query = random_connected_subgraph(dataset[4], 7, rng=rng)
        assert len(ftv.filter_candidates(query, "subgraph")) <= len(
            direct.filter_candidates(query, "subgraph")
        )
        assert len(direct.filter_candidates(query, "subgraph")) == len(dataset)

    def test_bigger_feature_size_filters_at_least_as_well(self, dataset):
        small = GrapesMethod(feature_size=1)
        large = GrapesMethod(feature_size=3)
        small.build(dataset)
        large.build(dataset)
        rng = random.Random(43)
        for _ in range(4):
            query = random_connected_subgraph(dataset[rng.randrange(len(dataset))], 6, rng=rng)
            assert large.filter_candidates(query, "subgraph") <= small.filter_candidates(
                query, "subgraph"
            )

    def test_bigger_feature_size_bigger_index(self, dataset):
        small = GrapesMethod(feature_size=2)
        large = GrapesMethod(feature_size=3)
        small.build(dataset)
        large.build(dataset)
        assert large.index_memory_bytes() > small.index_memory_bytes()

    def test_direct_si_has_no_index_memory(self, dataset):
        method = DirectSIMethod()
        method.build(dataset)
        assert method.index_memory_bytes() == 0

    def test_invalid_feature_sizes(self):
        with pytest.raises(MethodError):
            GraphGrepSXMethod(feature_size=0)
        with pytest.raises(MethodError):
            GrapesMethod(feature_size=0)
        with pytest.raises(MethodError):
            CTIndexMethod(num_bits=0)


class TestVerifierPluggability:
    def test_alternative_verifier(self, dataset):
        method = GraphGrepSXMethod(feature_size=2, verifier=UllmannMatcher())
        method.build(dataset)
        query = random_connected_subgraph(dataset[5], 6, rng=3)
        reference = DirectSIMethod()
        reference.build(dataset)
        assert method.execute(query, "subgraph").answer == reference.execute(
            query, "subgraph"
        ).answer

    def test_verifier_tally_accumulates(self, dataset):
        method = DirectSIMethod()
        method.build(dataset)
        query = random_connected_subgraph(dataset[6], 5, rng=4)
        method.execute(query, "subgraph")
        assert method.verifier.tally.tests == len(dataset)

    def test_dataset_graph_lookup(self, dataset):
        method = DirectSIMethod()
        method.build(dataset)
        assert method.dataset_graph(dataset[0].graph_id) is dataset[0]
        with pytest.raises(MethodError):
            method.dataset_graph("missing")


class TestRegistry:
    def test_builtins_available(self):
        assert set(ALL_METHOD_NAMES) <= set(available_methods())

    def test_make_method_kwargs(self):
        method = make_method("graphgrep-sx", feature_size=4)
        assert method.feature_size == 4

    def test_unknown_method(self):
        with pytest.raises(UnknownMethodError):
            make_method("nope")

    def test_register_custom_method(self, dataset):
        class MyMethod(DirectSIMethod):
            name = "my-method"

        register_method("my-method", MyMethod, overwrite=True)
        assert "my-method" in available_methods()
        method = make_method("my-method")
        method.build(dataset)
        assert method.dataset_size == len(dataset)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_method("direct-si", DirectSIMethod)
