"""Additional coverage: run-result summaries, report internals, edge cases."""

from __future__ import annotations

import pytest

from repro.cache.statistics import QueryRecord, StatisticsManager
from repro.graph import molecule_dataset, path_graph
from repro.query_model import Query, QueryType
from repro.runtime import GCConfig, GraphCacheSystem
from repro.runtime.report import QueryReport
from repro.workload import WorkloadGenerator, run_workload
from repro.workload.runner import WorkloadRunResult
from tests.conftest import make_subgraph_queries


@pytest.fixture(scope="module")
def small_system():
    dataset = molecule_dataset(12, min_vertices=8, max_vertices=12, rng=901)
    system = GraphCacheSystem(dataset, GCConfig(cache_capacity=8, window_size=2,
                                                method="direct-si"))
    return dataset, system


class TestWorkloadRunResult:
    def test_summary_fields(self, small_system):
        dataset, system = small_system
        workload = WorkloadGenerator(dataset, rng=902).generate(6, mix="uniform", name="w")
        result = run_workload(system, workload)
        summary = result.summary()
        assert summary["workload"] == "w"
        assert summary["method"] == "direct-si"
        assert summary["queries"] == 6
        assert summary["baseline_tests"] >= summary["dataset_tests"]
        assert result.test_speedup >= 1.0
        assert result.index_memory_bytes == 0  # direct SI has no index

    def test_empty_result_defaults(self):
        result = WorkloadRunResult(workload_name="x", policy="HD", method="direct-si")
        assert result.test_speedup == 1.0
        assert result.time_speedup == 1.0
        assert result.summary()["queries"] == 0


class TestQueryReportDetails:
    def test_num_hits_counts_all_kinds(self):
        query = Query(graph=path_graph(["C", "O"]), query_type=QueryType.SUBGRAPH)
        report = QueryReport(query=query, sub_hit_entries=[1, 2], super_hit_entries=[3],
                             exact_hit_entry=4)
        assert report.num_hits == 4

    def test_journey_speedup_field_matches_property(self):
        query = Query(graph=path_graph(["C", "O"]), query_type=QueryType.SUBGRAPH)
        report = QueryReport(query=query, baseline_tests=10, dataset_tests=5)
        assert report.journey()["test_speedup"] == report.test_speedup

    def test_zero_candidate_query_speedup_is_one(self):
        query = Query(graph=path_graph(["Zz", "Zz"]), query_type=QueryType.SUBGRAPH)
        report = QueryReport(query=query, baseline_tests=0, dataset_tests=0)
        assert report.test_speedup == 1.0
        assert report.tests_saved == 0

    def test_exact_hit_report_shape_end_to_end(self, small_system):
        dataset, system = small_system
        pattern = make_subgraph_queries(dataset, 1, 6, seed=903)[0]
        system.run_query(Query(graph=pattern.graph.copy(), query_type=QueryType.SUBGRAPH))
        if system.cache is not None:
            system.cache.flush_window()
        repeat = system.run_query(Query(graph=pattern.graph.copy(),
                                        query_type=QueryType.SUBGRAPH))
        if repeat.exact_hit_entry is not None:
            assert repeat.verified_candidates == set()
            assert repeat.answer == repeat.guaranteed_answers
            assert repeat.guaranteed_non_answers == (
                repeat.method_candidates - repeat.answer
            )


class TestStatisticsEdgeCases:
    def test_records_are_copies(self):
        manager = StatisticsManager()
        manager.record(QueryRecord(query_id=1, query_type=QueryType.SUBGRAPH))
        records = manager.records()
        records.append("sentinel")
        assert len(manager.records()) == 1

    def test_hit_percentage_population_rides_on_records(self):
        manager = StatisticsManager()
        manager.record(QueryRecord(query_id=1, query_type=QueryType.SUBGRAPH,
                                   sub_hits=1, cache_population=4))
        # a record that never observed a population falls back to denominator 1
        manager.record(QueryRecord(query_id=2, query_type=QueryType.SUBGRAPH, sub_hits=1))
        percentages = manager.per_record_hit_percentages()
        assert percentages[0] == pytest.approx(25.0)
        assert percentages[1] == pytest.approx(100.0)

    def test_window_summary_speedup_infinite_when_no_tests(self):
        manager = StatisticsManager()
        manager.record(QueryRecord(query_id=1, query_type=QueryType.SUBGRAPH,
                                   baseline_tests=5, dataset_tests=0, exact_hit=True))
        summary = manager.window_summaries(10)[0]
        assert summary["test_speedup"] == float("inf")
        assert summary["tests_saved"] == 5


class TestSystemPopulationTrace:
    def test_hit_percentages_use_population_at_query_time(self, small_system):
        dataset, _ = small_system
        system = GraphCacheSystem(dataset, GCConfig(cache_capacity=8, window_size=1,
                                                    method="direct-si"))
        queries = make_subgraph_queries(dataset, 4, 6, seed=904)
        for query in queries:
            system.run_query(query)
        percentages = system.hit_percentages()
        assert len(percentages) == 4
        # the first query runs against an empty cache: zero percent by definition
        assert percentages[0] == 0.0
