"""Tests for the workload model, generators and runner."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.graph import molecule_dataset
from repro.isomorphism import VF2Matcher
from repro.query_model import QueryType
from repro.runtime import GCConfig
from repro.workload import (
    STANDARD_MIXES,
    Workload,
    WorkloadGenerator,
    WorkloadMix,
    compare_methods,
    compare_policies,
    generate_standard_workloads,
    run_with_policy,
    run_workload,
)
from repro.runtime.system import GraphCacheSystem


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(15, min_vertices=8, max_vertices=14, rng=77)


class TestWorkloadMix:
    def test_fraction_normalisation(self):
        mix = WorkloadMix(repeat_fraction=2, shrink_fraction=1, extend_fraction=1, fresh_fraction=0)
        fractions = mix.normalised_fractions()
        assert sum(fractions) == pytest.approx(1.0)
        assert fractions[0] == pytest.approx(0.5)

    def test_all_zero_fractions_rejected(self):
        mix = WorkloadMix(repeat_fraction=0, shrink_fraction=0, extend_fraction=0, fresh_fraction=0)
        with pytest.raises(WorkloadError):
            mix.normalised_fractions()

    def test_standard_mixes_exist(self):
        assert {"uniform", "popular", "sub-heavy", "super-heavy", "drift", "fresh"} <= set(
            STANDARD_MIXES
        )


class TestWorkloadGenerator:
    def test_requires_dataset(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator([])

    def test_generates_requested_count(self, dataset):
        workload = WorkloadGenerator(dataset, rng=1).generate(25, mix="uniform")
        assert len(workload) == 25

    def test_negative_count_rejected(self, dataset):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(dataset, rng=1).generate(-1)

    def test_unknown_standard_mix_rejected(self, dataset):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(dataset, rng=1).generate(5, mix="bogus")

    def test_reproducible_with_seed(self, dataset):
        first = WorkloadGenerator(dataset, rng=9).generate(10, mix="popular")
        second = WorkloadGenerator(dataset, rng=9).generate(10, mix="popular")
        assert [q.graph.wl_hash() for q in first] == [q.graph.wl_hash() for q in second]

    def test_modes_recorded_in_metadata(self, dataset):
        workload = WorkloadGenerator(dataset, rng=2).generate(30, mix=WorkloadMix())
        modes = {query.metadata["mode"] for query in workload}
        assert modes <= {"repeat", "shrink", "extend", "fresh"}
        assert len(modes) >= 2

    def test_shrink_queries_are_subgraphs_of_pool_pattern(self, dataset):
        mix = WorkloadMix(repeat_fraction=0, shrink_fraction=1, extend_fraction=0, fresh_fraction=0)
        generator = WorkloadGenerator(dataset, rng=3)
        pool = generator.build_pattern_pool(mix)
        workload = generator.generate(8, mix=mix, pattern_pool=pool)
        matcher = VF2Matcher()
        for query in workload:
            base = pool[query.metadata["pool_index"]]
            assert matcher.is_subgraph(query.graph, base)

    def test_extend_queries_are_supergraphs_of_pool_pattern(self, dataset):
        mix = WorkloadMix(repeat_fraction=0, shrink_fraction=0, extend_fraction=1, fresh_fraction=0)
        generator = WorkloadGenerator(dataset, rng=4)
        pool = generator.build_pattern_pool(mix)
        workload = generator.generate(8, mix=mix, pattern_pool=pool)
        matcher = VF2Matcher()
        for query in workload:
            base = pool[query.metadata["pool_index"]]
            assert matcher.is_subgraph(base, query.graph)

    def test_supergraph_workload_type(self, dataset):
        mix = WorkloadMix(query_type=QueryType.SUPERGRAPH)
        workload = WorkloadGenerator(dataset, rng=5).generate(5, mix=mix)
        assert workload.query_types == {QueryType.SUPERGRAPH}

    def test_zipf_skews_towards_head_of_pool(self, dataset):
        mix = WorkloadMix(zipf_alpha=2.0, repeat_fraction=1, shrink_fraction=0,
                          extend_fraction=0, fresh_fraction=0, pool_size=10)
        workload = WorkloadGenerator(dataset, rng=6).generate(60, mix=mix)
        indices = [query.metadata["pool_index"] for query in workload]
        head_share = sum(1 for index in indices if index < 3) / len(indices)
        assert head_share > 0.5

    def test_standard_workloads_helper(self, dataset):
        workloads = generate_standard_workloads(dataset, 6, rng=7, names=["uniform", "drift"])
        assert set(workloads) == {"uniform", "drift"}
        assert all(len(w) == 6 for w in workloads.values())


class TestWorkloadSerialisation:
    def test_round_trip(self, dataset, tmp_path):
        workload = WorkloadGenerator(dataset, rng=8).generate(6, mix="uniform", name="demo")
        path = tmp_path / "workload.json"
        workload.save(path)
        restored = Workload.load(path)
        assert restored.name == "demo"
        assert len(restored) == len(workload)
        assert [q.graph.wl_hash() for q in restored] == [q.graph.wl_hash() for q in workload]

    def test_summary(self, dataset):
        workload = WorkloadGenerator(dataset, rng=9).generate(5, mix="uniform")
        summary = workload.summary()
        assert summary["num_queries"] == 5
        assert "avg_vertices" in summary

    def test_from_dict_requires_queries(self):
        with pytest.raises(WorkloadError):
            Workload.from_dict({"name": "x"})

    def test_empty_workload_summary(self):
        assert Workload(name="empty").summary()["num_queries"] == 0


class TestRunner:
    @pytest.fixture(scope="class")
    def workload(self, dataset):
        return WorkloadGenerator(dataset, rng=10).generate(12, mix="popular")

    def test_run_workload(self, dataset, workload):
        system = GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=2))
        result = run_workload(system, workload)
        assert result.aggregate.num_queries == len(workload)
        assert len(result.reports) == len(workload)
        assert result.policy == "HD"
        summary = result.summary()
        assert summary["queries"] == len(workload)

    def test_run_with_policy_and_warmup(self, dataset, workload):
        warmup = WorkloadGenerator(dataset, rng=11).generate(4, mix="uniform")
        result = run_with_policy(
            dataset, workload, "LRU", config=GCConfig(cache_capacity=8, window_size=2),
            warmup=warmup,
        )
        assert result.policy == "LRU"
        assert result.aggregate.num_queries == len(workload)

    def test_compare_policies_same_answers(self, dataset, workload):
        results = compare_policies(
            dataset, workload, ["LRU", "HD"], config=GCConfig(cache_capacity=8, window_size=2)
        )
        assert set(results) == {"LRU", "HD"}
        answers_lru = [sorted(report.answer) for report in results["LRU"].reports]
        answers_hd = [sorted(report.answer) for report in results["HD"].reports]
        assert answers_lru == answers_hd

    def test_compare_methods_gc_never_worse_in_tests(self, dataset, workload):
        results = compare_methods(
            dataset,
            workload,
            ["direct-si"],
            config=GCConfig(cache_capacity=10, window_size=2),
        )
        baseline = results["direct-si"]["baseline"].aggregate
        with_gc = results["direct-si"]["gc"].aggregate
        assert with_gc.total_dataset_tests <= baseline.total_dataset_tests
        # identical answers in both arms
        for base_report, gc_report in zip(
            results["direct-si"]["baseline"].reports, results["direct-si"]["gc"].reports
        ):
            assert base_report.answer == gc_report.answer
