"""Tests for the graphcache command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph import load_dataset, load_sdf_file, molecule_dataset
from repro.runtime import GCConfig
from repro.server import QueryServer
from repro.workload import Workload


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "graphcache" in capsys.readouterr().out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-workload", "--policy", "BOGUS"])


class TestGenerateDataset:
    def test_transaction_output(self, tmp_path, capsys):
        output = tmp_path / "data.txt"
        assert main(["generate-dataset", str(output), "--count", "5", "--seed", "1"]) == 0
        assert "wrote 5" in capsys.readouterr().out
        assert len(load_dataset(output)) == 5

    def test_json_output(self, tmp_path):
        output = tmp_path / "data.json"
        assert main(["generate-dataset", str(output), "--count", "4"]) == 0
        assert len(load_dataset(output)) == 4

    def test_sdf_output(self, tmp_path):
        output = tmp_path / "data.sdf"
        assert main(["generate-dataset", str(output), "--count", "3", "--kind", "molecule"]) == 0
        assert len(load_sdf_file(output)) == 3


class TestRunCommands:
    def test_run_workload_synthetic(self, capsys):
        code = main([
            "run-workload", "--dataset-size", "20", "--queries", "8",
            "--cache-capacity", "10", "--window-size", "2", "--seed", "3",
            "--feature-size", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "The Workload Run" in out
        assert "Developer Monitor" in out

    def test_run_workload_from_file(self, tmp_path, capsys):
        dataset_path = tmp_path / "data.json"
        main(["generate-dataset", str(dataset_path), "--count", "15", "--seed", "4"])
        capsys.readouterr()
        code = main([
            "run-workload", "--dataset", str(dataset_path), "--queries", "6",
            "--cache-capacity", "8", "--window-size", "2", "--seed", "5",
        ])
        assert code == 0
        assert "The Workload Run" in capsys.readouterr().out

    def test_compare_policies(self, capsys):
        code = main([
            "compare-policies", "--dataset-size", "15", "--queries", "8",
            "--cache-capacity", "8", "--window-size", "2", "--seed", "6",
            "--policies", "LRU", "HD", "--feature-size", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "LRU" in out and "HD" in out
        assert "test_speedup" in out

    def test_journey(self, capsys):
        code = main([
            "journey", "--dataset-size", "20", "--warm-queries", "10",
            "--cache-capacity", "10", "--window-size", "2", "--seed", "7",
            "--query-vertices", "6", "--feature-size", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "The Query Journey" in out
        assert "Answer Set" in out

    def test_run_workload_sharded(self, capsys):
        code = main([
            "run-workload", "--dataset-size", "20", "--queries", "8",
            "--cache-capacity", "10", "--window-size", "2", "--seed", "3",
            "--feature-size", "1", "--shards", "2", "--shard-policy", "round-robin",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "The Workload Run" in out
        assert "Developer Monitor" in out
        # scatter-gather merge time shows up in the stage latency table
        assert "merge" in out

    def test_unknown_shard_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-workload", "--shard-policy", "BOGUS"])


class TestServeCommand:
    def test_serve_for_duration_and_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "snapshot.json"
        code = main([
            "serve", "--dataset-size", "10", "--port", "0", "--duration", "0.2",
            "--cache-capacity", "8", "--window-size", "2", "--seed", "3",
            "--feature-size", "1", "--snapshot-path", str(snapshot),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 10 graphs at http://127.0.0.1:" in out
        assert "drained" in out
        assert snapshot.exists()  # saved even when no queries arrived

    def test_serve_restores_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "snapshot.json"
        dataset = molecule_dataset(10, min_vertices=7, max_vertices=12, rng=2018)
        with QueryServer(dataset, GCConfig(cache_capacity=8, window_size=2),
                         snapshot_path=snapshot) as server:
            from repro.workload import QueryServerClient

            client = QueryServerClient.for_server(server)
            for graph in dataset[:6]:
                client.run_query(graph.copy())
        assert snapshot.exists()
        code = main([
            "serve", "--dataset-size", "10", "--port", "0", "--duration", "0.1",
            "--cache-capacity", "8", "--window-size", "2", "--seed", "2018",
            "--feature-size", "1", "--snapshot-path", str(snapshot),
        ])
        assert code == 0
        assert "warm-started" in capsys.readouterr().out

    def test_serve_sharded_snapshot_fans_out(self, tmp_path, capsys):
        snapshot = tmp_path / "snapshot.json"
        code = main([
            "serve", "--dataset-size", "10", "--port", "0", "--duration", "0.2",
            "--cache-capacity", "8", "--window-size", "2", "--seed", "3",
            "--feature-size", "1", "--snapshot-path", str(snapshot),
            "--shards", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shards=2/hash" in out
        assert snapshot.exists()  # the manifest
        assert (tmp_path / "snapshot-shard0.json").exists()
        assert (tmp_path / "snapshot-shard1.json").exists()


class TestLoadgenCommand:
    @pytest.fixture()
    def server(self):
        dataset = molecule_dataset(10, min_vertices=7, max_vertices=12, rng=2018)
        with QueryServer(dataset, GCConfig(cache_capacity=10, window_size=2)) as srv:
            yield srv

    def test_loadgen_generated_trace(self, server, capsys):
        code = main([
            "loadgen", "--port", str(server.port), "--dataset-size", "10",
            "--queries", "12", "--skew", "zipfian", "--threads", "2", "--seed", "9",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved_qps" in out and "p99_ms" in out

    def test_loadgen_save_and_replay_trace(self, server, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main([
            "loadgen", "--port", str(server.port), "--dataset-size", "10",
            "--queries", "10", "--save-trace", str(trace_path), "--threads", "2",
            "--seed", "9",
        ])
        assert code == 0
        assert len(Workload.load(trace_path)) == 10
        capsys.readouterr()
        code = main([
            "loadgen", "--port", str(server.port), "--trace", str(trace_path),
            "--threads", "2", "--qps", "500",
        ])
        assert code == 0
        assert "served" in capsys.readouterr().out

    def test_loadgen_fails_fast_without_server(self):
        with pytest.raises(Exception):
            main(["loadgen", "--port", "1", "--dataset-size", "10", "--queries", "2"])
