"""Shared fixtures for the GC reproduction test-suite."""

from __future__ import annotations

import random

import pytest

from repro.graph import Graph, molecule_dataset, path_graph
from repro.graph.operations import random_connected_subgraph
from repro.query_model import Query, QueryType


@pytest.fixture(scope="session")
def small_dataset() -> list[Graph]:
    """A small molecule-like dataset shared (read-only) across tests."""
    return molecule_dataset(25, min_vertices=8, max_vertices=18, rng=42)


@pytest.fixture(scope="session")
def tiny_dataset() -> list[Graph]:
    """An even smaller dataset for the expensive integration tests."""
    return molecule_dataset(12, min_vertices=6, max_vertices=12, rng=11)


@pytest.fixture()
def rng() -> random.Random:
    """A deterministic RNG, fresh per test."""
    return random.Random(1234)


@pytest.fixture()
def triangle() -> Graph:
    """A labelled triangle C-C-O."""
    graph = Graph(graph_id="triangle")
    graph.add_vertex(0, "C")
    graph.add_vertex(1, "C")
    graph.add_vertex(2, "O")
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 0)
    return graph


@pytest.fixture()
def square_with_tail() -> Graph:
    """A 4-cycle C-C-N-O with a C tail attached to vertex 0."""
    graph = Graph(graph_id="square")
    for vertex, label in enumerate(["C", "C", "N", "O", "C"]):
        graph.add_vertex(vertex, label)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(3, 0)
    graph.add_edge(0, 4)
    return graph


@pytest.fixture()
def co_path() -> Graph:
    """A two-vertex C-O path (the smallest interesting query)."""
    return path_graph(["C", "O"])


def make_subgraph_queries(
    dataset: list[Graph], count: int, size: int, seed: int = 5
) -> list[Query]:
    """Helper used by several test modules: extract query patterns."""
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        source = dataset[rng.randrange(len(dataset))]
        k = min(size, source.num_vertices)
        queries.append(
            Query(
                graph=random_connected_subgraph(source, k, rng=rng),
                query_type=QueryType.SUBGRAPH,
            )
        )
    return queries
