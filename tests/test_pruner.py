"""Tests for the Candidate Set Pruner (the S / S' / C logic of Fig. 3)."""

from __future__ import annotations

import pytest

from repro.cache import CacheEntry, CandidateSetPruner
from repro.graph import molecule_graph
from repro.query_model import QueryType


def entry(answer, seed=0, query_type=QueryType.SUBGRAPH) -> CacheEntry:
    return CacheEntry(
        graph=molecule_graph(5, rng=seed), query_type=query_type, answer=frozenset(answer)
    )


@pytest.fixture()
def pruner() -> CandidateSetPruner:
    return CandidateSetPruner()


class TestSubgraphQuerySemantics:
    def test_sub_hit_yields_guaranteed_answers(self, pruner):
        candidates = set(range(10))
        sub_hit = entry({1, 2, 3})
        result = pruner.prune(QueryType.SUBGRAPH, candidates, [sub_hit], [])
        assert result.guaranteed_answers == {1, 2, 3}
        assert result.remaining_candidates == candidates - {1, 2, 3}
        assert result.guaranteed_non_answers == set()

    def test_super_hit_prunes_to_its_answer(self, pruner):
        candidates = set(range(10))
        super_hit = entry({0, 1, 2, 3, 4})
        result = pruner.prune(QueryType.SUBGRAPH, candidates, [], [super_hit])
        assert result.guaranteed_non_answers == {5, 6, 7, 8, 9}
        assert result.remaining_candidates == {0, 1, 2, 3, 4}

    def test_multiple_super_hits_intersect(self, pruner):
        candidates = set(range(10))
        first = entry({0, 1, 2, 3, 4}, seed=1)
        second = entry({3, 4, 5, 6}, seed=2)
        result = pruner.prune(QueryType.SUBGRAPH, candidates, [], [first, second])
        assert result.remaining_candidates == {3, 4}

    def test_multiple_sub_hits_union(self, pruner):
        candidates = set(range(10))
        first = entry({1, 2}, seed=3)
        second = entry({2, 3}, seed=4)
        result = pruner.prune(QueryType.SUBGRAPH, candidates, [first, second], [])
        assert result.guaranteed_answers == {1, 2, 3}

    def test_combined_sub_and_super(self, pruner):
        candidates = set(range(10))
        sub_hit = entry({1, 2}, seed=5)
        super_hit = entry({1, 2, 3, 4, 5}, seed=6)
        result = pruner.prune(QueryType.SUBGRAPH, candidates, [sub_hit], [super_hit])
        assert result.guaranteed_answers == {1, 2}
        assert result.remaining_candidates == {3, 4, 5}
        assert result.guaranteed_non_answers == {0, 6, 7, 8, 9}
        # the three sets partition C_M (plus guaranteed answers within it)
        union = (
            result.guaranteed_answers & candidates
        ) | result.guaranteed_non_answers | result.remaining_candidates
        assert union == candidates

    def test_tests_saved(self, pruner):
        candidates = set(range(20))
        super_hit = entry(set(range(5)), seed=7)
        result = pruner.prune(QueryType.SUBGRAPH, candidates, [], [super_hit])
        assert result.tests_saved == 15

    def test_per_hit_savings_attribution(self, pruner):
        candidates = set(range(10))
        sub_hit = entry({1, 2, 3}, seed=8)
        super_hit = entry({0, 1, 2, 3, 4}, seed=9)
        result = pruner.prune(QueryType.SUBGRAPH, candidates, [sub_hit], [super_hit])
        assert result.per_hit_savings[sub_hit.entry_id] == 3
        assert result.per_hit_savings[super_hit.entry_id] == 5

    def test_no_hits_everything_remains(self, pruner):
        candidates = {1, 2, 3}
        result = pruner.prune(QueryType.SUBGRAPH, candidates, [], [])
        assert result.remaining_candidates == candidates
        assert result.tests_saved == 0


class TestSupergraphQuerySemantics:
    def test_roles_flip_for_supergraph_queries(self, pruner):
        candidates = set(range(10))
        # for supergraph queries the SUPER case yields guarantees...
        super_hit = entry({1, 2}, seed=10, query_type=QueryType.SUPERGRAPH)
        result = pruner.prune(QueryType.SUPERGRAPH, candidates, [], [super_hit])
        assert result.guaranteed_answers == {1, 2}
        # ...and the SUB case prunes
        sub_hit = entry({0, 1, 2, 3}, seed=11, query_type=QueryType.SUPERGRAPH)
        result = pruner.prune(QueryType.SUPERGRAPH, candidates, [sub_hit], [])
        assert result.guaranteed_non_answers == set(range(4, 10))

    def test_string_query_type_accepted(self, pruner):
        result = pruner.prune("supergraph", {1, 2}, [], [entry({1}, seed=12)])
        assert result.guaranteed_answers == {1}


class TestExactHit:
    def test_exact_hit_answers_without_verification(self, pruner):
        candidates = set(range(8))
        exact = entry({2, 5}, seed=13)
        result = pruner.exact_hit_result(candidates, exact)
        assert result.guaranteed_answers == {2, 5}
        assert result.remaining_candidates == set()
        assert result.guaranteed_non_answers == candidates - {2, 5}
        assert result.per_hit_savings[exact.entry_id] == len(candidates)
        assert result.tests_saved == len(candidates)
