"""Property-based tests: short-circuit scatter soundness and cost model.

Three families of properties lock the planner down:

* **Pruning soundness** — a shard the :class:`ScatterPlanner` skips must
  contribute *zero* answers under full scatter.  Checked against ground
  truth: every skipped shard's partition is brute-force verified with VF2
  (no summaries, no filter index involved) and must contain no answer.
* **Summary consistency** — the resident-key half of a summary tracks the
  shard cache exactly under arbitrary cache churn (sync and async
  maintenance), and the partition-level vectors (union/common features,
  size envelope) bound every member graph — also after a router rebalance
  produced new partitions.  The :meth:`InvertedFeatureIndex.summary_vectors`
  shortcut must agree with extractor-derived vectors.
* **Cost monotonicity** — the admission cost estimate is monotone
  non-decreasing in the planned candidate count and in the per-test cost,
  and never negative; per-query shard costs only price planned targets.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.features.paths import EdgeFeatureExtractor, PathFeatureExtractor
from repro.features.base import FeatureExtractor
from repro.graph import molecule_dataset
from repro.index.inverted import InvertedFeatureIndex
from repro.isomorphism.vf2 import VF2Matcher
from repro.query_model import QueryType
from repro.runtime.config import GCConfig
from repro.sharding import ScatterPlanner, ShardRouter, ShardSummary
from repro.sharding.system import ShardedGraphCacheSystem
from repro.workload import generate_trace

COMMON_SETTINGS = settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def make_dataset(seed: int, size: int):
    return molecule_dataset(size, min_vertices=5, max_vertices=11, rng=seed)


def brute_force_answers(partition, query) -> set:
    """Ground-truth answer ids of ``query`` over ``partition`` (VF2 only)."""
    matcher = VF2Matcher()
    answers = set()
    for graph in partition:
        if query.query_type is QueryType.SUBGRAPH:
            hit = matcher.is_subgraph(query.graph, graph)
        else:
            hit = matcher.is_subgraph(graph, query.graph)
        if hit:
            answers.add(graph.graph_id)
    return answers


class TestPruningSoundness:
    @COMMON_SETTINGS
    @given(seed=st.integers(0, 2**16), num_shards=st.integers(2, 4),
           query_seed=st.integers(0, 2**16))
    def test_skipped_shards_contribute_zero_answers(self, seed, num_shards, query_seed):
        dataset = make_dataset(seed, 10)
        config = GCConfig(cache_capacity=10, window_size=3,
                          num_shards=num_shards, scatter_mode="short-circuit")
        trace = generate_trace(dataset, 12, skew="zipfian",
                               query_type="mixed", seed=query_seed)
        with ShardedGraphCacheSystem(dataset, config) as system:
            partitions = system.router.partitions()
            for query in trace:
                plan = system.plan_query(query, record=False)
                for shard, reason in plan.skipped.items():
                    ghost = brute_force_answers(partitions[shard], query)
                    assert not ghost, (
                        f"shard {shard} pruned (reason {reason!r}) but owns "
                        f"answers {sorted(map(str, ghost))} for query "
                        f"{query.query_id} ({query.query_type.value})"
                    )
                # and the planned run agrees with whole-dataset ground truth
                report = system.run_query(query)
                expected = brute_force_answers(dataset, query)
                assert report.answer == expected

    @COMMON_SETTINGS
    @given(seed=st.integers(0, 2**16), num_shards=st.integers(2, 4))
    def test_plans_partition_the_shard_set(self, seed, num_shards):
        dataset = make_dataset(seed, 9)
        config = GCConfig(num_shards=num_shards, scatter_mode="short-circuit")
        trace = generate_trace(dataset, 8, skew="uniform",
                               query_type="mixed", seed=seed + 1)
        with ShardedGraphCacheSystem(dataset, config) as system:
            for query in trace:
                plan = system.plan_query(query, record=False)
                targets, skipped = set(plan.targets), set(plan.skipped)
                assert not (targets & skipped)
                assert targets | skipped == set(range(num_shards))
                assert set(plan.fallbacks) <= targets
                assert set(plan.exact_shards) <= targets


class TestSummaryConsistency:
    @COMMON_SETTINGS
    @given(seed=st.integers(0, 2**16), num_shards=st.integers(2, 3),
           async_maintenance=st.booleans())
    def test_resident_keys_track_cache_churn(self, seed, num_shards, async_maintenance):
        dataset = make_dataset(seed, 8)
        config = GCConfig(cache_capacity=6, window_size=2, num_shards=num_shards,
                          scatter_mode="short-circuit",
                          async_maintenance=async_maintenance)
        trace = generate_trace(dataset, 20, skew="zipfian",
                               query_type="mixed", seed=seed + 3)
        with ShardedGraphCacheSystem(dataset, config) as system:
            system.run_queries(list(trace))
            for cache in system.all_caches():
                cache.drain_maintenance()
            system._sync_summaries()
            for index, shard in enumerate(system.shards):
                expected = {
                    (entry.wl_hash, entry.graph.size_signature(),
                     entry.query_type.value)
                    for entry in shard.cache.entries()
                }
                assert set(system.summaries[index].resident_keys) == expected
                assert system.summaries[index].usable()

    @COMMON_SETTINGS
    @given(seed=st.integers(0, 2**16), num_shards=st.integers(2, 4),
           policy=st.sampled_from(("hash", "round-robin", "size-balanced")))
    def test_partition_vectors_bound_every_member_after_rebalance(
            self, seed, num_shards, policy):
        dataset = make_dataset(seed, 10)
        num_shards = min(num_shards, len(dataset))
        router = ShardRouter(dataset, num_shards, "hash")
        router.rebalance(policy)
        extractor = EdgeFeatureExtractor()
        for index, partition in enumerate(router.partitions()):
            summary = ShardSummary.build(index, partition, extractor)
            assert summary.usable()
            assert summary.num_graphs == len(partition)
            for graph in partition:
                features = extractor.extract(graph)
                # union is an upper bound, common a lower bound, per member
                assert FeatureExtractor.multiset_contains(
                    summary.union_features, features)
                assert FeatureExtractor.multiset_contains(
                    features, summary.common_features)
                assert summary.min_vertices <= graph.num_vertices <= summary.max_vertices
                assert summary.min_edges <= graph.num_edges <= summary.max_edges
                assert set(graph.label_counts()) <= set(summary.label_set)

    @COMMON_SETTINGS
    @given(seed=st.integers(0, 2**16), max_length=st.integers(1, 2))
    def test_index_summary_vectors_match_extractor_derivation(self, seed, max_length):
        dataset = make_dataset(seed, 7)
        extractor = PathFeatureExtractor(max_length=max_length)
        index = InvertedFeatureIndex(extractor)
        index.build(dataset)
        union, common = index.summary_vectors()
        multisets = [extractor.extract(graph) for graph in dataset]
        assert union == FeatureExtractor.multiset_union(multisets)
        assert common == FeatureExtractor.multiset_common(multisets)


class TestCostModel:
    @COMMON_SETTINGS
    @given(c1=st.integers(0, 10_000), c2=st.integers(0, 10_000),
           cost1=st.floats(0, 1, allow_nan=False), cost2=st.floats(0, 1, allow_nan=False))
    def test_estimate_is_monotone_and_non_negative(self, c1, c2, cost1, cost2):
        lo_c, hi_c = sorted((c1, c2))
        lo_s, hi_s = sorted((cost1, cost2))
        assert ScatterPlanner.estimate_cost(lo_c, lo_s) >= 0.0
        # monotone in candidates at fixed per-test cost
        assert (ScatterPlanner.estimate_cost(lo_c, lo_s)
                <= ScatterPlanner.estimate_cost(hi_c, lo_s))
        # monotone in per-test cost at fixed candidates
        assert (ScatterPlanner.estimate_cost(lo_c, lo_s)
                <= ScatterPlanner.estimate_cost(lo_c, hi_s))
        # negative inputs are clamped, not propagated
        assert ScatterPlanner.estimate_cost(-5, -1.0) == 0.0

    @COMMON_SETTINGS
    @given(seed=st.integers(0, 2**16), num_shards=st.integers(2, 4))
    def test_shard_costs_price_only_planned_targets(self, seed, num_shards):
        dataset = make_dataset(seed, 9)
        config = GCConfig(num_shards=num_shards, scatter_mode="short-circuit")
        trace = generate_trace(dataset, 6, skew="uniform",
                               query_type="mixed", seed=seed + 7)
        with ShardedGraphCacheSystem(dataset, config) as system:
            system.run_queries(list(trace)[:3])  # observe some real costs
            for query in trace:
                plan = system.plan_query(query, record=False)
                costs = system.estimate_shard_costs(query)
                assert set(costs) == set(plan.targets)
                assert all(cost >= 0.0 for cost in costs.values())


class TestRouterShrinkRegression:
    """Satellite fix: a rebalance onto a shrunken dataset must fail clearly."""

    def test_rebalance_below_shard_count_raises_clearly(self):
        dataset = make_dataset(5, 8)
        router = ShardRouter(dataset, 4, "hash")
        before = router.assignment()
        with pytest.raises(ConfigurationError, match="shrank to 3"):
            router.rebalance("hash", dataset=dataset[:3])
        # the failed plan left the previous assignment fully intact
        assert router.assignment() == before
        assert router.dataset == dataset

    def test_rebalance_onto_empty_dataset_raises(self):
        dataset = make_dataset(6, 4)
        router = ShardRouter(dataset, 2, "round-robin")
        with pytest.raises(ConfigurationError, match="empty dataset"):
            router.rebalance("round-robin", dataset=[])

    def test_rebalance_with_grown_dataset_routes_everything(self):
        dataset = make_dataset(7, 4)
        router = ShardRouter(dataset, 2, "hash")
        grown = dataset + make_dataset(8, 3)
        for position, graph in enumerate(grown):
            graph.graph_id = f"g{position}"  # keep ids unique across both halves
        moves = router.rebalance("size-balanced", dataset=grown)
        assignment = router.assignment()
        assert set(assignment) == {graph.graph_id for graph in grown}
        assert all(partition for partition in router.partitions())
        # every new graph appears in the move plan (from virtual shard -1)
        new_ids = {graph.graph_id for graph in grown[len(dataset):]}
        assert new_ids <= set(moves)
        assert all(moves[graph_id][0] == -1 for graph_id in new_ids)

    def test_rebalance_reports_removed_graphs(self):
        dataset = make_dataset(9, 6)
        for position, graph in enumerate(dataset):
            graph.graph_id = f"r{position}"
        router = ShardRouter(dataset, 2, "round-robin")
        shrunk = dataset[:4]
        moves = router.rebalance("round-robin", dataset=shrunk)
        removed = {graph.graph_id for graph in dataset[4:]}
        assert removed <= set(moves)
        assert all(moves[graph_id][1] == -1 for graph_id in removed)
        assert set(router.assignment()) == {graph.graph_id for graph in shrunk}
