"""Async client tests: pooling, typed errors, and the 1000-connection arm.

The headline acceptance test lives here: the asyncio load generator holds
**≥ 1000 concurrent open-loop connections in a single process** against a
2-shard short-circuit server and returns answer sets identical to the sync
thread-per-connection client on the same trace — the differential arm that
makes the async path trustworthy, not just fast.  The thread-based client
cannot even attempt this shape (1000 OS threads); the pool holds 1000
keep-alive sockets on one event loop while the open-loop schedule
multiplexes the trace over them.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api.aio import AsyncRemoteGraphService, replay_trace_async
from repro.api.envelopes import QueryRequest
from repro.api.remote import RemoteGraphService
from repro.errors import ProtocolError
from repro.graph import molecule_dataset
from repro.runtime import GCConfig
from repro.server import QueryServer
from repro.workload import generate_trace, replay_trace

TARGET_CONNECTIONS = 1000


@pytest.fixture(scope="module")
def dataset():
    # deliberately tiny graphs: the 1000-connection arm is about transport
    # concurrency, not verification weight
    return molecule_dataset(12, min_vertices=6, max_vertices=10, rng=29)


@pytest.fixture(scope="module")
def short_trace(dataset):
    return generate_trace(dataset, 30, skew="zipfian", query_type="mixed", seed=31)


def sharded_config() -> GCConfig:
    return GCConfig(cache_capacity=12, window_size=4, num_shards=2,
                    scatter_mode="short-circuit")


def run(coro):
    return asyncio.run(coro)


def clone(query) -> QueryRequest:
    return QueryRequest(graph=query.graph.copy(), query_type=query.query_type)


class TestAsyncClientBasics:
    def test_run_and_negotiation(self, dataset, short_trace):
        with QueryServer(dataset, sharded_config(), max_queue_depth=128) as server:

            async def go():
                async with AsyncRemoteGraphService.for_server(
                        server, max_connections=8) as client:
                    assert await client.negotiate() == 2
                    responses = [await client.run(clone(q)) for q in short_trace]
                    health = await client.health()
                    metrics = await client.metrics()
                    return responses, health, metrics, client.pool_stats()

            responses, health, metrics, pool = run(go())
        assert health["status"] == "ok"
        assert metrics.aggregate["num_queries"] == len(short_trace)
        assert all(r.batch_size >= 1 for r in responses)
        # sequential requests reuse one keep-alive connection
        assert pool["peak_open_connections"] == 1
        assert pool["reconnects"] == 0

    def test_matches_sync_client(self, dataset, short_trace):
        with QueryServer(dataset, sharded_config(), max_queue_depth=128) as server:
            sync_answers = [
                RemoteGraphService.for_server(server).run(clone(q)).answer
                for q in short_trace
            ]

            async def go():
                async with AsyncRemoteGraphService.for_server(
                        server, max_connections=16) as client:
                    batch = await client.run_batch([clone(q) for q in short_trace])
                    return batch

            batch = run(go())
        assert batch.ok
        assert [r.answer for r in batch] == sync_answers

    def test_typed_errors_cross_the_wire(self, dataset):
        with QueryServer(dataset, sharded_config(), max_queue_depth=128) as server:

            async def go():
                async with AsyncRemoteGraphService.for_server(server) as client:
                    status, payload = await client._request(
                        "POST", "/query", {"version": 2, "query": {}})
                    return status, payload

            status, payload = run(go())
        assert status == 400
        assert payload["error"]["code"] == "protocol"

    def test_recording_through_the_async_client(self, dataset, short_trace):
        with QueryServer(dataset, sharded_config(), max_queue_depth=128) as server:

            async def go():
                async with AsyncRemoteGraphService.for_server(server) as client:
                    await client.start_recording(name="async-capture")
                    for query in short_trace[:5]:
                        await client.run(clone(query))
                    return await client.stop_recording()

            recorded = run(go())
        assert len(recorded) == 5
        assert recorded.metadata["protocol_version"] == 2

    def test_constructor_validation(self):
        with pytest.raises(ProtocolError):
            AsyncRemoteGraphService("localhost", 1, protocol_version=99)


class TestThousandConnections:
    """The acceptance arm: ≥1000 open-loop connections, answers unchanged."""

    def test_sustains_1000_connections_with_identical_answers(self, dataset):
        trace = generate_trace(dataset, TARGET_CONNECTIONS, skew="zipfian",
                               query_type="mixed", seed=37)

        # reference arm: the sync thread-per-connection client (8 threads —
        # its natural operating range) on a fresh server
        with QueryServer(dataset, sharded_config(), max_batch_size=8,
                         batch_workers=8, max_queue_depth=2048) as server:
            sync_result = replay_trace(RemoteGraphService.for_server(server),
                                       trace, num_threads=8)
        assert sync_result.served == len(trace)
        assert sync_result.errors == 0

        # async arm: 1000 pre-opened keep-alive connections held for the
        # whole run, every query released open-loop in one burst so the
        # in-flight population actually exercises the pool
        with QueryServer(dataset, sharded_config(), max_batch_size=8,
                         batch_workers=8, max_queue_depth=2048,
                         request_timeout_seconds=120.0) as server:

            async def go():
                async with AsyncRemoteGraphService.for_server(
                        server, max_connections=TARGET_CONNECTIONS,
                        timeout=120.0) as client:
                    result = await replay_trace_async(
                        client, trace, target_qps=1_000_000.0,
                        warm_connections=TARGET_CONNECTIONS,
                    )
                    return result, client.pool_stats()

            async_result, pool = run(go())

        # the generator really held >= 1000 concurrent connections
        assert pool["peak_open_connections"] >= TARGET_CONNECTIONS
        assert async_result.num_connections >= TARGET_CONNECTIONS
        # in-flight counts requests holding a connection, never pool waiters
        assert pool["peak_in_flight"] <= pool["max_connections"]
        # nothing dropped, nothing errored, and — the differential claim —
        # the answer sets are identical to the sync client's, per position
        assert async_result.served == len(trace)
        assert async_result.errors == 0
        assert async_result.rejected == 0
        assert async_result.answers() == sync_result.answers()
