"""Differential arm: sync client ≡ async client ≡ in-process, one API.

The service-boundary counterpart of the sharding differential suites: the
same 200-query mixed sub/supergraph trace is executed through every
:class:`GraphService` backend —

* ``local``        — :class:`LocalGraphService` over the in-process engine;
* ``remote-sync``  — :class:`RemoteGraphService` against a live server
  (negotiated v2 envelopes, thread-per-connection);
* ``remote-async`` — :class:`AsyncRemoteGraphService` against a live server
  (pooled asyncio connections, concurrent in-flight queries);

— and the per-position answer sets must be byte-identical across all three,
on both the unsharded and the 2-shard short-circuit configurations.  The
failure mode this guards: a transport or envelope bug silently changing
(or reordering) answers would otherwise masquerade as a perf quirk.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api.aio import AsyncRemoteGraphService, replay_trace_async
from repro.api.envelopes import QueryRequest
from repro.api.remote import RemoteGraphService
from repro.api.service import LocalGraphService
from repro.graph import molecule_dataset
from repro.runtime import GCConfig
from repro.server import QueryServer
from repro.workload import generate_trace, replay_trace

from tests.differential import diff_answers, ArmResult

NUM_QUERIES = 200


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(40, min_vertices=8, max_vertices=18, rng=41)


@pytest.fixture(scope="module")
def trace(dataset):
    return generate_trace(dataset, NUM_QUERIES, skew="zipfian",
                          query_type="mixed", seed=43)


def config(**overrides) -> GCConfig:
    payload = GCConfig(cache_capacity=20, window_size=5).to_dict()
    payload.update(overrides)
    return GCConfig.from_dict(payload)


def clones(trace) -> list[QueryRequest]:
    return [QueryRequest(graph=q.graph.copy(), query_type=q.query_type)
            for q in trace]


def run_local_arm(dataset, trace, cfg) -> ArmResult:
    with LocalGraphService(dataset, cfg) as service:
        batch = service.run_batch(clones(trace), max_workers=1).raise_first()
        return ArmResult(name="local", answers=[r.answer for r in batch])


def run_sync_arm(dataset, trace, cfg, num_threads=4) -> ArmResult:
    with QueryServer(dataset, cfg, max_batch_size=4,
                     max_queue_depth=max(256, 2 * len(trace))) as server:
        client = RemoteGraphService.for_server(server)
        result = replay_trace(client, trace, num_threads=num_threads)
    assert result.served == len(trace), (
        f"sync arm dropped queries: {result.summary()}")
    return ArmResult(
        name=f"remote-sync(threads={num_threads})",
        answers=[frozenset(answer) for answer in result.answers()],
    )


def run_async_arm(dataset, trace, cfg, connections=100) -> ArmResult:
    with QueryServer(dataset, cfg, max_batch_size=4,
                     max_queue_depth=max(256, 2 * len(trace))) as server:

        async def go():
            async with AsyncRemoteGraphService.for_server(
                    server, max_connections=connections) as client:
                return await replay_trace_async(client, trace,
                                                warm_connections=connections)

        result = asyncio.run(go())
    assert result.served == len(trace), (
        f"async arm dropped queries: {result.summary()}")
    return ArmResult(
        name=f"remote-async(connections={connections})",
        answers=[frozenset(answer) for answer in result.answers()],
    )


def assert_arms_identical(reference: ArmResult, *others: ArmResult) -> None:
    for other in others:
        diff = diff_answers(reference, other)
        assert diff is None, diff


def test_differential_unsharded(dataset, trace):
    """local ≡ sync ≡ async on the single-system engine."""
    local = run_local_arm(dataset, trace, config())
    sync = run_sync_arm(dataset, trace, config())
    async_ = run_async_arm(dataset, trace, config())
    assert_arms_identical(local, sync, async_)


def test_differential_sharded_short_circuit(dataset, trace):
    """local ≡ sync ≡ async on the 2-shard short-circuit engine.

    This is the configuration the async acceptance criterion names: the
    envelope path must not interfere with scatter planning, shard merge or
    summary-driven pruning.
    """
    cfg = config(num_shards=2, scatter_mode="short-circuit")
    local = run_local_arm(dataset, trace, cfg)
    sync = run_sync_arm(dataset, trace, cfg)
    async_ = run_async_arm(dataset, trace, cfg)
    assert_arms_identical(local, sync, async_)


def test_differential_v1_and_v2_clients_agree(dataset, trace):
    """A v1-pinned client and the negotiated v2 client see the same answers
    from the same server — the auto-upgrade path changes shapes, never
    semantics."""
    cfg = config(num_shards=2, scatter_mode="short-circuit")
    with QueryServer(dataset, cfg, max_batch_size=4,
                     max_queue_depth=max(256, 2 * len(trace))) as server:
        v1 = replay_trace(RemoteGraphService.for_server(server, protocol_version=1),
                          trace, num_threads=1)
        v2 = replay_trace(RemoteGraphService.for_server(server),
                          trace, num_threads=1)
    assert v1.served == v2.served == len(trace)
    assert v1.answers() == v2.answers()
