"""Property-style tests: every execution mode returns identical answer sets.

The acceptance property of the concurrent engine: over a seeded mixed
sub/supergraph workload, cache-enabled, cache-disabled, sequential and
concurrent (``max_workers=4``) execution — with and without asynchronous
maintenance — all agree on every query's answer set.  Cache state may follow
a different trajectory under concurrency (admission order interleaves), but
answers may not change: the cache only prunes candidates it can guarantee.
"""

from __future__ import annotations

import pytest

from repro.graph import molecule_dataset
from repro.query_model import Query, QueryType
from repro.runtime import GCConfig, GraphCacheSystem
from repro.workload import WorkloadGenerator, WorkloadMix


def _mixed_workload(dataset, num_queries: int, seed: int) -> list[Query]:
    """Interleaved subgraph/supergraph queries from the same pattern pools."""
    half = num_queries // 2
    sub = WorkloadGenerator(dataset, rng=seed).generate(
        half, mix="popular", name="sub-half"
    )
    super_mix = WorkloadMix(
        query_type=QueryType.SUPERGRAPH,
        repeat_fraction=0.3,
        extend_fraction=0.4,
        shrink_fraction=0.1,
        fresh_fraction=0.2,
    )
    sup = WorkloadGenerator(dataset, rng=seed + 1).generate(
        num_queries - half, mix=super_mix, name="super-half"
    )
    queries: list[Query] = []
    for pair in zip(sub, sup):
        queries.extend(pair)
    return queries


def _clone(queries: list[Query]) -> list[Query]:
    """Fresh Query objects per run so ids/metadata never leak across systems."""
    return [Query(graph=q.graph.copy(), query_type=q.query_type) for q in queries]


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(16, min_vertices=7, max_vertices=13, rng=77)


@pytest.fixture(scope="module")
def workload(dataset):
    return _mixed_workload(dataset, 200, seed=13)


@pytest.fixture(scope="module")
def reference_answers(dataset, workload):
    """Sequential cache-enabled execution is the reference arm."""
    system = GraphCacheSystem(dataset, GCConfig(window_size=5, cache_capacity=25))
    return [report.answer for report in system.run_queries(_clone(workload))]


class TestExecutionModeEquivalence:
    def test_workload_is_mixed(self, workload):
        types = {query.query_type for query in workload}
        assert types == {QueryType.SUBGRAPH, QueryType.SUPERGRAPH}
        assert len(workload) >= 200

    def test_cache_disabled_matches(self, dataset, workload, reference_answers):
        system = GraphCacheSystem(dataset, GCConfig(cache_enabled=False))
        answers = [report.answer for report in system.run_queries(_clone(workload))]
        assert answers == reference_answers

    def test_concurrent_matches(self, dataset, workload, reference_answers):
        system = GraphCacheSystem(
            dataset, GCConfig(window_size=5, cache_capacity=25, max_workers=4)
        )
        reports = system.run_queries_concurrent(_clone(workload), max_workers=4)
        assert [report.answer for report in reports] == reference_answers

    def test_concurrent_async_maintenance_matches(self, dataset, workload, reference_answers):
        with GraphCacheSystem(
            dataset,
            GCConfig(
                window_size=5, cache_capacity=25, max_workers=4, async_maintenance=True
            ),
        ) as system:
            reports = system.run_queries_concurrent(_clone(workload), max_workers=4)
            assert [report.answer for report in reports] == reference_answers
            # maintenance quiesced: every offer was applied before returning
            assert system.cache.maintenance.stats().pending == 0

    def test_concurrent_reports_keep_submission_order(self, dataset, workload):
        system = GraphCacheSystem(
            dataset, GCConfig(window_size=5, cache_capacity=25, max_workers=4)
        )
        queries = _clone(workload[:40])
        reports = system.run_queries_concurrent(queries, max_workers=4)
        assert [r.query.query_id for r in reports] == [q.query_id for q in queries]
        # statistics records are re-aligned to submission order too, so every
        # per-position view (hit %, window summaries) matches `reports`
        assert [record.query_id for record in system.records()] == [
            q.query_id for q in queries
        ]

    def test_concurrent_statistics_complete(self, dataset, workload):
        system = GraphCacheSystem(
            dataset, GCConfig(window_size=5, cache_capacity=25, max_workers=4)
        )
        system.run_queries_concurrent(_clone(workload[:60]), max_workers=4)
        assert system.aggregate().num_queries == 60
        assert len(system.hit_percentages()) == 60
        # hit-% denominators ride on each record, so they stay aligned even
        # when queries complete out of submission order
        for record in system.records():
            assert 0 <= record.cache_population <= system.cache.capacity
