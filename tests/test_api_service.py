"""GraphService backend tests: local ≡ remote, typed errors, recording.

The service boundary's contract, checked per backend:

* :class:`LocalGraphService` answers exactly what the underlying system
  answers (including through ``run_batch``), and only closes a system it
  built itself;
* :class:`RemoteGraphService` negotiates v2, raises the *same* typed
  exceptions an in-process system raises (reconstructed from the wire
  taxonomy — a backpressure 429 arrives as ``AdmissionRejectedError`` with
  its attributes, not as parsed message text), and interoperates with a
  v1-only server (negotiation falls back on a missing ``/protocol``);
* server-side trace recording captures the offered stream as a replayable
  :class:`Workload` whose replay returns the same answers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.api.envelopes import QueryRequest
from repro.api.remote import RemoteGraphService
from repro.api.service import GraphService, LocalGraphService
from repro.errors import (
    AdmissionRejectedError,
    ConfigurationError,
    ProtocolError,
    RecordingStateError,
    ServerError,
)
from repro.graph import molecule_dataset
from repro.runtime import GCConfig, GraphCacheSystem
from repro.server import QueryServer
from repro.workload import generate_trace, replay_trace


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(24, min_vertices=8, max_vertices=16, rng=11)


@pytest.fixture(scope="module")
def trace(dataset):
    return generate_trace(dataset, 24, skew="zipfian", query_type="mixed", seed=13)


def config(**overrides) -> GCConfig:
    payload = GCConfig(cache_capacity=12, window_size=4).to_dict()
    payload.update(overrides)
    return GCConfig.from_dict(payload)


def clone(query) -> QueryRequest:
    return QueryRequest(graph=query.graph.copy(), query_type=query.query_type)


class TestLocalGraphService:
    def test_answers_match_the_bare_system(self, dataset, trace):
        with GraphCacheSystem(dataset, config()) as system:
            expected = [frozenset(system.run_query(q.graph.copy(), q.query_type).answer)
                        for q in trace]
        with LocalGraphService(dataset, config()) as service:
            assert isinstance(service, GraphService)
            got = [service.run(clone(q)).answer for q in trace]
        assert got == expected

    def test_run_batch_per_item_outcomes(self, dataset, trace):
        with LocalGraphService(dataset, config()) as service:
            result = service.run_batch([clone(q) for q in trace], max_workers=2)
            assert result.ok and len(result) == len(trace)
            assert result.raise_first() is result
            assert all(answer is not None for answer in result.answers())

    def test_sharded_construction_via_config(self, dataset, trace):
        with LocalGraphService(dataset, config(num_shards=2,
                                               scatter_mode="short-circuit")) as service:
            assert service.system.config.num_shards == 2
            snapshot = service.metrics()
            service.run(clone(trace[0]))
            assert service.metrics().statistics["aggregate"]["num_queries"] == 1
            assert snapshot.router is not None  # sharded sections present

    def test_wrapping_does_not_take_ownership(self, dataset):
        with GraphCacheSystem(dataset, config()) as system:
            service = LocalGraphService.from_system(system)
            service.run(QueryRequest(graph=dataset[0].copy()))
            service.close()  # must NOT close the caller's system
            report = system.run_query(dataset[0].copy(), "subgraph")
            assert report.answer

    def test_constructor_needs_exactly_one_source(self, dataset):
        with pytest.raises(ConfigurationError):
            LocalGraphService()
        with GraphCacheSystem(dataset, config()) as system:
            with pytest.raises(ConfigurationError):
                LocalGraphService(dataset, config(), system=system)


class TestRemoteGraphService:
    def test_negotiates_v2_and_matches_local(self, dataset, trace):
        with LocalGraphService(dataset, config()) as local:
            expected = [local.run(clone(q)).answer for q in trace]
        with QueryServer(dataset, config(), max_queue_depth=256) as server:
            client = RemoteGraphService.for_server(server)
            assert client.protocol_version == 2
            got = [client.run(clone(q)).answer for q in trace]
            assert got == expected
            # the typed surface rides along
            response = client.run(clone(trace[0]))
            assert response.batch_size >= 1 and response.queue_seconds is not None
            assert client.health()["status"] == "ok"
            assert client.metrics().aggregate["num_queries"] == len(trace) + 1
            assert client.stats()["server"]["protocol_versions"] == [1, 2]

    def test_pinned_v1_against_v2_server(self, dataset, trace):
        """The auto-upgrade path: a v1 client is answered in v1 shapes."""
        with QueryServer(dataset, config(), max_queue_depth=64) as server:
            client = RemoteGraphService.for_server(server, protocol_version=1)
            status, payload = client.send(clone(trace[0]))
            assert status == 200
            assert "version" not in payload and "answer" in payload
            response = client.run(clone(trace[0]))
            assert response.answer == frozenset(payload["answer"])

    def test_remote_errors_are_typed(self, dataset):
        with QueryServer(dataset, config(), max_queue_depth=64) as server:
            client = RemoteGraphService.for_server(server)
            with pytest.raises(ProtocolError):
                client.run("not a graph")  # rejected client-side by as_request
            status, payload = client._request("POST", "/query",
                                              {"version": 2, "query": {}})
            assert status == 400
            assert payload["error"]["code"] == "protocol"

    def test_backpressure_raises_admission_rejected_with_attributes(self, dataset, trace):
        with QueryServer(dataset, config(), max_batch_size=1,
                         max_delay_seconds=0.0, max_queue_depth=1) as server:
            client = RemoteGraphService.for_server(server)
            result = client.run_batch(
                [clone(trace[index % len(trace)]) for index in range(64)])
            rejected = [f for f in result.failures if f.code == "admission-rejected"]
            served = result.responses
            assert served, "some queries must be served"
            if rejected:  # under timing the queue may drain fast; usually hits
                exc = rejected[0].to_exception()
                assert isinstance(exc, AdmissionRejectedError)
                assert exc.queue_depth >= 1

    def test_unsupported_pin_rejected(self):
        with pytest.raises(ProtocolError):
            RemoteGraphService("localhost", 1, protocol_version=99)


class TestV1OnlyServerFallback:
    """Negotiation against a server predating ``/protocol``."""

    @pytest.fixture()
    def v1_server(self, dataset):
        inner = QueryServer(dataset, config(), max_queue_depth=64).start()

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:  # no /protocol endpoint at all
                self._reply(404, {"error": "unknown path"})

            def do_POST(self) -> None:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length)
                status, body = inner.serve_query(json.loads(raw or b"{}"))
                self._reply(status, body)

            def _reply(self, status, payload) -> None:
                body = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # noqa: A002
                pass

        shim = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=shim.serve_forever, daemon=True)
        thread.start()
        try:
            yield shim.server_address
        finally:
            shim.shutdown()
            thread.join()
            shim.server_close()
            inner.stop()

    def test_falls_back_to_v1(self, v1_server, dataset):
        host, port = v1_server
        client = RemoteGraphService(host, port)
        assert client.protocol_version == 1
        response = client.run(QueryRequest(graph=dataset[0].copy()))
        assert dataset[0].graph_id in response.answer


class TestTraceRecording:
    def test_recorded_stream_replays_identically(self, dataset, trace, tmp_path):
        cfg = config(num_shards=2)
        with QueryServer(dataset, cfg, max_queue_depth=256) as server:
            client = RemoteGraphService.for_server(server)
            client.start_recording(name="live-traffic")
            live = replay_trace(client, trace, num_threads=1)
            assert live.served == len(trace)
            recorded = client.stop_recording()

        assert len(recorded) == len(trace)
        assert recorded.name == "live-traffic"
        assert recorded.metadata["recorded"] is True
        assert recorded.metadata["protocol_version"] == 2
        # the recording preserves order and semantics of the offered stream
        assert [q.query_type for q in recorded] == [q.query_type for q in trace]

        # a JSON round trip + replay against a fresh server gives the same
        # answers the live traffic got — the "replay production traffic
        # against a candidate configuration" loop, end to end
        path = tmp_path / "recorded.json"
        recorded.save(path)
        from repro.workload import Workload

        reloaded = Workload.load(path)
        with QueryServer(dataset, config(), max_queue_depth=256) as fresh:
            replayed = replay_trace(RemoteGraphService.for_server(fresh),
                                    reloaded, num_threads=1)
        assert replayed.answers() == live.answers()

    def test_server_side_persistence(self, dataset, trace, tmp_path):
        target = tmp_path / "server-side.json"
        with QueryServer(dataset, config(), max_queue_depth=64) as server:
            client = RemoteGraphService.for_server(server)
            started = client.start_recording(name="persisted", path=str(target))
            assert started["path"] == str(target)
            client.run(clone(trace[0]))
            recorded = client.stop_recording()
        assert target.exists()
        assert len(recorded) == 1

    def test_recording_state_errors_are_409(self, dataset):
        with QueryServer(dataset, config(), max_queue_depth=64) as server:
            client = RemoteGraphService.for_server(server)
            with pytest.raises(ServerError, match="409"):
                client.stop_recording()
            client.start_recording()
            status, payload = client._request("POST", "/record/start", {})
            assert status == 409
            assert payload["error"]["code"] == "recording-state"
            client.stop_recording()

    def test_recorder_records_offered_not_served(self, dataset, trace):
        """Backpressured (429) requests still land in the recording."""
        with QueryServer(dataset, config(), max_batch_size=1,
                         max_delay_seconds=0.0, max_queue_depth=1) as server:
            client = RemoteGraphService.for_server(server)
            client.start_recording()
            result = replay_trace(client, trace, num_threads=8)
            recorded = client.stop_recording()
        assert result.served + result.rejected == len(trace)
        assert len(recorded) == len(trace)

    def test_failed_persist_returns_trace_inline_instead_of_losing_it(
            self, dataset, trace, tmp_path):
        """An unwritable persist path must not destroy the capture: the
        trace comes back inline with the write error in its metadata."""
        bad_path = tmp_path / "not-a-directory" / "trace.json"
        with QueryServer(dataset, config(), max_queue_depth=64) as server:
            client = RemoteGraphService.for_server(server)
            client.start_recording(name="precious", path=str(bad_path))
            client.run(clone(trace[0]))
            recorded = client.stop_recording()
        assert len(recorded) == 1
        assert "persist_error" in recorded.metadata
        assert not bad_path.exists()

    def test_explicit_v1_version_gets_v1_error_shape(self, dataset):
        """A payload declaring "version": 1 is a v1 speaker: its errors must
        be the legacy flat shape (message string), not a v2 envelope."""
        with QueryServer(dataset, config(), max_queue_depth=64) as server:
            client = RemoteGraphService.for_server(server)
            status, payload = client._request("POST", "/query", {"version": 1})
            assert status == 400
            assert isinstance(payload["error"], str)
            status, payload = client._request("POST", "/query", {"version": 2})
            assert status == 400
            assert isinstance(payload["error"], dict)  # v2 speakers get envelopes

    def test_recorder_direct_state_machine(self):
        from repro.api.recording import TraceRecorder

        recorder = TraceRecorder()
        assert not recorder.active
        recorder.start(name="t")
        with pytest.raises(RecordingStateError):
            recorder.start()
        trace, path = recorder.stop()
        assert path is None and len(trace) == 0
        with pytest.raises(RecordingStateError):
            recorder.stop()
