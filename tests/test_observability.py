"""End-to-end observability: tracing, span recorder, metrics registry, logs.

The contracts the telemetry layer must keep:

* the trace context is purely additive on the wire — v1 clients see no
  trace fields while the server still traces internally, and hypothesis's
  envelope round-trips stay lossless;
* one served query yields ONE coherent span tree: client send →
  server.request → queue/batch → plan/scatter → per-shard pipeline stages →
  merge — parent-linked even across the process-worker HTTP hop;
* tracing is observationally free: answer sets are identical with sampling
  at 0.0 and 1.0;
* the Prometheus text exposition parses and agrees with the JSON snapshot
  of the same registry;
* ``/health`` carries per-worker liveness without breaking the
  ``status == "ok"`` probe contract.
"""

from __future__ import annotations

import logging

import pytest

from repro.api.envelopes import QueryRequest, parse_request
from repro.api.remote import RemoteGraphService
from repro.errors import ServerError
from repro.graph import molecule_dataset
from repro.graph.operations import random_connected_subgraph
from repro.obs.logs import BufferedLogHandler, get_logger, replay_entries
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import SpanRecorder, get_recorder
from repro.obs.trace import (
    TRACE_KEY,
    Span,
    TraceContext,
    build_tree,
    new_span_id,
    new_trace_id,
)
from repro.runtime import GCConfig
from repro.server import QueryServer
from repro.workload import generate_trace


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(18, min_vertices=7, max_vertices=13, rng=53)


@pytest.fixture(scope="module")
def trace_queries(dataset):
    return generate_trace(dataset, 16, skew="zipfian", query_type="mixed", seed=19)


def config(**overrides) -> GCConfig:
    payload = GCConfig(cache_capacity=12, window_size=4).to_dict()
    payload.update(overrides)
    return GCConfig.from_dict(payload)


def parse_prometheus_text(text: str) -> dict[str, float]:
    """``{'name{labels}': value}`` for every series line in the exposition."""
    series: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, raw = line.rsplit(" ", 1)
        series[key] = float(raw)
    return series


# ---------------------------------------------------------------------- #
# metrics registry
# ---------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", help="requests", kind="ok")
        requests.inc()
        requests.inc(2)
        depth = registry.gauge("queue_depth", help="depth")
        depth.set(7)
        depth.inc(-3)
        latency = registry.histogram("latency_seconds", help="latency")
        for value in (0.0005, 0.02, 5.0):
            latency.observe(value)
        snapshot = registry.snapshot()
        families = snapshot["families"]
        counter = families["requests_total"]["samples"][0]
        assert counter["labels"] == {"kind": "ok"} and counter["value"] == 3
        assert families["queue_depth"]["samples"][0]["value"] == 4
        histogram = families["latency_seconds"]["samples"][0]
        assert histogram["count"] == 3
        assert histogram["sum"] == pytest.approx(5.0205)

    def test_counter_rejects_negative_and_kind_conflicts(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", help="events")
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            registry.gauge("events_total", help="now a gauge")

    def test_text_exposition_agrees_with_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", help="hits", kind="exact").inc(5)
        registry.counter("hits_total", help="hits", kind="sub").inc(2)
        registry.gauge("ratio", help="ratio").set(0.25)
        histogram = registry.histogram("seconds", help="seconds")
        for value in (0.002, 0.002, 0.9):
            histogram.observe(value)
        series = parse_prometheus_text(registry.render_text())
        assert series['hits_total{kind="exact"}'] == 5
        assert series['hits_total{kind="sub"}'] == 2
        assert series["ratio"] == 0.25
        assert series["seconds_count"] == 3
        assert series["seconds_sum"] == pytest.approx(0.904)
        assert series['seconds_bucket{le="+Inf"}'] == 3
        # cumulative buckets are monotone non-decreasing
        buckets = [(key, value) for key, value in series.items()
                   if key.startswith("seconds_bucket")]
        values = [value for _, value in buckets]
        assert values == sorted(values)

    def test_worker_snapshots_fan_in_as_labelled_series(self):
        coordinator = MetricsRegistry()
        coordinator.counter("served_total", help="served").inc(10)
        worker = MetricsRegistry()
        worker.counter("served_total", help="served").inc(4)
        text = coordinator.render_text(
            extra=[({"shard": "0"}, worker.snapshot())])
        series = parse_prometheus_text(text)
        assert series["served_total"] == 10
        assert series['served_total{shard="0"}'] == 4

    def test_broken_collector_is_skipped(self):
        registry = MetricsRegistry()
        registry.counter("fine_total", help="fine").inc()
        registry.register_collector(lambda: (_ for _ in ()).throw(RuntimeError))
        assert "fine_total" in registry.snapshot()["families"]


# ---------------------------------------------------------------------- #
# span recorder
# ---------------------------------------------------------------------- #
def _spans(trace_id: str, count: int) -> list[Span]:
    return [Span(trace_id=trace_id, span_id=new_span_id(), name=f"s{i}")
            for i in range(count)]


class TestSpanRecorder:
    def test_whole_trace_eviction_keeps_span_bound(self):
        recorder = SpanRecorder(buffer_size=10)
        ids = [new_trace_id() for _ in range(6)]
        for trace_id in ids:
            recorder.record_many(_spans(trace_id, 3))
        stats = recorder.stats()
        assert stats["spans"] <= 10
        assert stats["evicted_traces"] >= 1
        assert recorder.tree(ids[0]) is None       # oldest evicted whole
        assert recorder.tree(ids[-1]) is not None  # newest survives

    def test_slowest_and_recent_views(self):
        recorder = SpanRecorder(buffer_size=100)
        durations = [0.03, 0.01, 0.02]
        ids = []
        for duration in durations:
            trace_id = new_trace_id()
            ids.append(trace_id)
            recorder.record_many(_spans(trace_id, 1))
            recorder.complete(trace_id, duration)
        assert [t["trace_id"] for t in recorder.recent(2)] == [ids[2], ids[1]]
        assert [t["trace_id"] for t in recorder.slowest(2)] == [ids[0], ids[2]]

    def test_slow_query_exemplar_keeps_tree_and_scatter(self):
        recorder = SpanRecorder(buffer_size=100, slow_threshold_seconds=0.01,
                                max_exemplars=2)
        fast = new_trace_id()
        recorder.record_many(_spans(fast, 1))
        recorder.complete(fast, 0.001)
        assert recorder.exemplars() == []
        slow = new_trace_id()
        recorder.record_many(_spans(slow, 2))
        recorder.complete(slow, 0.5, scatter={"targets": [0, 1]})
        exemplars = recorder.exemplars()
        assert len(exemplars) == 1
        assert exemplars[0]["trace_id"] == slow
        assert exemplars[0]["scatter"] == {"targets": [0, 1]}
        assert exemplars[0]["tree"]["num_spans"] == 2

    def test_build_tree_parents_and_orphans(self):
        trace_id = new_trace_id()
        root = Span(trace_id=trace_id, span_id="r" * 16, name="root")
        child = Span(trace_id=trace_id, span_id="c" * 16, name="child",
                     parent_span_id="r" * 16)
        orphan = Span(trace_id=trace_id, span_id="o" * 16, name="orphan",
                      parent_span_id="missing")
        tree = build_tree([root, child, orphan])
        roots = {span["name"] for span in tree["roots"]}
        assert roots == {"root", "orphan"}  # unknown parent → treated as root
        root_node = next(s for s in tree["roots"] if s["name"] == "root")
        assert [c["name"] for c in root_node["children"]] == ["child"]


# ---------------------------------------------------------------------- #
# envelope propagation (v1 auto-upgrade included)
# ---------------------------------------------------------------------- #
class TestTraceEnvelopes:
    def test_v2_round_trip_preserves_context(self, dataset):
        context = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
        request = QueryRequest(graph=dataset[0].copy(), trace=context)
        wire = request.to_wire(2)
        assert wire["trace"] == {"trace_id": context.trace_id,
                                 "span_id": context.span_id, "sampled": True}
        parsed, version = parse_request(wire)
        assert version == 2
        assert parsed.trace == context

    def test_v1_wire_never_carries_trace(self, dataset):
        context = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
        request = QueryRequest(graph=dataset[0].copy(), trace=context)
        assert "trace" not in request.to_wire(1)
        parsed, version = parse_request(request.to_wire(1))
        assert version == 1 and parsed.trace is None

    def test_to_query_stamps_and_from_query_lifts_the_carrier(self, dataset):
        context = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
        request = QueryRequest(graph=dataset[0].copy(), trace=context)
        query = request.to_query()
        assert query.metadata[TRACE_KEY]["span_id"] == context.span_id
        lifted = QueryRequest.from_query(query)
        assert lifted.trace == context
        # the carrier never leaks back into wire metadata
        assert TRACE_KEY not in (lifted.to_wire(2).get("metadata") or {})


# ---------------------------------------------------------------------- #
# served tracing (thread shards)
# ---------------------------------------------------------------------- #
def _query(dataset, seed=3):
    return random_connected_subgraph(dataset[0], 5, rng=seed)


class TestServedTracing:
    def test_sampled_query_yields_one_coherent_tree(self, dataset):
        get_recorder().reset()
        cfg = config(num_shards=2, trace_sample_rate=1.0)
        with QueryServer(dataset, cfg) as server:
            client = RemoteGraphService.for_server(server, trace_sample_rate=1.0)
            response = client.run(_query(dataset))
            assert response.trace_id
            tree = client.debug_traces(trace_id=response.trace_id)["trace"]
        # the client span roots the tree; the server chain hangs beneath it
        assert [root["name"] for root in tree["roots"]] == ["client.request"]
        server_span = tree["roots"][0]["children"][0]
        assert server_span["name"] == "server.request"
        names = {child["name"] for child in server_span["children"]}
        assert {"server.queue", "server.batch", "scatter", "merge"} <= names
        scatter = next(c for c in server_span["children"] if c["name"] == "scatter")
        pipelines = scatter["children"]
        assert len(pipelines) == 2 and all(p["name"] == "pipeline" for p in pipelines)
        stage_names = {s["name"] for s in pipelines[0]["children"]}
        assert {"filter", "verify", "admit"} <= stage_names

    def test_v1_client_sees_no_trace_fields_server_still_traces(self, dataset):
        get_recorder().reset()
        cfg = config(trace_sample_rate=1.0)
        with QueryServer(dataset, cfg) as server:
            client = RemoteGraphService.for_server(server, protocol_version=1)
            status, payload = client.send(_query(dataset))
            assert status == 200
            assert "trace" not in payload  # v1 shape: purely legacy fields
            recent = server.span_recorder.recent(1)
        assert len(recent) == 1  # ...but the server traced it internally
        root = recent[0]["roots"][0]
        assert root["name"] == "server.request"
        assert root["parent_span_id"] is None  # server-originated: a true root

    def test_unsampled_serving_records_nothing(self, dataset):
        get_recorder().reset()
        with QueryServer(dataset, config(trace_sample_rate=0.0)) as server:
            client = RemoteGraphService.for_server(server)
            response = client.run(_query(dataset))
            assert response.trace_id is None
            assert server.span_recorder.recent(5) == []

    def test_tracing_changes_zero_answers(self, dataset, trace_queries):
        """Differential arm: sampling at 1.0 vs 0.0 is answer-invariant."""
        answers = {}
        for rate in (0.0, 1.0):
            get_recorder().reset()
            cfg = config(num_shards=2, trace_sample_rate=rate)
            with QueryServer(dataset, cfg) as server:
                client = RemoteGraphService.for_server(server)
                answers[rate] = [
                    client.run(QueryRequest(graph=q.graph.copy(),
                                            query_type=q.query_type)).answer
                    for q in trace_queries
                ]
        assert answers[0.0] == answers[1.0]

    def test_slow_query_exemplar_via_http(self, dataset):
        get_recorder().reset()
        cfg = config(num_shards=2, trace_sample_rate=1.0,
                     slow_query_threshold_s=1e-6)
        with QueryServer(dataset, cfg) as server:
            client = RemoteGraphService.for_server(server)
            client.run(_query(dataset))
            payload = client.debug_traces(sort="slowest", count=3)
        assert payload["traces"], "completed trace missing from slowest view"
        assert payload["exemplars"], "threshold breach kept no exemplar"
        exemplar = payload["exemplars"][0]
        assert exemplar["tree"]["num_spans"] >= 1
        assert exemplar["scatter"] is not None  # the scatter plan rides along

    def test_unknown_trace_id_is_a_404(self, dataset):
        with QueryServer(dataset, config()) as server:
            client = RemoteGraphService.for_server(server)
            with pytest.raises(ServerError):
                client.debug_traces(trace_id="deadbeef")


# ---------------------------------------------------------------------- #
# process-worker hop (the acceptance criterion)
# ---------------------------------------------------------------------- #
class TestProcessWorkerTracing:
    def test_worker_spans_parent_link_across_the_process_hop(self, dataset):
        """A query served via ``shard_backend="process"`` at two shards must
        produce ONE span tree whose worker-side pipeline-stage spans are
        parent-linked (via each worker's ``pipeline`` span) to the
        coordinator's ``scatter`` span — the trace context survives the
        loopback HTTP hop and the spans ship back inside the wire report."""
        get_recorder().reset()
        cfg = config(num_shards=2, shard_backend="process",
                     trace_sample_rate=1.0)
        with QueryServer(dataset, cfg) as server:
            client = RemoteGraphService.for_server(server)
            response = client.run(_query(dataset))
            assert response.trace_id
            spans = server.span_recorder.spans(response.trace_id)
            tree = client.debug_traces(trace_id=response.trace_id)["trace"]
            health = client.health()
            text = client.metrics_text()
        scatter = [s for s in spans if s.name == "scatter"]
        assert len(scatter) == 1
        pipelines = [s for s in spans if s.name == "pipeline"]
        assert {p.attributes.get("shard") for p in pipelines} == {0, 1}
        assert all(p.parent_span_id == scatter[0].span_id for p in pipelines)
        pipeline_ids = {p.span_id for p in pipelines}
        stages = [s for s in spans if s.name in ("filter", "probe", "prune",
                                                 "verify", "assemble", "admit")]
        assert stages and all(s.parent_span_id in pipeline_ids for s in stages)
        assert all(s.trace_id == response.trace_id for s in spans)
        assert tree["num_spans"] == len(spans)
        # enriched health: per-worker liveness + respawn budget
        assert health["status"] == "ok"
        assert all(w["backend"] == "process" and w["alive"]
                   and w["respawns"] == 0 for w in health["workers"])
        # worker registries fan into the text exposition as shard series
        series = parse_prometheus_text(text)
        assert series['worker_requests_total{shard="0"}'] >= 1
        assert series['worker_requests_total{shard="1"}'] >= 1


# ---------------------------------------------------------------------- #
# unified metrics + health surfaces
# ---------------------------------------------------------------------- #
class TestUnifiedTelemetry:
    def test_text_metrics_parse_and_agree_with_json(self, dataset):
        cfg = config(num_shards=2, scatter_mode="short-circuit")
        with QueryServer(dataset, cfg) as server:
            client = RemoteGraphService.for_server(server)
            for seed in (3, 4, 5):
                client.run(_query(dataset, seed))
            series = parse_prometheus_text(client.metrics_text())
            snapshot = client.metrics()
        queries = snapshot.aggregate["num_queries"]
        assert series["gc_queries_total"] == queries
        assert series['gc_server_requests_total{outcome="ok"}'] == 3
        assert series["gc_scatter_queries_total"] == queries
        assert series["gc_server_request_seconds_count"] == 3
        assert series["gc_server_uptime_seconds"] > 0
        assert series['gc_worker_alive{shard="0"}'] == 1
        assert series['gc_worker_alive{shard="1"}'] == 1

    def test_health_carries_worker_liveness(self, dataset):
        with QueryServer(dataset, config(num_shards=2)) as server:
            client = RemoteGraphService.for_server(server)
            health = client.health()
        assert health["status"] == "ok"  # the probe contract, unchanged
        assert [w["shard"] for w in health["workers"]] == [0, 1]
        assert all(w["alive"] and w["respawns"] == 0 for w in health["workers"])

    def test_unsharded_health_stays_minimal(self, dataset):
        with QueryServer(dataset, config()) as server:
            health = RemoteGraphService.for_server(server).health()
        assert health["status"] == "ok"
        assert "workers" not in health


# ---------------------------------------------------------------------- #
# structured logs
# ---------------------------------------------------------------------- #
class TestStructuredLogs:
    def test_buffered_handler_bounds_and_drains(self):
        handler = BufferedLogHandler(capacity=2)
        source = logging.getLogger("repro.test.buffered")
        source.addHandler(handler)
        try:
            source.warning("w1")
            source.error("e1")
            source.warning("w2")  # overflows: w1 is dropped, counted
        finally:
            source.removeHandler(handler)
        drained = handler.drain()
        assert drained["dropped"] == 1
        assert [e["message"] for e in drained["entries"]] == ["e1", "w2"]
        assert drained["entries"][0]["level"] == "ERROR"
        assert handler.drain() == {"entries": [], "dropped": 0}

    def test_replay_attributes_the_source_shard(self, caplog):
        entries = [{"level": "WARNING", "logger": "repro.sharding.worker",
                    "message": "cache pressure", "trace_id": "abc123"}]
        with caplog.at_level(logging.WARNING, logger="repro"):
            replay_entries(entries, "shard1", dropped=2)
        messages = [record.getMessage() for record in caplog.records]
        assert any("shard1" in m and "cache pressure" in m for m in messages)
        assert any("2" in m and "dropped" in m for m in messages)

    def test_get_logger_roots_under_repro(self):
        assert get_logger("server").name == "repro.server"
        assert get_logger("repro.obs").name == "repro.obs"


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestTraceCLI:
    def test_trace_command_prints_span_trees(self, dataset, capsys):
        get_recorder().reset()
        cfg = config(num_shards=2, trace_sample_rate=1.0)
        with QueryServer(dataset, cfg) as server:
            client = RemoteGraphService.for_server(server)
            response = client.run(_query(dataset))
            from repro.cli import main

            assert main(["trace", "--port", str(server.port)]) == 0
            listing = capsys.readouterr().out
            assert "server.request" in listing and "pipeline" in listing
            assert main(["trace", "--port", str(server.port),
                         "--trace-id", response.trace_id]) == 0
            single = capsys.readouterr().out
            assert response.trace_id in single

    def test_trace_command_reports_empty_recorder(self, dataset, capsys):
        get_recorder().reset()
        with QueryServer(dataset, config()) as server:
            from repro.cli import main

            assert main(["trace", "--port", str(server.port)]) == 1
            assert "no traces" in capsys.readouterr().out
