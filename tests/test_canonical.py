"""Tests for canonical codes, WL hashing and cheap containment screens."""

from __future__ import annotations

from repro.graph import Graph, cycle_graph, molecule_graph, path_graph
from repro.graph.canonical import (
    canonical_code,
    definitely_isomorphic,
    degree_profile_contained,
    invariant_code,
    label_multiset_contained,
    label_vector,
    maybe_isomorphic,
    quick_containment_screen,
    size_contained,
    wl_code,
)
from repro.graph.operations import random_connected_subgraph


def relabelled_copy(graph: Graph) -> Graph:
    """Copy of a graph with permuted vertex identities."""
    vertices = graph.vertices()
    mapping = {vertex: f"x{index}" for index, vertex in enumerate(reversed(vertices))}
    return graph.relabel_vertices(mapping)


class TestInvariantCode:
    def test_same_for_isomorphic(self, square_with_tail):
        assert invariant_code(square_with_tail) == invariant_code(relabelled_copy(square_with_tail))

    def test_differs_on_label_change(self, triangle):
        other = triangle.copy()
        other.set_label(0, "S")
        assert invariant_code(triangle) != invariant_code(other)

    def test_maybe_isomorphic(self, triangle):
        assert maybe_isomorphic(triangle, relabelled_copy(triangle))
        other = triangle.copy()
        other.remove_edge(0, 1)
        assert not maybe_isomorphic(triangle, other)


class TestWLCode:
    def test_invariant_under_relabelling(self):
        graph = molecule_graph(14, rng=3)
        assert wl_code(graph) == wl_code(relabelled_copy(graph))

    def test_distinguishes_path_from_cycle(self):
        path = path_graph(["C", "C", "C", "C"])
        cycle = cycle_graph(["C", "C", "C", "C"])
        assert wl_code(path) != wl_code(cycle)


class TestCanonicalCode:
    def test_isomorphic_graphs_same_code(self):
        graph = molecule_graph(10, rng=5)
        assert canonical_code(graph) == canonical_code(relabelled_copy(graph))

    def test_non_isomorphic_graphs_differ(self):
        path = path_graph(["C", "C", "C", "C"])
        cycle = cycle_graph(["C", "C", "C", "C"])
        assert canonical_code(path) != canonical_code(cycle)

    def test_empty_graph(self):
        assert canonical_code(Graph()) == "empty"

    def test_size_guard_returns_none(self):
        graph = molecule_graph(30, rng=6)
        assert canonical_code(graph, max_vertices=10) is None

    def test_definitely_isomorphic_true(self, square_with_tail):
        assert definitely_isomorphic(square_with_tail, relabelled_copy(square_with_tail)) is True

    def test_definitely_isomorphic_false_fast(self, triangle):
        other = triangle.copy()
        other.set_label(0, "S")
        assert definitely_isomorphic(triangle, other) is False

    def test_definitely_isomorphic_undecided(self):
        graph = molecule_graph(30, rng=7)
        other = relabelled_copy(graph)
        assert definitely_isomorphic(graph, other, max_vertices=5) is None


class TestContainmentScreens:
    def test_subgraph_passes_all_screens(self):
        source = molecule_graph(20, rng=8)
        sub = random_connected_subgraph(source, 8, rng=9)
        assert size_contained(sub, source)
        assert label_multiset_contained(sub, source)
        assert degree_profile_contained(sub, source)
        assert quick_containment_screen(sub, source)

    def test_size_screen_rejects_larger_query(self):
        small = molecule_graph(5, rng=10)
        big = molecule_graph(10, rng=11)
        assert not size_contained(big, small)

    def test_label_screen_rejects_missing_label(self, triangle):
        query = path_graph(["C", "S"])
        assert not label_multiset_contained(query, triangle)

    def test_degree_screen_rejects_high_degree_query(self):
        hub = Graph()
        hub.add_vertex(0, "C")
        for leaf in range(1, 5):
            hub.add_vertex(leaf, "C")
            hub.add_edge(0, leaf)
        target = path_graph(["C"] * 5)
        assert not degree_profile_contained(hub, target)

    def test_label_vector(self, triangle):
        assert label_vector(triangle, ["C", "O", "S"]) == (2, 1, 0)
