"""Trace generation skew settings: determinism and save/replay round-trips.

The load generator's value for benchmarking depends on traces being exactly
reproducible: the same seed must yield the same trace (per skew, including
the drifting popularity flip), and a trace saved to JSON must replay the
same queries after loading.
"""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.graph import molecule_dataset
from repro.query_model import QueryType
from repro.workload import TRACE_SKEWS, generate_trace


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(12, min_vertices=7, max_vertices=12, rng=31)


def trace_fingerprint(trace) -> list:
    """Everything that must be identical across regenerations."""
    return [
        (query.query_type.value, query.metadata.get("mode"),
         query.metadata.get("pool_index"), query.graph.to_dict())
        for query in trace
    ]


class TestDeterminism:
    @pytest.mark.parametrize("skew", TRACE_SKEWS)
    def test_same_seed_same_trace(self, dataset, skew):
        first = generate_trace(dataset, 60, skew=skew, seed=11)
        second = generate_trace(dataset, 60, skew=skew, seed=11)
        assert trace_fingerprint(first) == trace_fingerprint(second)

    @pytest.mark.parametrize("skew", ["zipfian", "drifting"])
    def test_different_seed_different_trace(self, dataset, skew):
        first = generate_trace(dataset, 60, skew=skew, seed=11)
        second = generate_trace(dataset, 60, skew=skew, seed=12)
        assert trace_fingerprint(first) != trace_fingerprint(second)

    def test_mixed_trace_deterministic_and_interleaved(self, dataset):
        first = generate_trace(dataset, 50, skew="drifting", query_type="mixed", seed=4)
        second = generate_trace(dataset, 50, skew="drifting", query_type="mixed", seed=4)
        assert trace_fingerprint(first) == trace_fingerprint(second)
        types = [query.query_type for query in first]
        assert types[0] is QueryType.SUBGRAPH and types[1] is QueryType.SUPERGRAPH
        assert {t for t in types} == {QueryType.SUBGRAPH, QueryType.SUPERGRAPH}
        assert len(first) == 50


class TestSkewShape:
    def test_zipfian_concentrates_popular_patterns(self, dataset):
        """Zipf-skewed traces hammer the head of the pool; uniform does not."""
        zipf = generate_trace(dataset, 300, skew="zipfian", seed=8)
        head = sum(1 for q in zipf
                   if q.metadata.get("pool_index") in (0, 1, 2))
        assert head > 300 * 3 / 20  # far above the uniform expectation

    def test_drifting_flips_popularity_halfway(self, dataset):
        trace = generate_trace(dataset, 400, skew="drifting", seed=8)
        pool_size = trace.metadata["pool_size"]
        first = [q.metadata["pool_index"] for q in trace[:200] if "pool_index" in q.metadata]
        second = [q.metadata["pool_index"] for q in trace[200:] if "pool_index" in q.metadata]
        # head of the pool dominates early, tail dominates after the drift
        assert sum(first) / len(first) < sum(second) / len(second)
        assert any(index > pool_size // 2 for index in second)

    def test_unknown_skew_rejected(self, dataset):
        with pytest.raises(WorkloadError, match="unknown trace skew"):
            generate_trace(dataset, 10, skew="bimodal")


class TestRoundTrip:
    @pytest.mark.parametrize("skew", ["zipfian", "drifting"])
    def test_save_load_preserves_trace(self, dataset, tmp_path, skew):
        trace = generate_trace(dataset, 40, skew=skew, query_type="mixed", seed=17)
        path = tmp_path / f"{skew}.json"
        trace.save(path)
        from repro.workload import Workload

        loaded = Workload.load(path)
        assert loaded.name == trace.name
        assert loaded.metadata["skew"] == skew
        assert trace_fingerprint(loaded) == trace_fingerprint(trace)

    def test_loaded_trace_replays_identically(self, dataset, tmp_path):
        """Save → load → run both in process: identical answers per position."""
        from repro.runtime import GCConfig, GraphCacheSystem
        from repro.workload import Workload

        trace = generate_trace(dataset, 30, skew="zipfian", seed=23)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = Workload.load(path)

        def answers(workload):
            with GraphCacheSystem(dataset, GCConfig(cache_capacity=10, window_size=5)) as system:
                return [frozenset(r.answer) for r in system.run_queries(list(workload))]

        assert answers(trace) == answers(loaded)
