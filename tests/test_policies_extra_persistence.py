"""Tests for the extra baseline policies, cache persistence and the
per-window statistics timeline."""

from __future__ import annotations

import pytest

from repro.cache import (
    CacheEntry,
    CacheStore,
    FIFOPolicy,
    GraphCache,
    RandomPolicy,
    SizePolicy,
    available_policies,
    load_cache_entries,
    make_policy,
    restore_cache,
    save_cache,
)
from repro.cache.persistence import entry_from_dict, entry_to_dict
from repro.dashboard import DeveloperMonitor
from repro.errors import CacheError
from repro.graph import molecule_dataset, molecule_graph
from repro.query_model import Query, QueryType
from repro.runtime import GCConfig, GraphCacheSystem
from tests.conftest import make_subgraph_queries


def make_entry(seed: int, clock: int = 0, answer=frozenset({1})) -> CacheEntry:
    entry = CacheEntry(
        graph=molecule_graph(5 + seed % 4, rng=seed),
        query_type=QueryType.SUBGRAPH,
        answer=frozenset(answer),
        admitted_clock=clock,
    )
    return entry


class TestExtraPolicies:
    def test_registered(self):
        assert {"FIFO", "RANDOM", "SIZE"} <= set(available_policies())

    def test_fifo_evicts_oldest_admission(self):
        policy = FIFOPolicy()
        old = make_entry(1, clock=1)
        new = make_entry(2, clock=9)
        assert policy.get_replaced_content([new, old], 1) == [1]

    def test_random_is_deterministic_per_seed(self):
        first = RandomPolicy(seed=3)
        second = RandomPolicy(seed=3)
        entry = make_entry(3)
        assert first.utility(entry) == second.utility(entry)
        assert RandomPolicy(seed=4).describe()["seed"] == 4

    def test_size_prefers_bigger_graphs(self):
        policy = SizePolicy()
        small = CacheEntry(graph=molecule_graph(4, rng=1), query_type="subgraph",
                           answer=frozenset())
        big = CacheEntry(graph=molecule_graph(9, rng=2), query_type="subgraph",
                         answer=frozenset())
        assert policy.utility(big) > policy.utility(small)

    @pytest.mark.parametrize("name", ["FIFO", "RANDOM", "SIZE"])
    def test_capacity_respected(self, name):
        policy = make_policy(name)
        store = CacheStore()
        incoming = [make_entry(seed, clock=seed) for seed in range(8)]
        policy.update_cache_items(store, incoming, capacity=4)
        assert len(store) <= 4

    @pytest.mark.parametrize("name", ["FIFO", "RANDOM", "SIZE"])
    def test_end_to_end_correctness(self, name):
        dataset = molecule_dataset(10, min_vertices=8, max_vertices=12, rng=17)
        config = GCConfig(cache_capacity=5, window_size=1, method="direct-si",
                          replacement_policy=name)
        system = GraphCacheSystem(dataset, config)
        from repro.methods import DirectSIMethod

        baseline = DirectSIMethod()
        baseline.build(dataset)
        for query in make_subgraph_queries(dataset, 6, 6, seed=18):
            report = system.run_query(query)
            assert report.answer == baseline.execute(query.graph, query.query_type).answer


class TestPersistence:
    def test_entry_round_trip(self):
        entry = make_entry(5, clock=7, answer={1, 2, 3})
        entry.stats.hit_count = 4
        entry.stats.tests_saved = 11
        entry.stats.seconds_saved = 0.5
        entry.observed_test_cost = 0.002
        restored = entry_from_dict(entry_to_dict(entry))
        assert restored.graph.structural_equal(entry.graph)
        assert restored.answer == entry.answer
        assert restored.query_type is entry.query_type
        assert restored.stats.hit_count == 4
        assert restored.stats.tests_saved == 11
        assert restored.observed_test_cost == pytest.approx(0.002)
        assert restored.entry_id != entry.entry_id  # fresh id on load

    def test_save_and_restore_cache(self, tmp_path):
        cache = GraphCache(capacity=10, window_size=1, policy="LRU")
        cache.warm([make_entry(seed, answer={seed}) for seed in range(6)])
        path = tmp_path / "cache.json"
        written = save_cache(cache, path)
        assert written == 6

        fresh = GraphCache(capacity=10, window_size=1, policy="LRU")
        restored = restore_cache(fresh, path)
        assert restored == 6
        assert len(fresh) == 6
        assert len(fresh.query_index) == 6

    def test_restore_respects_capacity(self, tmp_path):
        cache = GraphCache(capacity=10, window_size=1)
        cache.warm([make_entry(seed) for seed in range(8)])
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        small = GraphCache(capacity=3, window_size=1)
        restore_cache(small, path)
        assert len(small) == 3

    def test_restored_cache_produces_hits(self, tmp_path):
        dataset = molecule_dataset(12, min_vertices=10, max_vertices=14, rng=23)
        config = GCConfig(cache_capacity=10, window_size=1, method="direct-si")
        system = GraphCacheSystem(dataset, config)
        queries = make_subgraph_queries(dataset, 5, 7, seed=24)
        for query in queries:
            system.run_query(query)
        path = tmp_path / "warm.json"
        save_cache(system.cache, path)

        # a brand new system restored from the snapshot sees exact hits for
        # the same patterns without re-running them first
        fresh = GraphCacheSystem(dataset, config)
        restore_cache(fresh.cache, path)
        repeat = Query(graph=queries[0].graph.copy(), query_type=QueryType.SUBGRAPH)
        report = fresh.run_query(repeat)
        assert report.exact_hit_entry is not None
        assert report.dataset_tests == 0

    def test_malformed_snapshot_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(CacheError):
            load_cache_entries(path)
        path.write_text('{"format_version": 99, "entries": []}', encoding="utf-8")
        with pytest.raises(CacheError):
            load_cache_entries(path)
        path.write_text('{"entries": [{"graph": {}}]}', encoding="utf-8")
        with pytest.raises(CacheError):
            load_cache_entries(path)


class TestStatisticsTimeline:
    def test_window_summaries(self):
        dataset = molecule_dataset(10, min_vertices=8, max_vertices=12, rng=31)
        system = GraphCacheSystem(dataset, GCConfig(cache_capacity=8, window_size=1,
                                                    method="direct-si"))
        pattern = make_subgraph_queries(dataset, 1, 6, seed=32)[0]
        for _ in range(6):
            system.run_query(Query(graph=pattern.graph.copy(), query_type=QueryType.SUBGRAPH))
        timeline = system.statistics.window_summaries(3)
        assert len(timeline) == 2
        assert timeline[0]["queries"] == 3
        # later windows hit the cache more than the very first query
        assert timeline[1]["hit_ratio"] >= timeline[0]["hit_ratio"]
        assert timeline[1]["tests_saved"] >= 0

    def test_window_summaries_validation(self):
        from repro.cache import StatisticsManager

        with pytest.raises(ValueError):
            StatisticsManager().window_summaries(0)
        assert StatisticsManager().window_summaries(5) == []

    def test_developer_monitor_timeline(self):
        dataset = molecule_dataset(8, min_vertices=8, max_vertices=10, rng=33)
        system = GraphCacheSystem(dataset, GCConfig(cache_capacity=5, window_size=1,
                                                    method="direct-si"))
        monitor = DeveloperMonitor(system)
        assert "no queries" in monitor.render_timeline()
        for query in make_subgraph_queries(dataset, 4, 5, seed=34):
            system.run_query(query)
        text = monitor.render_timeline(window_size=2)
        assert "hit_ratio" in text
        assert len(monitor.window_timeline(2)) == 2
