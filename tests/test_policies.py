"""Tests for the replacement policies (LRU, POP, PIN, PINC, HD)."""

from __future__ import annotations

import pytest

from repro.cache import (
    CacheEntry,
    CacheStore,
    HDPolicy,
    HitContribution,
    HitKind,
    LRUPolicy,
    PINCPolicy,
    PINPolicy,
    POPPolicy,
    available_policies,
    make_policy,
    register_policy,
)
from repro.cache.policies.base import ReplacementPolicy
from repro.errors import CacheError, UnknownPolicyError
from repro.graph import molecule_graph
from repro.query_model import QueryType

ALL_POLICIES = ["LRU", "POP", "PIN", "PINC", "HD"]


def make_entry(seed: int, clock: int = 0) -> CacheEntry:
    entry = CacheEntry(
        graph=molecule_graph(5, rng=seed),
        query_type=QueryType.SUBGRAPH,
        answer=frozenset({seed}),
        admitted_clock=clock,
    )
    entry.stats.last_used_clock = clock
    return entry


def hit(clock: int, tests: int = 0, seconds: float = 0.0, kind=HitKind.SUB) -> HitContribution:
    return HitContribution(kind=kind, clock=clock, tests_saved=tests, seconds_saved=seconds)


class TestStatisticsUpdate:
    def test_update_counts_by_kind(self):
        policy = LRUPolicy()
        entry = make_entry(1)
        policy.update_cache_sta_info(entry, hit(5, kind=HitKind.SUB))
        policy.update_cache_sta_info(entry, hit(6, kind=HitKind.SUPER))
        policy.update_cache_sta_info(entry, hit(7, kind=HitKind.EXACT))
        assert entry.stats.hit_count == 3
        assert entry.stats.sub_hits == 1
        assert entry.stats.super_hits == 1
        assert entry.stats.exact_hits == 1
        assert entry.stats.last_used_clock == 7

    def test_update_accumulates_savings(self):
        policy = PINPolicy()
        entry = make_entry(2)
        policy.update_cache_sta_info(entry, hit(1, tests=10, seconds=0.5))
        policy.update_cache_sta_info(entry, hit(2, tests=5, seconds=0.25))
        assert entry.stats.tests_saved == 15
        assert entry.stats.seconds_saved == pytest.approx(0.75)


class TestUtilities:
    def test_lru_prefers_recent(self):
        policy = LRUPolicy()
        old, new = make_entry(1, clock=1), make_entry(2, clock=9)
        assert policy.utility(new) > policy.utility(old)

    def test_pop_prefers_popular(self):
        policy = POPPolicy()
        cold, hot = make_entry(3), make_entry(4)
        policy.update_cache_sta_info(hot, hit(1))
        policy.update_cache_sta_info(hot, hit(2))
        assert policy.utility(hot) > policy.utility(cold)

    def test_pin_ranks_by_tests_saved(self):
        policy = PINPolicy()
        low, high = make_entry(5), make_entry(6)
        policy.update_cache_sta_info(low, hit(1, tests=2))
        policy.update_cache_sta_info(high, hit(1, tests=50))
        assert policy.utility(high) > policy.utility(low)

    def test_pinc_ranks_by_seconds_saved(self):
        policy = PINCPolicy()
        cheap, expensive = make_entry(7), make_entry(8)
        policy.update_cache_sta_info(cheap, hit(1, tests=50, seconds=0.001))
        policy.update_cache_sta_info(expensive, hit(1, tests=2, seconds=2.0))
        assert policy.utility(expensive) > policy.utility(cheap)

    def test_pin_and_pinc_disagree_when_costs_skewed(self):
        # many cheap tests vs few expensive ones: PIN and PINC rank oppositely
        pin, pinc = PINPolicy(), PINCPolicy()
        many_cheap, few_costly = make_entry(9), make_entry(10)
        for policy in (pin, pinc):
            policy.update_cache_sta_info(many_cheap, hit(1, tests=100, seconds=0.01))
            policy.update_cache_sta_info(few_costly, hit(1, tests=1, seconds=5.0))
        # (statistics are shared objects, updated twice, but ordering is what matters)
        assert pin.utility(many_cheap) > pin.utility(few_costly)
        assert pinc.utility(few_costly) > pinc.utility(many_cheap)


class TestGetReplacedContent:
    def test_returns_least_useful_positions(self):
        policy = PINPolicy()
        entries = [make_entry(seed) for seed in range(4)]
        for index, entry in enumerate(entries):
            policy.update_cache_sta_info(entry, hit(1, tests=index * 10))
        victims = policy.get_replaced_content(entries, 2)
        assert victims == [0, 1]

    def test_count_larger_than_population(self):
        policy = LRUPolicy()
        entries = [make_entry(seed, clock=seed) for seed in range(3)]
        assert len(policy.get_replaced_content(entries, 10)) == 3

    def test_zero_count(self):
        policy = LRUPolicy()
        assert policy.get_replaced_content([make_entry(1)], 0) == []

    def test_hd_coalesces_pin_and_pinc_ranks(self):
        policy = HDPolicy()
        # entry A: great on PIN, middling on PINC; B: the reverse; C: worst on both
        a, b, c = make_entry(11), make_entry(12), make_entry(13)
        policy.update_cache_sta_info(a, hit(1, tests=100, seconds=0.5))
        policy.update_cache_sta_info(b, hit(1, tests=5, seconds=3.0))
        policy.update_cache_sta_info(c, hit(1, tests=1, seconds=0.001))
        victims = policy.get_replaced_content([a, b, c], 1)
        assert victims == [2]  # C loses on both dimensions

    def test_hd_middle_entry_survives_specialists(self):
        # an entry that is best on PIN and worst on PINC ties (by rank sum)
        # with one that is consistently middle — HD does not let one extreme
        # dimension dominate
        policy = HDPolicy()
        specialist, balanced = make_entry(14), make_entry(15)
        policy.update_cache_sta_info(specialist, hit(1, tests=100, seconds=0.001))
        policy.update_cache_sta_info(balanced, hit(1, tests=50, seconds=0.5))
        utilities = {policy.utility(specialist), policy.utility(balanced)}
        assert len(utilities) == 2  # standalone utilities still distinguish them


@pytest.mark.parametrize("name", ALL_POLICIES)
class TestUpdateCacheItems:
    def test_capacity_respected(self, name):
        policy = make_policy(name)
        store = CacheStore()
        incoming = [make_entry(seed, clock=seed) for seed in range(8)]
        report = policy.update_cache_items(store, incoming, capacity=5)
        assert len(store) <= 5
        assert report.capacity == 5
        assert len(report.admitted) >= 5

    def test_admission_below_capacity_keeps_everything(self, name):
        policy = make_policy(name)
        store = CacheStore()
        incoming = [make_entry(seed) for seed in range(3)]
        policy.update_cache_items(store, incoming, capacity=10)
        assert len(store) == 3

    def test_useful_resident_survives_fresh_incoming(self, name):
        policy = make_policy(name)
        store = CacheStore()
        veteran = make_entry(100, clock=50)
        policy.update_cache_sta_info(veteran, hit(60, tests=500, seconds=5.0))
        policy.update_cache_sta_info(veteran, hit(61, tests=500, seconds=5.0))
        store.add(veteran)
        incoming = [make_entry(seed, clock=seed) for seed in range(3)]
        policy.update_cache_items(store, incoming, capacity=1)
        assert veteran.entry_id in store

    def test_invalid_capacity_rejected(self, name):
        policy = make_policy(name)
        with pytest.raises(CacheError):
            policy.update_cache_items(CacheStore(), [make_entry(1)], capacity=0)

    def test_evicted_entries_reported(self, name):
        policy = make_policy(name)
        store = CacheStore()
        residents = [make_entry(seed, clock=0) for seed in range(3)]
        for entry in residents:
            store.add(entry)
        newcomer = make_entry(99, clock=10)
        policy.update_cache_sta_info(newcomer, hit(10, tests=100, seconds=1.0))
        report = policy.update_cache_items(store, [newcomer], capacity=3)
        assert len(store) == 3
        if report.evicted:
            assert all(entry_id not in store for entry_id in report.evicted)
            assert newcomer.entry_id in store


class TestRegistry:
    def test_builtin_policies_available(self):
        assert set(ALL_POLICIES) <= set(available_policies())

    def test_make_policy_case_insensitive(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("Hd"), HDPolicy)

    def test_unknown_policy(self):
        with pytest.raises(UnknownPolicyError):
            make_policy("CLOCK")

    def test_register_custom_policy(self):
        class SizePolicy(ReplacementPolicy):
            """Developer-extension example from §3.3: keep the largest graphs."""

            name = "SIZE"

            def utility(self, entry):
                return float(entry.num_vertices)

        register_policy("SIZE", SizePolicy, overwrite=True)
        assert "SIZE" in available_policies()
        policy = make_policy("size")
        big = CacheEntry(
            graph=molecule_graph(9, rng=20), query_type=QueryType.SUBGRAPH, answer=frozenset()
        )
        small = CacheEntry(
            graph=molecule_graph(4, rng=21), query_type=QueryType.SUBGRAPH, answer=frozenset()
        )
        assert policy.utility(big) > policy.utility(small)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_policy("LRU", LRUPolicy)
