"""Tests for the semantic-vs-exact-only cache modes, memory budget and
parallel verification added on top of the base kernel."""

from __future__ import annotations

import pytest

from repro.cache import GraphCache
from repro.errors import CacheCapacityError, ConfigurationError
from repro.graph import molecule_dataset
from repro.graph.operations import random_connected_subgraph
from repro.methods import DirectSIMethod
from repro.runtime import GCConfig, GraphCacheSystem
from repro.query_model import Query, QueryType
from tests.conftest import make_subgraph_queries


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(18, min_vertices=10, max_vertices=16, rng=441)


class TestExactOnlyMode:
    def test_exact_only_cache_still_hits_repeats(self, dataset):
        config = GCConfig(cache_capacity=10, window_size=1, method="direct-si",
                          enable_sub_case=False, enable_super_case=False)
        system = GraphCacheSystem(dataset, config)
        pattern = random_connected_subgraph(dataset[0], 6, rng=1)
        first = system.run_query(pattern.copy(), "subgraph")
        second = system.run_query(pattern.copy(), "subgraph")
        assert second.exact_hit_entry is not None
        assert second.dataset_tests == 0
        assert second.answer == first.answer

    def test_exact_only_cache_misses_sub_and_super(self, dataset):
        config = GCConfig(cache_capacity=10, window_size=1, method="direct-si",
                          enable_sub_case=False, enable_super_case=False)
        system = GraphCacheSystem(dataset, config)
        pattern = random_connected_subgraph(dataset[0], 8, rng=2)
        system.run_query(pattern.copy(), "subgraph")
        shrunk = random_connected_subgraph(pattern, 5, rng=3)
        report = system.run_query(shrunk, "subgraph")
        assert report.sub_hit_entries == []
        assert report.super_hit_entries == []
        assert report.probe_tests == 0

    def test_semantic_cache_beats_exact_only_on_related_queries(self, dataset):
        queries = []
        pattern = random_connected_subgraph(dataset[0], 9, rng=4)
        queries.append(Query(graph=pattern.copy(), query_type=QueryType.SUBGRAPH))
        for seed in range(4):
            queries.append(Query(
                graph=random_connected_subgraph(pattern, 6, rng=10 + seed),
                query_type=QueryType.SUBGRAPH,
            ))

        def total_tests(enable_semantic: bool) -> int:
            config = GCConfig(cache_capacity=10, window_size=1, method="direct-si",
                              enable_sub_case=enable_semantic,
                              enable_super_case=enable_semantic)
            system = GraphCacheSystem(dataset, config)
            for query in queries:
                system.run_query(Query(graph=query.graph.copy(), query_type=query.query_type))
            return system.aggregate().total_dataset_tests

        assert total_tests(True) < total_tests(False)

    def test_exact_only_answers_still_correct(self, dataset):
        config = GCConfig(cache_capacity=8, window_size=1, method="direct-si",
                          enable_sub_case=False, enable_super_case=False)
        system = GraphCacheSystem(dataset, config)
        baseline = DirectSIMethod()
        baseline.build(dataset)
        for query in make_subgraph_queries(dataset, 8, 6, seed=5):
            report = system.run_query(query)
            assert report.answer == baseline.execute(query.graph, query.query_type).answer


class TestMemoryBudget:
    def test_budget_limits_resident_bytes(self, dataset):
        budget = 20_000
        cache = GraphCache(capacity=100, window_size=1, policy="LRU",
                           memory_budget_bytes=budget)
        for seed in range(30):
            cache.tick()
            cache.offer(
                Query(graph=random_connected_subgraph(dataset[seed % len(dataset)], 8, rng=seed),
                      query_type=QueryType.SUBGRAPH),
                answer=set(range(5)),
                tests_performed=10,
                observed_test_cost=0.001,
            )
        assert cache.store.memory_bytes() <= budget
        assert len(cache) >= 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(CacheCapacityError):
            GraphCache(capacity=5, memory_budget_bytes=0)
        with pytest.raises(ConfigurationError):
            GCConfig(cache_memory_budget_bytes=-5).validate()

    def test_system_level_budget(self, dataset):
        config = GCConfig(cache_capacity=50, window_size=1, method="direct-si",
                          cache_memory_budget_bytes=15_000)
        system = GraphCacheSystem(dataset, config)
        for query in make_subgraph_queries(dataset, 12, 7, seed=6):
            system.run_query(query)
        assert system.cache.store.memory_bytes() <= 15_000


class TestParallelVerification:
    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ConfigurationError):
            GCConfig(verify_threads=0).validate()

    def test_parallel_answers_match_sequential(self, dataset):
        sequential = DirectSIMethod()
        sequential.build(dataset)
        parallel = DirectSIMethod()
        parallel.verify_threads = 4
        parallel.build(dataset)
        for query in make_subgraph_queries(dataset, 5, 6, seed=7):
            expected = sequential.execute(query.graph, "subgraph")
            actual = parallel.execute(query.graph, "subgraph")
            assert actual.answer == expected.answer
            assert actual.num_subiso_tests == expected.num_subiso_tests

    def test_system_with_threads_is_correct(self, dataset):
        config = GCConfig(cache_capacity=10, window_size=2, method="direct-si",
                          verify_threads=4)
        system = GraphCacheSystem(dataset, config)
        baseline = DirectSIMethod()
        baseline.build(dataset)
        for query in make_subgraph_queries(dataset, 8, 6, seed=8):
            report = system.run_query(query)
            assert report.answer == baseline.execute(query.graph, query.query_type).answer
        assert system.method.verify_threads == 4

    def test_verifier_tally_thread_safe_total(self, dataset):
        method = DirectSIMethod()
        method.verify_threads = 8
        method.build(dataset)
        query = make_subgraph_queries(dataset, 1, 6, seed=9)[0]
        method.execute(query.graph, "subgraph")
        assert method.verifier.tally.tests == len(dataset)
