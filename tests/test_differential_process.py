"""Differential correctness: process-sharded ≡ thread-sharded ≡ cached ≡ direct.

The acceptance property of the multiprocess backend: hosting every shard in
a spawned worker process behind the v2 envelope transport changes *nothing
observable*.  On a seeded mixed sub/supergraph workload the process-sharded
engine — sequential, concurrent, short-circuit-planned and served over HTTP
with cost-based admission — returns answer sets byte-identical to plain
Method M execution, and at one shard reproduces the cached engine's hit/miss
accounting exactly (the full report really does survive the wire).

Worker-crash fault injection lives here too: a shard worker killed
mid-trace is respawned within ``shard_respawn_limit`` with zero dropped or
duplicated answers, and with the budget at 0 the failure surfaces as the
typed, retryable ``shard-worker`` error.
"""

from __future__ import annotations

import pytest

from repro.api.envelopes import ErrorEnvelope
from repro.errors import ShardWorkerError
from repro.graph import molecule_dataset
from repro.runtime.config import GCConfig
from repro.runtime.system import GraphCacheSystem
from repro.sharding import ShardedGraphCacheSystem
from repro.workload import generate_trace

from tests.differential import (
    assert_answers_equal,
    assert_hit_counts_equal,
    clone_queries,
    run_cached,
    run_direct,
    run_served,
    run_sharded,
)


@pytest.fixture(scope="module")
def dataset():
    return molecule_dataset(14, min_vertices=7, max_vertices=12, rng=177)


@pytest.fixture(scope="module")
def workload(dataset):
    return generate_trace(dataset, 120, skew="zipfian", query_type="mixed", seed=29)


@pytest.fixture(scope="module")
def direct(dataset, workload):
    return run_direct(dataset, workload)


@pytest.fixture(scope="module")
def cached(dataset, workload):
    return run_cached(dataset, workload)


class TestProcessShardedEquivalence:
    @pytest.mark.parametrize("num_shards", (1, 2))
    def test_process_sharded_matches_direct_and_cached(self, dataset, workload,
                                                       direct, cached, num_shards):
        process = run_sharded(dataset, workload, num_shards,
                              shard_backend="process")
        assert_answers_equal(direct, process)
        assert_answers_equal(cached, process)

    def test_single_process_shard_hit_accounting_is_identical(self, dataset,
                                                              workload, cached):
        """process-sharded(1) is the cached engine behind a pipe: every hit,
        miss and sub-iso test count must survive envelope serialisation."""
        process = run_sharded(dataset, workload, num_shards=1,
                              shard_backend="process")
        assert_hit_counts_equal(cached, process)

    def test_thread_and_process_backends_agree_exactly(self, dataset, workload):
        """Same shard count, same workload: the two backends must agree on
        answers *and* accounting — partitioning is identical, only the
        hosting differs."""
        thread = run_sharded(dataset, workload, num_shards=2)
        process = run_sharded(dataset, workload, num_shards=2,
                              shard_backend="process")
        assert_answers_equal(thread, process)
        assert_hit_counts_equal(thread, process)

    def test_concurrent_process_sharded_matches_direct(self, dataset, workload,
                                                       direct):
        """Per-worker concurrent streams (4 in-flight envelopes per shard)
        must not change answers."""
        concurrent = run_sharded(dataset, workload, num_shards=2,
                                 concurrent_workers=4, shard_backend="process")
        assert_answers_equal(direct, concurrent)

    def test_short_circuit_process_sharded_matches_direct(self, dataset,
                                                          workload, direct):
        """Summary-driven shard pruning composes with process hosting (the
        planner runs coordinator-side; pruned workers never see the query)."""
        pruned = run_sharded(dataset, workload, num_shards=2,
                             scatter_mode="short-circuit",
                             shard_backend="process")
        assert_answers_equal(direct, pruned)
        assert pruned.mean_fanout <= 2.0

    def test_served_process_backend_matches_direct(self, dataset, workload,
                                                   direct):
        """The full production path: HTTP server → scatter → worker
        processes, with cost-based admission charging per-shard budgets."""
        served = run_served(dataset, workload, num_shards=2,
                            num_threads=4, max_batch_size=4,
                            shard_backend="process",
                            admission_mode="cost-based")
        assert_answers_equal(direct, served)


class TestProcessShardSnapshots:
    def test_snapshot_round_trip_across_backends(self, dataset, workload, tmp_path):
        """A snapshot written by process workers restores into a fresh
        process deployment (and counts entries symmetrically)."""
        path = tmp_path / "snap.json"
        config = GCConfig(cache_capacity=25, window_size=5, num_shards=2,
                          shard_backend="process")
        with ShardedGraphCacheSystem(dataset, config) as system:
            system.warm_cache(clone_queries(workload)[:30])
            saved = system.save_snapshot(path)
        assert saved > 0
        with ShardedGraphCacheSystem(dataset, config) as system:
            restored = system.restore_snapshot(path)
            assert restored == saved
            # the warm cache still answers correctly
            queries = clone_queries(workload)[:20]
            with GraphCacheSystem(dataset, GCConfig(cache_enabled=False)) as ref:
                expected = [frozenset(r.answer) for r in ref.run_queries(
                    clone_queries(workload)[:20])]
            got = [frozenset(r.answer) for r in system.run_queries(queries)]
            assert got == expected


class TestWorkerCrashRecovery:
    def test_mid_trace_crash_respawns_with_no_answer_loss(self, dataset, workload,
                                                          direct):
        """Kill one worker halfway through the trace: the coordinator must
        respawn it within budget and the full answer list must still match
        direct execution — nothing dropped, nothing duplicated."""
        config = GCConfig(cache_capacity=25, window_size=5, num_shards=2,
                          shard_backend="process", shard_respawn_limit=1)
        queries = clone_queries(workload)
        half = len(queries) // 2
        with ShardedGraphCacheSystem(dataset, config) as system:
            answers = [frozenset(r.answer)
                       for r in system.run_queries(queries[:half])]
            victim = system._process_backend._handles[0].process
            victim.terminate()
            victim.join(timeout=10)
            answers += [frozenset(r.answer)
                        for r in system.run_queries(queries[half:])]
            assert system._process_backend.respawns_performed == 1
        assert len(answers) == len(direct.answers)
        assert answers == direct.answers

    def test_crash_under_concurrent_batch_respawns_once(self, dataset, workload,
                                                        direct):
        """A dead worker fails many in-flight envelopes at once; only one
        respawn may be spent and only the failed queries re-issued."""
        config = GCConfig(cache_capacity=25, window_size=5, num_shards=2,
                          shard_backend="process", shard_respawn_limit=1)
        queries = clone_queries(workload)[:40]
        with ShardedGraphCacheSystem(dataset, config) as system:
            victim = system._process_backend._handles[1].process
            victim.terminate()
            victim.join(timeout=10)
            reports = system.run_queries_concurrent(queries, max_workers=4)
            assert system._process_backend.respawns_performed == 1
        answers = [frozenset(r.answer) for r in reports]
        assert answers == direct.answers[:40]

    def test_exhausted_respawn_budget_surfaces_typed_retryable_error(self, dataset,
                                                                     workload):
        config = GCConfig(cache_capacity=25, window_size=5, num_shards=2,
                          shard_backend="process", shard_respawn_limit=0)
        queries = clone_queries(workload)[:5]
        with ShardedGraphCacheSystem(dataset, config) as system:
            victim = system._process_backend._handles[0].process
            victim.terminate()
            victim.join(timeout=10)
            with pytest.raises(ShardWorkerError) as excinfo:
                system.run_queries(queries)
        assert excinfo.value.shard == 0
        # the taxonomy classifies it as a retryable 503 on the wire
        envelope = ErrorEnvelope.from_exception(excinfo.value)
        assert envelope.code == "shard-worker"
        assert envelope.http_status == 503
        assert envelope.retryable is True
        assert envelope.details.get("shard") == 0


class TestProcessShardObservability:
    def test_describe_and_metrics_fan_in(self, dataset, workload):
        """/metrics-style fan-in reads worker-side cache state through the
        describe fallback, and the statistics mirror matches the merged view."""
        config = GCConfig(cache_capacity=25, window_size=5, num_shards=2,
                          shard_backend="process")
        queries = clone_queries(workload)[:30]
        with ShardedGraphCacheSystem(dataset, config) as system:
            system.run_queries(queries)
            rows = system.describe_shards()
            assert len(rows) == 2
            for row in rows:
                assert "cache" in row, "worker cache state missing from fan-in"
                assert row["index_memory_bytes"] > 0
            snapshot = system.statistics.to_dict()
            assert snapshot["num_queries"] == len(queries)
            per_shard = [shard["num_queries"]
                         for shard in snapshot["shards"].values()]
            assert all(count == len(queries) for count in per_shard)
            description = system.describe()
            assert description["config"]["shard_backend"] == "process"
